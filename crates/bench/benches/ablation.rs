//! Ablation benches for the design choices DESIGN.md calls out:
//! aggregation mean, Eq. 4 normalization, sentence splitting, and gating.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hallu_core::{AggregationMean, DetectorConfig, HallucinationDetector};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There \
                   should be at least three shopkeepers to run a shop.";
const Q: &str = "What are the working hours?";
const RESP: &str = "The working hours are 9 AM to 5 PM. The store is open from Monday to \
                    Friday. At least three shopkeepers run each shop.";

fn detector(config: DetectorConfig) -> HallucinationDetector {
    let mut d = HallucinationDetector::new(
        vec![
            Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
            Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
        ],
        config,
    );
    for i in 0..10 {
        d.calibrate(Q, CTX, &format!("The store opens at {} AM.", 8 + i % 3));
    }
    d
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");

    // Aggregation means only differ in the final fold — latency should tie.
    for mean in AggregationMean::ALL {
        let d = detector(DetectorConfig {
            mean,
            ..Default::default()
        });
        group.bench_function(format!("mean_{mean}"), |b| {
            b.iter(|| d.score(Q, CTX, black_box(RESP)).score)
        });
    }

    // Eq. 4 normalization on/off.
    for (name, normalize) in [("normalize_on", true), ("normalize_off", false)] {
        let d = detector(DetectorConfig {
            normalize,
            ..Default::default()
        });
        group.bench_function(name, |b| b.iter(|| d.score(Q, CTX, black_box(RESP)).score));
    }

    // Split vs whole-response (the P(yes) ablation).
    for (name, split) in [("split_on", true), ("split_off", false)] {
        let d = detector(DetectorConfig {
            split,
            ..Default::default()
        });
        group.bench_function(name, |b| b.iter(|| d.score(Q, CTX, black_box(RESP)).score));
    }

    // Gating skips the second model on confident calls.
    let gated = detector(DetectorConfig {
        gate_margin: Some(1.5),
        ..Default::default()
    });
    group.bench_function("gated", |b| {
        b.iter(|| gated.score(Q, CTX, black_box(RESP)).score)
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
