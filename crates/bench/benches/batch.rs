//! Throughput of the batched scoring engine vs the sequential path.
//!
//! Three variants score the same duplicate-heavy 16-item workload:
//! `sequential` (uncached `score_batch`, `parallel: false`), `batched_cold`
//! (parallel `score_all` through a cache cleared every iteration), and
//! `batched_warm` (parallel `score_all` against a persistently warm cache —
//! the steady state a serving runtime converges to). The cold/warm gap is
//! what memoization buys; record the headline numbers in EXPERIMENTS.md.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hallu_core::{DetectorConfig, ResilientDetector};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{CacheConfig, FallibleVerifier, Reliable, VerificationCache};

const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There \
                   should be at least three shopkeepers to run a shop. Staff lockers are \
                   available in the back office.";
const Q: &str = "What are the working hours?";
const RESPONSES: [&str; 4] = [
    "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
    "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.",
    "The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
    "At least three shopkeepers run each shop. Lockers are in the back office.",
];

fn detector(parallel: bool) -> ResilientDetector {
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(Reliable::new(qwen2_sim())),
        Box::new(Reliable::new(minicpm_sim())),
    ];
    let config = DetectorConfig {
        parallel,
        ..DetectorConfig::default()
    };
    let mut d = ResilientDetector::try_new(verifiers, config).expect("two verifiers");
    for r in RESPONSES {
        d.calibrate(Q, CTX, r);
    }
    d
}

/// 16 requests cycling over 4 distinct responses: each item repeats 4x.
fn workload() -> Vec<(&'static str, &'static str, &'static str)> {
    (0..16).map(|i| (Q, CTX, RESPONSES[i % 4])).collect()
}

fn bench_batch(c: &mut Criterion) {
    let items = workload();
    let mut group = c.benchmark_group("batched_scoring_16_requests");

    let sequential = detector(false);
    group.bench_function("sequential", |b| {
        b.iter(|| sequential.score_batch(black_box(&items)))
    });

    let mut cold = detector(true);
    group.bench_function("batched_cold", |b| {
        b.iter(|| {
            // a fresh empty cache each iteration keeps every pass cold
            cold.set_cache(Arc::new(VerificationCache::new(CacheConfig::default())));
            cold.score_all(black_box(&items))
        })
    });

    let warm = detector(true).with_cache(Arc::new(VerificationCache::new(CacheConfig::default())));
    let _ = warm.score_all(&items); // populate
    group.bench_function("batched_warm", |b| {
        b.iter(|| warm.score_all(black_box(&items)))
    });

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
