//! Transformer engine: prefill latency and first-token P(yes) extraction —
//! the cost of one verification call on a locally deployed SLM.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slm_runtime::bpe::Bpe;
use slm_runtime::config::ModelConfig;
use slm_runtime::model::TransformerLM;
use slm_runtime::prob::p_yes;

fn setup() -> (TransformerLM, TransformerLM, Bpe) {
    let corpus = [
        "the store operates from 9 am to 5 pm from sunday to saturday",
        "context question answer is the answer correct according to the context reply yes or no",
        "annual leave is 14 days per year and probation lasts three months",
    ];
    let bpe = Bpe::train(&corpus, 300);
    let tiny = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), 7);
    let qwen_like = TransformerLM::synthetic(ModelConfig::qwen2_like(bpe.vocab_size()), 7);
    (tiny, qwen_like, bpe)
}

fn bench_engine(c: &mut Criterion) {
    let (tiny, qwen_like, bpe) = setup();
    let prompt = bpe.encode(
        "context: the store operates from 9 am to 5 pm question: what are the working hours \
         answer: 9 am to 5 pm reply yes or no:",
        true,
    );

    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("prefill_tiny", |b| {
        b.iter(|| {
            let mut cache = tiny.new_cache();
            tiny.prefill(black_box(&prompt), &mut cache)
        })
    });
    group.bench_function("prefill_qwen2_like", |b| {
        b.iter(|| {
            let mut cache = qwen_like.new_cache();
            qwen_like.prefill(black_box(&prompt), &mut cache)
        })
    });
    group.bench_function("p_yes_qwen2_like", |b| {
        b.iter(|| {
            p_yes(
                &qwen_like,
                &bpe,
                black_box("what are the working hours?"),
                "the store operates from 9 am to 5 pm",
                "9 am to 5 pm",
            )
        })
    });
    group.bench_function("p_yes_quantized_minicpm_like", |b| {
        use slm_runtime::quant::{QuantizedLM, QuantizedWeights};
        use slm_runtime::weights::ModelWeights;
        let cfg = slm_runtime::config::ModelConfig::minicpm_like(bpe.vocab_size());
        let q = QuantizedWeights::quantize(&ModelWeights::synthetic(&cfg, 7));
        let model = QuantizedLM::new(cfg, &q);
        b.iter(|| {
            let mut cache = model.new_cache();
            model.prefill(black_box(&prompt), &mut cache)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
