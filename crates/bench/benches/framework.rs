//! End-to-end verification latency per response: 1 vs 2 SLMs, sequential vs
//! parallel sentence scoring.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hallu_core::{DetectorConfig, HallucinationDetector};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There \
                   should be at least three shopkeepers to run a shop. Staff lockers are \
                   available in the back office.";
const Q: &str = "What are the working hours?";
const RESP: &str = "The working hours are 9 AM to 5 PM. The store is open from Sunday to \
                    Saturday. At least three shopkeepers run each shop. These arrangements \
                    keep the floor covered.";

fn detector(two_models: bool, parallel: bool) -> HallucinationDetector {
    let mut verifiers: Vec<Box<dyn YesNoVerifier>> = vec![Box::new(qwen2_sim())];
    if two_models {
        verifiers.push(Box::new(minicpm_sim()));
    }
    let mut d = HallucinationDetector::new(
        verifiers,
        DetectorConfig {
            parallel,
            ..Default::default()
        },
    );
    for i in 0..10 {
        d.calibrate(Q, CTX, &format!("The store opens at {} AM.", 8 + i % 3));
    }
    d
}

fn bench_framework(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_score_response");
    for (name, two, par) in [
        ("one_slm_sequential", false, false),
        ("two_slm_sequential", true, false),
        ("two_slm_parallel", true, true),
    ] {
        let d = detector(two, par);
        group.bench_function(name, |b| b.iter(|| d.score(Q, CTX, black_box(RESP)).score));
    }
    group.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
