//! Cost of the observability layer on the hot scoring path and on the
//! cluster serving path.
//!
//! Three variants of the same resilient two-SLM scoring call:
//! `sink_off` (the `Obs::off()` default — the zero-overhead contract),
//! `sink_on` (a connected registry + span store + flight store, no flight
//! in progress), and `sink_on_flight` (a flight record open, so every
//! per-cell event is captured). The off/on gap is what instrumentation
//! costs; record it in EXPERIMENTS.md.
//!
//! The cluster group runs the same small cluster scenario with distributed
//! tracing off and on, and asserts up front (median of a few timed runs)
//! that tracing costs at most 5% end to end — the cross-member span
//! machinery must stay invisible next to the scoring work it decorates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::Obs;
use rag::cluster::{ClusterConfig, ClusterRuntime};
use rag::serving::ShardIdentity;
use rag::{
    FailurePolicy, Priority, RagPipeline, ResilientVerifiedPipeline, ServingConfig, SimulatedLlm,
};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There \
                   should be at least three shopkeepers to run a shop. Staff lockers are \
                   available in the back office.";
const Q: &str = "What are the working hours?";
const RESP: &str = "The working hours are 9 AM to 5 PM. The store is open from Sunday to \
                    Saturday. At least three shopkeepers run each shop. These arrangements \
                    keep the floor covered.";

fn detector(obs: Option<&Obs>) -> ResilientDetector {
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile::none(1),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::none(2),
        )),
    ];
    let mut d =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    if let Some(obs) = obs {
        d.set_obs(obs);
    }
    for i in 0..10 {
        d.calibrate(Q, CTX, &format!("The store opens at {} AM.", 8 + i % 3));
    }
    d
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_score_response");

    let off = detector(None);
    group.bench_function("sink_off", |b| {
        b.iter(|| off.score(Q, CTX, black_box(RESP)))
    });

    let obs = Obs::new();
    let on = detector(Some(&obs));
    group.bench_function("sink_on", |b| b.iter(|| on.score(Q, CTX, black_box(RESP))));

    group.bench_function("sink_on_flight", |b| {
        b.iter(|| {
            obs.begin_flight("bench");
            let v = on.score(Q, CTX, black_box(RESP));
            obs.end_flight("scored");
            v
        })
    });

    group.finish();
}

/// The guarded two-SLM pipeline each cluster member runs.
fn member_pipeline(identity: ShardIdentity) -> ResilientVerifiedPipeline<FlatIndex> {
    let seed = 9_000 + u64::from(identity.shard) * 10 + u64::from(identity.replica);
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(CTX, "hours").expect("ingest");
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile::none(seed),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::none(seed + 1),
        )),
    ];
    let detector =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&[Q]).expect("warm-up retrieval");
    p
}

/// One small cluster run (2 shards × 2 members, 24 requests, no chaos),
/// with distributed tracing on or off.
fn cluster_run(tracing: bool) {
    let config = ClusterConfig {
        replicas: 1,
        serving: ServingConfig {
            queue_bound: None,
            default_deadline_ms: f64::INFINITY,
            ..ServingConfig::default()
        },
        tracing,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterRuntime::new(2, config, member_pipeline);
    for i in 0..24u32 {
        cluster.submit_at(f64::from(i) * 20.0, Q, Priority::Normal);
    }
    cluster.run_until_idle();
    black_box(cluster.drain_outcomes());
}

fn timed_run_ms(tracing: bool) -> f64 {
    let t0 = std::time::Instant::now();
    cluster_run(tracing);
    t0.elapsed().as_secs_f64() * 1e3
}

fn bench_cluster_tracing(c: &mut Criterion) {
    // The contract, checked before the criterion sampling: the end-to-end
    // cluster path with tracing on stays within 5% of the same run with
    // tracing off. Samples are interleaved off/on pairs compared by their
    // minima over many pairs — the minimum is the least-contended
    // execution, the only sample a loaded CI box reports faithfully.
    for _ in 0..2 {
        timed_run_ms(false);
        timed_run_ms(true);
    }
    let (mut off_ms, mut on_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..20 {
        off_ms = off_ms.min(timed_run_ms(false));
        on_ms = on_ms.min(timed_run_ms(true));
    }
    assert!(
        on_ms <= off_ms * 1.05,
        "tracing-on cluster run must cost <= 5% extra: off {off_ms:.2} ms, on {on_ms:.2} ms"
    );

    let mut group = c.benchmark_group("obs_cluster_tracing");
    group.sample_size(10);
    group.bench_function("tracing_off", |b| b.iter(|| cluster_run(false)));
    group.bench_function("tracing_on", |b| b.iter(|| cluster_run(true)));
    group.finish();
}

criterion_group!(benches, bench_obs, bench_cluster_tracing);
criterion_main!(benches);
