//! Cost of the observability layer on the hot scoring path.
//!
//! Three variants of the same resilient two-SLM scoring call:
//! `sink_off` (the `Obs::off()` default — the zero-overhead contract),
//! `sink_on` (a connected registry + span store + flight store, no flight
//! in progress), and `sink_on_flight` (a flight record open, so every
//! per-cell event is captured). The off/on gap is what instrumentation
//! costs; record it in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::Obs;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};

const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There \
                   should be at least three shopkeepers to run a shop. Staff lockers are \
                   available in the back office.";
const Q: &str = "What are the working hours?";
const RESP: &str = "The working hours are 9 AM to 5 PM. The store is open from Sunday to \
                    Saturday. At least three shopkeepers run each shop. These arrangements \
                    keep the floor covered.";

fn detector(obs: Option<&Obs>) -> ResilientDetector {
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile::none(1),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::none(2),
        )),
    ];
    let mut d =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    if let Some(obs) = obs {
        d.set_obs(obs);
    }
    for i in 0..10 {
        d.calibrate(Q, CTX, &format!("The store opens at {} AM.", 8 + i % 3));
    }
    d
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_score_response");

    let off = detector(None);
    group.bench_function("sink_off", |b| {
        b.iter(|| off.score(Q, CTX, black_box(RESP)))
    });

    let obs = Obs::new();
    let on = detector(Some(&obs));
    group.bench_function("sink_on", |b| b.iter(|| on.score(Q, CTX, black_box(RESP))));

    group.bench_function("sink_on_flight", |b| {
        b.iter(|| {
            obs.begin_flight("bench");
            let v = on.score(Q, CTX, black_box(RESP));
            obs.end_flight("scored");
            v
        })
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
