//! Sentence-fork cost: contiguous KV snapshot clone vs paged COW fork.
//!
//! A contiguous fork memcpys every prefix row, so its cost grows linearly
//! in prefix length; a paged fork clones one `Arc` per resident page, so
//! its cost is flat in tokens (O(blocks touched)). The hard assertions
//! behind this claim live in `paged_sweep` — this bench produces the
//! per-length latency curves recorded in EXPERIMENTS.md.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slm_runtime::{ModelConfig, PagedKvPool, PagedPoolConfig, TransformerLM};

const VOCAB: usize = 2048;
const PREFIX_LENS: [usize; 3] = [32, 128, 224];
const SUFFIX_LEN: usize = 16;

/// Deterministic pseudo-random token ids (no tokenizer needed: prefill
/// operates on raw ids).
fn tokens(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % VOCAB as u64) as u32
        })
        .collect()
}

fn bench_fork(c: &mut Criterion) {
    let model = TransformerLM::synthetic(ModelConfig::qwen2_like(VOCAB), 0xF222);
    let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(
        model.config(),
        64,
    )));

    let mut group = c.benchmark_group("kv_fork");
    for &plen in &PREFIX_LENS {
        let prefix = tokens(plen as u64, plen);
        let need = plen + SUFFIX_LEN;

        let mut warm = model.new_cache_with_capacity(need);
        model.prefill_cache_only(&prefix, &mut warm);
        group.bench_function(format!("contiguous_{plen}"), |b| {
            b.iter(|| black_box(warm.fork_with_capacity(need)))
        });

        let mut paged = pool.new_cache(need);
        paged.try_reserve(plen).expect("pool sized for the sweep");
        model.prefill_cache_only(&prefix, &mut paged);
        group.bench_function(format!("paged_{plen}"), |b| {
            b.iter(|| black_box(paged.fork_with_capacity(need)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fork);
criterion_main!(benches);
