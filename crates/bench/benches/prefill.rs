//! Prompt-processing latency: token-at-a-time vs blocked GEMM vs prefix-hit.
//!
//! Three ways to reach the same logits (bitwise — see
//! `gemm_prefill_is_bit_identical_to_sequential` in `slm-runtime`):
//! `sequential` feeds the 144-token prompt through `prefill_sequential`
//! (one `forward_token` per position, lm_head every step); `gemm` runs the
//! blocked multi-token `prefill` (lm_head only on the last row); `prefix_hit`
//! forks a warm 128-token prefix snapshot from a [`PrefixCache`] and prefills
//! only the 16-token suffix — the steady state when many sentence probes
//! share one (question, context) cell. Record the headline numbers in
//! EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slm_runtime::{ModelConfig, PrefixCache, PrefixCacheConfig, TransformerLM};

const VOCAB: usize = 2048;
const PREFIX_LEN: usize = 128;
const SUFFIX_LEN: usize = 16;

/// Deterministic pseudo-random token ids (no tokenizer needed: prefill
/// operates on raw ids).
fn tokens(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % VOCAB as u64) as u32
        })
        .collect()
}

fn bench_prefill(c: &mut Criterion) {
    let model = TransformerLM::synthetic(ModelConfig::qwen2_like(VOCAB), 0xF111);
    let prefix = tokens(1, PREFIX_LEN);
    let suffix = tokens(2, SUFFIX_LEN);
    let full: Vec<u32> = prefix.iter().chain(&suffix).copied().collect();

    let mut group = c.benchmark_group("prefill_144_tokens");

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut kv = model.new_cache();
            model.prefill_sequential(black_box(&full), &mut kv)
        })
    });

    group.bench_function("gemm", |b| {
        b.iter(|| {
            let mut kv = model.new_cache();
            model.prefill(black_box(&full), &mut kv)
        })
    });

    // Warm path: the prefix snapshot exists; a probe pays one fork (KV copy)
    // plus a suffix-only GEMM prefill.
    let cache = PrefixCache::new(PrefixCacheConfig::default());
    let mut warm = model.new_cache();
    model.prefill_cache_only(&prefix, &mut warm);
    assert!(cache.insert("bench", &prefix, &warm));
    group.bench_function("prefix_hit", |b| {
        b.iter(|| {
            let mut kv = cache
                .fork("bench", black_box(&prefix), model.config().max_seq_len)
                .expect("warm snapshot");
            model.prefill(black_box(&suffix), &mut kv)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_prefill);
criterion_main!(benches);
