//! Int8 vs f32 engine throughput: blocked prefill and per-token decode.
//!
//! Both engines reach equivalent verdicts (the AUC eval gate in `quant_sweep`
//! bounds the drift); this bench quantifies what the int8 path buys. Measured
//! on [`ModelConfig::qwen2_wide`] — the GEMM-bound shape real SLM serving
//! lives in; at the miniature `hidden = 96` profile, precision-independent
//! work (softmax, RoPE, norms) dominates and flattens the comparison. Record
//! the headline numbers in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slm_runtime::{ModelConfig, Precision, QuantizedLM, TransformerLM};

const VOCAB: usize = 2048;
const PREFIX_LEN: usize = 64;
const DECODE_STEPS: usize = 8;

/// Deterministic pseudo-random token ids (no tokenizer needed: prefill
/// operates on raw ids).
fn tokens(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % VOCAB as u64) as u32
        })
        .collect()
}

fn bench_quant(c: &mut Criterion) {
    let cfg = ModelConfig::qwen2_wide(VOCAB);
    let f32_model = TransformerLM::synthetic(cfg.clone(), 0xF111);
    let int8_model = QuantizedLM::synthetic(cfg.with_precision(Precision::Int8), 0xF111);
    let prompt = tokens(1, PREFIX_LEN);
    let decode = tokens(2, DECODE_STEPS);

    let mut group = c.benchmark_group(format!("quant_prefill_{PREFIX_LEN}_tokens"));
    group.bench_function("f32", |b| {
        b.iter(|| {
            let mut kv = f32_model.new_cache_with_capacity(prompt.len());
            f32_model.prefill(black_box(&prompt), &mut kv)
        })
    });
    group.bench_function("int8", |b| {
        b.iter(|| {
            let mut kv = int8_model.new_cache_with_capacity(prompt.len());
            int8_model.prefill(black_box(&prompt), &mut kv)
        })
    });
    group.finish();

    // Decode: per-token forwards against a warm cache (the p_yes probe shape:
    // one prompt, a handful of generated tokens).
    let mut group = c.benchmark_group(format!("quant_decode_{DECODE_STEPS}_tokens"));
    group.bench_function("f32", |b| {
        b.iter(|| {
            let mut kv = f32_model.new_cache_with_capacity(PREFIX_LEN + DECODE_STEPS);
            f32_model.prefill_cache_only(&prompt, &mut kv);
            for &t in &decode {
                black_box(f32_model.forward_token(t, &mut kv));
            }
        })
    });
    group.bench_function("int8", |b| {
        b.iter(|| {
            let mut kv = int8_model.new_cache_with_capacity(PREFIX_LEN + DECODE_STEPS);
            int8_model.prefill_cache_only(&prompt, &mut kv);
            for &t in &decode {
                black_box(int8_model.forward_token(t, &mut kv));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
