//! Splitter throughput on handbook-length responses.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use text_engine::sentence::SentenceSplitter;

fn response_text(sentences: usize) -> String {
    let mut s = String::new();
    for i in 0..sentences {
        s.push_str(&format!(
            "The store operates from 9 AM to 5 PM on weekdays, see section {i}. \
             Dr. Lee reviews the roster at 10 a.m. before opening. "
        ));
    }
    s
}

fn bench_splitter(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitter");
    for &n in &[4usize, 32, 256] {
        let text = response_text(n);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(format!("split_{n}_sentences"), |b| {
            let splitter = SentenceSplitter::new();
            b.iter(|| splitter.split(black_box(&text)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_splitter);
criterion_main!(benches);
