//! Vector index query latency: exact flat scan vs IVF vs HNSW.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vectordb::flat::FlatIndex;
use vectordb::hnsw::HnswIndex;
use vectordb::index::VectorIndex;
use vectordb::ivf::IvfIndex;
use vectordb::metric::Metric;
use vectordb::sq8::Sq8FlatIndex;

const DIM: usize = 64;

fn pseudo_vec(seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_add(1);
    (0..DIM)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
        .collect()
}

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("vectordb_query_top10");
    for &n in &[1_000u64, 10_000] {
        let mut flat = FlatIndex::new(DIM, Metric::Cosine);
        let mut ivf = IvfIndex::new(DIM, Metric::Cosine, 32, 4, 7);
        let mut hnsw = HnswIndex::new(DIM, Metric::Cosine, 16, 100, 7);
        for id in 0..n {
            let v = pseudo_vec(id * 7919);
            flat.insert(id, v.clone()).unwrap();
            ivf.insert(id, v.clone()).unwrap();
            hnsw.insert(id, v).unwrap();
        }
        ivf.build(10);
        let query = pseudo_vec(424_242);
        group.bench_function(format!("flat_n{n}"), |b| {
            b.iter(|| flat.search(black_box(&query), 10).unwrap())
        });
        group.bench_function(format!("ivf_n{n}"), |b| {
            b.iter(|| ivf.search(black_box(&query), 10).unwrap())
        });
        group.bench_function(format!("hnsw_n{n}"), |b| {
            b.iter(|| hnsw.search(black_box(&query), 10).unwrap())
        });
        let mut sq8 = Sq8FlatIndex::new(DIM, Metric::Cosine);
        for id in 0..n {
            sq8.insert(id, pseudo_vec(id * 7919)).unwrap();
        }
        group.bench_function(format!("sq8_flat_n{n}"), |b| {
            b.iter(|| sq8.search(black_box(&query), 10).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
