//! The approach roster of §V-C, plus the extensions DESIGN.md commits to.

use hallu_core::{AggregationMean, DetectorConfig, HallucinationDetector};
use slm_runtime::profiles::{chatgpt_sim, gemma_sim, minicpm_sim, phi2_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

/// An approach compared in the paper's experiments (§V-C) or added as an
/// extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Qwen2 + MiniCPM in the proposed framework.
    Proposed,
    /// ChatGPT P(True): API-style decision on the whole response.
    ChatGpt,
    /// P(yes): single SLM on the whole response, no splitter.
    PYes,
    /// Proposed framework with only Qwen2.
    Qwen2Only,
    /// Proposed framework with only MiniCPM.
    MiniCpmOnly,
    /// Extension: proposed with confidence gating (§VI future work).
    ProposedGated,
    /// Extension: three-model ensemble (adds Phi-2).
    Ensemble3,
    /// Extension: four-model ensemble (adds Phi-2 and Gemma-2B).
    Ensemble4,
    /// Extension baseline: SelfCheck-style sampling consistency (§II's
    /// sample-and-compare family — no verifier model, K extra generations).
    SelfCheck,
}

impl Approach {
    /// The five approaches of the paper's figures, in figure order.
    pub const PAPER: [Approach; 5] = [
        Approach::Proposed,
        Approach::ChatGpt,
        Approach::PYes,
        Approach::Qwen2Only,
        Approach::MiniCpmOnly,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Proposed => "proposed",
            Approach::ChatGpt => "chatgpt",
            Approach::PYes => "p(yes)",
            Approach::Qwen2Only => "qwen2",
            Approach::MiniCpmOnly => "minicpm",
            Approach::ProposedGated => "proposed+gate",
            Approach::Ensemble3 => "ensemble-3",
            Approach::Ensemble4 => "ensemble-4",
            Approach::SelfCheck => "selfcheck",
        }
    }
}

/// Instantiate the detector for an approach with a given aggregation mean
/// (the mean only matters for split-based approaches).
///
/// # Panics
/// Panics for [`Approach::SelfCheck`], which is not detector-based — the
/// runner scores it through [`rag::selfcheck::SelfChecker`] instead.
pub fn build_detector(approach: Approach, mean: AggregationMean) -> HallucinationDetector {
    let split_cfg = DetectorConfig {
        mean,
        ..Default::default()
    };
    match approach {
        Approach::SelfCheck => {
            panic!("SelfCheck is generator-based; use runner::score_dataset")
        }
        Approach::Proposed => HallucinationDetector::new(
            vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())],
            split_cfg,
        ),
        Approach::ChatGpt => HallucinationDetector::new(
            vec![Box::new(chatgpt_sim()) as Box<dyn YesNoVerifier>],
            DetectorConfig {
                split: false,
                normalize: false,
                ..Default::default()
            },
        ),
        Approach::PYes => HallucinationDetector::new(
            vec![Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>],
            DetectorConfig {
                split: false,
                normalize: false,
                ..Default::default()
            },
        ),
        Approach::Qwen2Only => HallucinationDetector::new(vec![Box::new(qwen2_sim())], split_cfg),
        Approach::MiniCpmOnly => {
            HallucinationDetector::new(vec![Box::new(minicpm_sim())], split_cfg)
        }
        Approach::ProposedGated => HallucinationDetector::new(
            vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())],
            DetectorConfig {
                gate_margin: Some(1.5),
                mean,
                ..Default::default()
            },
        ),
        Approach::Ensemble3 => HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()),
                Box::new(minicpm_sim()),
                Box::new(phi2_sim()),
            ],
            split_cfg,
        ),
        Approach::Ensemble4 => HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()),
                Box::new(minicpm_sim()),
                Box::new(phi2_sim()),
                Box::new(gemma_sim()),
            ],
            split_cfg,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_roster_has_five_approaches() {
        assert_eq!(Approach::PAPER.len(), 5);
        let labels: std::collections::HashSet<&str> =
            Approach::PAPER.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn detectors_have_expected_model_counts() {
        assert_eq!(
            build_detector(Approach::Proposed, AggregationMean::Harmonic).num_models(),
            2
        );
        assert_eq!(
            build_detector(Approach::ChatGpt, AggregationMean::Harmonic).num_models(),
            1
        );
        assert_eq!(
            build_detector(Approach::Ensemble4, AggregationMean::Harmonic).num_models(),
            4
        );
    }

    #[test]
    fn baselines_do_not_split() {
        assert!(
            !build_detector(Approach::PYes, AggregationMean::Harmonic)
                .config
                .split
        );
        assert!(
            !build_detector(Approach::ChatGpt, AggregationMean::Harmonic)
                .config
                .split
        );
        assert!(
            build_detector(Approach::Proposed, AggregationMean::Harmonic)
                .config
                .split
        );
    }

    #[test]
    fn gated_variant_sets_margin() {
        let d = build_detector(Approach::ProposedGated, AggregationMean::Harmonic);
        assert!(d.config.gate_margin.is_some());
    }
}
