//! Batched-scoring throughput experiment: batch size × cache capacity.
//!
//! Replays the same 64-request workload (8 question sets, 24 distinct
//! responses, so every item repeats) three ways:
//!
//! 1. **sequential** — uncached, one `score` call per request (the
//!    baseline every other configuration is compared to, in verdicts and
//!    in wall-clock);
//! 2. **batched cold** — `score_all` over chunks of the given batch size
//!    with a bounded shared cache that starts empty;
//! 3. **batched warm** — the same pass again over the now-populated cache.
//!
//! Every configuration must reproduce the sequential verdicts exactly —
//! batching and caching are throughput features, not accuracy knobs — and
//! the experiment asserts the headline claim: **≥ 2× throughput at batch
//! size ≥ 8 with a warm cache**. The `hit_rate batch=... cap=...` lines are
//! grepped by the CI `batch-smoke` job.

use std::sync::Arc;
use std::time::Instant;

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::{DetectorConfig, ResilientDetector, Verdict};
use hallu_dataset::DatasetBuilder;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{CacheConfig, FallibleVerifier, Reliable, VerificationCache};

const DATASET_SEED: u64 = 0xBA7C4;
const DATASET_SETS: usize = 8;
const REQUESTS: usize = 64;
const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];
const CACHE_CAPS: [usize; 4] = [8, 32, 128, 1024];

/// The two-SLM resilient detector, calibrated on the distinct item pool.
/// No fault injection here: chaos parity is the golden suite's job
/// (`tests/batch_parity.rs`); this experiment isolates throughput.
fn calibrated(parallel: bool, items: &[(String, String, String)]) -> ResilientDetector {
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(Reliable::new(qwen2_sim())),
        Box::new(Reliable::new(minicpm_sim())),
    ];
    let config = DetectorConfig {
        parallel,
        ..DetectorConfig::default()
    };
    let mut d = ResilientDetector::try_new(verifiers, config).expect("two verifiers");
    for (q, c, r) in items {
        d.calibrate(q, c, r);
    }
    d
}

fn main() {
    let dataset = DatasetBuilder::new(DATASET_SEED, DATASET_SETS).build();
    // The distinct pool: every (set, response) pair. 8 sets x 3 responses
    // = 24 distinct items; cycling 64 requests over them repeats each item
    // 2-3x, which is what gives the cache something to coalesce.
    let pool: Vec<(String, String, String)> = dataset
        .sets
        .iter()
        .flat_map(|s| {
            s.responses
                .iter()
                .map(move |r| (s.question.clone(), s.context.clone(), r.text.clone()))
        })
        .collect();
    let requests: Vec<(&str, &str, &str)> = (0..REQUESTS)
        .map(|i| {
            let (q, c, r) = &pool[i % pool.len()];
            (q.as_str(), c.as_str(), r.as_str())
        })
        .collect();

    let mut record = ExperimentRecord::new(
        "ext-batch",
        "Batched scoring throughput: batch size x cache capacity vs sequential",
    );

    // Sequential baseline: uncached, unbatched, one item at a time.
    let sequential = calibrated(false, &pool);
    let t0 = Instant::now();
    let want: Vec<Verdict> = requests
        .iter()
        .map(|&(q, c, r)| sequential.score(q, c, r))
        .collect();
    let seq_elapsed = t0.elapsed().as_secs_f64();
    let seq_rps = REQUESTS as f64 / seq_elapsed;
    println!(
        "sequential baseline: {REQUESTS} requests in {:.1} ms ({seq_rps:.0} req/s)",
        seq_elapsed * 1e3
    );
    record.measure("sequential req/s", seq_rps);

    println!(
        "\n{:>6}  {:>5}  {:>10}  {:>10}  {:>9}  {:>9}  {:>9}",
        "batch", "cap", "cold ms", "warm ms", "cold x", "warm x", "hit rate"
    );
    let mut warm_speedup_at_8_full_cap = 0.0f64;
    for &cap in &CACHE_CAPS {
        for &batch in &BATCH_SIZES {
            let cache = Arc::new(VerificationCache::new(CacheConfig::with_max_entries(cap)));
            let detector = calibrated(true, &pool).with_cache(cache.clone());

            let run = |label: &str| {
                let t = Instant::now();
                let mut got: Vec<Verdict> = Vec::with_capacity(requests.len());
                for chunk in requests.chunks(batch) {
                    got.extend(detector.score_all(chunk));
                }
                let elapsed = t.elapsed().as_secs_f64();
                assert_eq!(
                    want, got,
                    "batch={batch} cap={cap} ({label}): batched verdicts must equal sequential"
                );
                elapsed
            };
            let cold_elapsed = run("cold");
            let cold_stats = cache.stats();
            let warm_elapsed = run("warm");
            let warm_stats = cache.stats();

            let warm_hits = warm_stats.hits - cold_stats.hits;
            let warm_misses = warm_stats.misses - cold_stats.misses;
            let hit_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;
            let cold_speedup = seq_elapsed / cold_elapsed;
            let warm_speedup = seq_elapsed / warm_elapsed;
            if batch == 8 && cap == *CACHE_CAPS.last().unwrap() {
                warm_speedup_at_8_full_cap = warm_speedup;
            }
            println!(
                "{batch:>6}  {cap:>5}  {:>10.1}  {:>10.1}  {cold_speedup:>8.1}x  \
                 {warm_speedup:>8.1}x  {hit_rate:>9.2}",
                cold_elapsed * 1e3,
                warm_elapsed * 1e3,
            );
            // Stable grep target for the CI batch-smoke job.
            println!("hit_rate batch={batch} cap={cap} {hit_rate:.2}");
            record.measure(
                format!("warm speedup batch={batch} cap={cap}"),
                warm_speedup,
            );
            record.measure(format!("warm hit-rate batch={batch} cap={cap}"), hit_rate);
        }
    }

    assert!(
        warm_speedup_at_8_full_cap >= 2.0,
        "headline claim failed: warm batched scoring at batch=8 must be >= 2x sequential \
         (got {warm_speedup_at_8_full_cap:.2}x)"
    );
    println!(
        "\nheadline: warm batch=8 cap={} runs {warm_speedup_at_8_full_cap:.1}x the sequential \
         baseline (bitwise-identical verdicts)",
        CACHE_CAPS.last().unwrap()
    );
    record.measure("headline warm speedup batch=8", warm_speedup_at_8_full_cap);

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
