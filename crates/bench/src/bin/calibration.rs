//! Calibration extension: can `s_i` be read as a probability?
//!
//! Computes the reliability diagram, Expected Calibration Error and Brier
//! score of each approach's scores on the correct-vs-hallucinated task
//! (positives = correct responses, negatives = partial and wrong).

use bench::approaches::Approach;
use bench::runner::score_dataset;
use bench::{save_record, RESULTS_PATH};
use eval::calibration::{brier_score, expected_calibration_error, reliability_diagram};
use eval::report::ExperimentRecord;
use hallu_core::AggregationMean;
use hallu_dataset::{DatasetBuilder, ResponseLabel};

fn main() {
    let dataset = DatasetBuilder::default().build();
    let mut record = ExperimentRecord::new(
        "ext-calibration",
        "Calibration of s_i as P(correct): ECE / Brier",
    );

    for approach in [Approach::Proposed, Approach::PYes, Approach::Qwen2Only] {
        let scores = score_dataset(approach, AggregationMean::Harmonic, &dataset);
        let examples: Vec<(f64, bool)> = scores
            .iter()
            .map(|s| (s.score, s.label == ResponseLabel::Correct))
            .collect();
        let ece = expected_calibration_error(&examples, 10);
        let brier = brier_score(&examples);
        record.measure(format!("{} ECE", approach.label()), ece);
        record.measure(format!("{} Brier", approach.label()), brier);
        println!("{:<12} ECE {ece:.3}  Brier {brier:.3}", approach.label());

        if approach == Approach::Proposed {
            println!("  reliability diagram (proposed):");
            println!(
                "  {:>12} {:>12} {:>10} {:>7}",
                "bin", "mean score", "accuracy", "count"
            );
            for bin in reliability_diagram(&examples, 10) {
                println!(
                    "  [{:.1}, {:.1}) {:>12.3} {:>10.3} {:>7}",
                    bin.lo, bin.hi, bin.mean_score, bin.accuracy, bin.count
                );
            }
        }
    }

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
