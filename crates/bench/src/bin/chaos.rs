//! Chaos experiment: detection quality under injected verifier faults.
//!
//! Sweeps fault rates × failure policies through the resilient runtime and
//! reports F1-vs-fault-rate plus the abstention fraction, demonstrating:
//!
//! (a) at 0% faults the resilient detector reproduces the plain detector's
//!     scores bitwise;
//! (b) with one of the two models hard-down, detection still runs and F1
//!     degrades gracefully to exactly the single-SLM level;
//! (c) with every model down the detector abstains — it never fabricates a
//!     score.
//!
//! Fully deterministic for a fixed seed: all fault draws are keyed by
//! (seed, model, request text, attempt), never by call order.

use bench::approaches::{build_detector, Approach};
use bench::runner::{score_dataset_with, task_examples, LabeledScore, Task};
use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use eval::sweep::best_f1;
use hallu_core::{AggregationMean, DetectorConfig, ResilientDetector};
use hallu_dataset::{Dataset, DatasetBuilder};
use rag::FailurePolicy;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};

const DATASET_SEED: u64 = 0xC4A05;
const DATASET_SETS: usize = 60;
const FAULT_SEEDS: [u64; 2] = [1101, 2202];

/// Build the proposed two-model detector behind fault injectors.
fn resilient_detector(profiles: [FaultProfile; 2]) -> ResilientDetector {
    let [p0, p1] = profiles;
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
        Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
    ];
    ResilientDetector::try_new(verifiers, DetectorConfig::default())
        .expect("two verifiers supplied")
}

/// Aggregate counters over one dataset pass.
#[derive(Debug, Default, Clone, Copy)]
struct ChaosTally {
    responses: usize,
    abstained: usize,
    retries: u64,
    timeouts: u64,
    quarantined: u64,
    breaker_trips: u64,
    breaker_skips: u64,
}

/// Calibrate and score the dataset through the resilient runtime.
/// `None` marks an abstained response.
fn score_resilient(
    detector: &mut ResilientDetector,
    dataset: &Dataset,
) -> (Vec<(Option<f64>, hallu_dataset::ResponseLabel)>, ChaosTally) {
    for set in &dataset.sets {
        for response in &set.responses {
            detector.calibrate(&set.question, &set.context, &response.text);
        }
    }
    let mut tally = ChaosTally::default();
    let scored = dataset
        .iter_examples()
        .map(|(set, response)| {
            let verdict = detector.score(&set.question, &set.context, &response.text);
            tally.responses += 1;
            if let Some(t) = verdict.telemetry() {
                tally.retries += t.retries;
                tally.timeouts += t.timeouts;
                tally.quarantined += t.quarantined;
                tally.breaker_trips += t.breaker_trips;
                tally.breaker_skips += t.breaker_skips;
            }
            if verdict.is_abstain() {
                tally.abstained += 1;
            }
            (verdict.score(), response.label)
        })
        .collect();
    (scored, tally)
}

/// Apply a failure policy to abstentions and compute best F1 on a task.
/// Fail-open serves unverified (score 1.0 — always accepted), fail-closed
/// blocks (score 0.0), abstain drops the response from evaluation.
fn policy_f1(
    scored: &[(Option<f64>, hallu_dataset::ResponseLabel)],
    policy: FailurePolicy,
    task: Task,
) -> Option<f64> {
    let labeled: Vec<LabeledScore> = scored
        .iter()
        .filter_map(|&(score, label)| {
            let score = match (score, policy) {
                (Some(s), _) => s,
                (None, FailurePolicy::FailOpen) => 1.0,
                (None, FailurePolicy::FailClosed) => 0.0,
                (None, FailurePolicy::Abstain) => return None,
            };
            Some(LabeledScore { label, score })
        })
        .collect();
    best_f1(&task_examples(&labeled, task)).map(|p| p.f1)
}

fn policy_label(policy: FailurePolicy) -> &'static str {
    match policy {
        FailurePolicy::FailOpen => "fail-open",
        FailurePolicy::FailClosed => "fail-closed",
        FailurePolicy::Abstain => "abstain",
    }
}

fn main() {
    let dataset = DatasetBuilder::new(DATASET_SEED, DATASET_SETS).build();
    let mut record = ExperimentRecord::new(
        "ext-chaos",
        "Detection quality under injected verifier faults",
    );

    // (a) Zero faults: the resilient runtime is a bitwise no-op.
    {
        let mut plain = build_detector(Approach::Proposed, AggregationMean::Harmonic);
        let plain_scores = score_dataset_with(&mut plain, &dataset);
        let mut res = resilient_detector([
            FaultProfile::none(FAULT_SEEDS[0]),
            FaultProfile::none(FAULT_SEEDS[1]),
        ]);
        let (scored, tally) = score_resilient(&mut res, &dataset);
        assert_eq!(tally.abstained, 0, "no faults, no abstentions");
        for (p, (s, _)) in plain_scores.iter().zip(&scored) {
            assert_eq!(
                p.score.to_bits(),
                s.expect("scored").to_bits(),
                "zero-fault resilient score must equal plain score bitwise"
            );
        }
        println!(
            "(a) zero faults: {} responses, all scores bitwise-identical to the plain detector",
            tally.responses
        );
        record.measure("zero-fault bitwise-identical", 1.0);
    }

    // (b) One model hard-down: graceful degradation to the single-SLM level.
    {
        let mut down = resilient_detector([
            FaultProfile::none(FAULT_SEEDS[0]),
            FaultProfile::down(FAULT_SEEDS[1]),
        ]);
        let (scored, tally) = score_resilient(&mut down, &dataset);
        assert_eq!(
            tally.abstained, 0,
            "one live model must keep detection running"
        );
        let mut single = build_detector(Approach::Qwen2Only, AggregationMean::Harmonic);
        let single_scores = score_dataset_with(&mut single, &dataset);
        for (p, (s, _)) in single_scores.iter().zip(&scored) {
            assert_eq!(
                p.score.to_bits(),
                s.expect("scored").to_bits(),
                "surviving-model scores must equal the single-SLM detector's"
            );
        }
        for task in [Task::CorrectVsWrong, Task::CorrectVsPartial] {
            let f1_down = policy_f1(&scored, FailurePolicy::Abstain, task).expect("examples");
            println!(
                "(b) minicpm hard-down ({}): F1 {:.3} == single-SLM qwen2 level \
                 (breaker trips {}, skips {})",
                task.label(),
                f1_down,
                tally.breaker_trips,
                tally.breaker_skips,
            );
            record.measure(format!("one-down f1 {}", task.label()), f1_down);
        }
        record.measure("one-down breaker trips", tally.breaker_trips as f64);
    }

    // (c) Total outage: abstain, never fabricate.
    {
        let mut dead = resilient_detector([
            FaultProfile::down(FAULT_SEEDS[0]),
            FaultProfile::down(FAULT_SEEDS[1]),
        ]);
        let (scored, tally) = score_resilient(&mut dead, &dataset);
        assert_eq!(
            tally.abstained, tally.responses,
            "with every model down the detector must abstain on every response"
        );
        assert!(
            scored.iter().all(|(s, _)| s.is_none()),
            "no fabricated scores"
        );
        println!(
            "(c) total outage: {}/{} responses abstained (no fabricated scores)",
            tally.abstained, tally.responses
        );
        record.measure("total-outage abstention fraction", 1.0);
    }

    // Sweep: fault rate × failure policy.
    println!(
        "\n{:>6}  {:>9}  {:>11}  {:>11}  {:>9}  {:>8}  {:>8}  {:>6}",
        "rate", "abstain%", "f1-open", "f1-closed", "f1-drop", "retries", "timeouts", "trips"
    );
    for rate in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let mut det = resilient_detector([
            FaultProfile::uniform(FAULT_SEEDS[0], rate),
            FaultProfile::uniform(FAULT_SEEDS[1], rate),
        ]);
        let (scored, tally) = score_resilient(&mut det, &dataset);
        let abstain_frac = tally.abstained as f64 / tally.responses as f64;
        let task = Task::CorrectVsWrong;
        let mut f1s = Vec::new();
        for policy in [
            FailurePolicy::FailOpen,
            FailurePolicy::FailClosed,
            FailurePolicy::Abstain,
        ] {
            let f1 = policy_f1(&scored, policy, task).unwrap_or(f64::NAN);
            record.measure(
                format!("f1 rate={rate} policy={}", policy_label(policy)),
                f1,
            );
            f1s.push(f1);
        }
        record.measure(format!("abstain-fraction rate={rate}"), abstain_frac);
        println!(
            "{:>6.2}  {:>8.1}%  {:>11.3}  {:>11.3}  {:>9.3}  {:>8}  {:>8}  {:>6}",
            rate,
            abstain_frac * 100.0,
            f1s[0],
            f1s[1],
            f1s[2],
            tally.retries,
            tally.timeouts,
            tally.breaker_trips,
        );
    }

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nrecord appended to {RESULTS_PATH}");
}
