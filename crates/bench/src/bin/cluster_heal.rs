//! Self-healing cluster experiment: failure detection × cache replication
//! under one seeded fault schedule.
//!
//! Sweeps {central, gossip} failure detection × {off, on} verification-cache
//! replication over an 8-shard × 2-member cluster driven at 30 req/s with a
//! seeded chaos plan, demonstrating:
//!
//! (a) every request gets exactly one typed outcome in every cell, and the
//!     decided verdict classes are identical across all four cells — neither
//!     the detector protocol nor replication changes a verdict, they only
//!     move where (and whether) it is computed;
//! (b) replication warms failover targets: with replication on, members
//!     serve cache hits on entries they never computed
//!     (`replicated_hits > 0` after primaries crash);
//! (c) self-healing availability: the gossip + replication cell abstains on
//!     no more keys than the central no-replication baseline;
//! (d) the whole sweep is deterministic — rerunning a cell reproduces its
//!     outcome sequence bitwise, gossip's randomized probe order included.
//!
//! Pass `--smoke` for a reduced load (used by the CI heal-smoke job).

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::{DetectorConfig, ResilientDetector};
use rag::cluster::{
    ChaosPlan, ClusterConfig, ClusterDisposition, ClusterOutcome, ClusterRuntime, ClusterStats,
    DetectorKind, ReplicationConfig,
};
use rag::serving::ShardIdentity;
use rag::{
    FailurePolicy, Priority, RagPipeline, ResilientVerifiedPipeline, ServingConfig, SimulatedLlm,
};
use slm_runtime::gossip::GossipConfig;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const ARRIVAL_SEED: u64 = 0x0C10_50AD;
const CHAOS_SEED: u64 = 0xC4A0_5EED;
const SHARDS: u32 = 8;
const REPLICAS: u32 = 1;
const RATE_PER_S: f64 = 30.0;
const DEADLINE_MS: f64 = 2_000.0;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// SplitMix64 finalizer for the arrival-process draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic exponential inter-arrival gap (ms) for request `i`.
fn interarrival_ms(seed: u64, i: u64, rate_per_s: f64) -> f64 {
    let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let rate_per_ms = rate_per_s / 1000.0;
    -(1.0 - unit).max(f64::MIN_POSITIVE).ln() / rate_per_ms
}

fn priority_for(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// The guarded two-SLM pipeline each member runs, healthy verifiers,
/// seeded per member so construction is reproducible.
fn member_pipeline(identity: ShardIdentity) -> ResilientVerifiedPipeline<FlatIndex> {
    let seed = 5000 + u64::from(identity.shard) * 10 + u64::from(identity.replica);
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .expect("ingest hours doc");
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .expect("ingest leave doc");
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile::none(seed),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::none(seed + 1),
        )),
    ];
    let detector =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).expect("warm-up retrieval");
    p
}

/// One swept cell's aggregates.
struct CellResult {
    outcomes: Vec<ClusterOutcome>,
    stats: ClusterStats,
    abstain_fraction: f64,
    replicated_inserts: u64,
    replicated_hits: u64,
    membership_transitions: usize,
}

fn run_cell(
    detector: DetectorKind,
    replication: bool,
    n: u64,
    horizon_ms: f64,
    episodes: usize,
) -> CellResult {
    let config = ClusterConfig {
        replicas: REPLICAS,
        serving: ServingConfig {
            queue_bound: None,
            default_deadline_ms: DEADLINE_MS,
            ..ServingConfig::default()
        },
        probe_interval_ms: 25.0,
        probe_timeout_ms: 10.0,
        detector,
        replication: replication.then(ReplicationConfig::default),
        ..ClusterConfig::default()
    };
    let plan = ChaosPlan::seeded(CHAOS_SEED, SHARDS, REPLICAS, horizon_ms, episodes);
    let mut cluster = ClusterRuntime::new(SHARDS, config, member_pipeline).with_chaos(plan);
    let mut t = 0.0;
    for i in 0..n {
        t += interarrival_ms(ARRIVAL_SEED, i, RATE_PER_S);
        cluster.submit_at(
            t,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            priority_for(i),
        );
    }
    cluster.run_until_idle();
    let mut outcomes = cluster.drain_outcomes();
    outcomes.sort_by_key(|o| o.id);
    assert_eq!(
        outcomes.len() as u64,
        n,
        "every request must get exactly one outcome"
    );
    let stats = ClusterStats::from_outcomes(&outcomes);
    let cache = cluster.cache_stats_total();
    CellResult {
        abstain_fraction: stats.cluster_abstained as f64 / stats.total as f64,
        replicated_inserts: cache.replicated_inserts,
        replicated_hits: cache.replicated_hits,
        membership_transitions: cluster.membership_timeline().len(),
        outcomes,
        stats,
    }
}

fn detector_label(d: DetectorKind) -> &'static str {
    match d {
        DetectorKind::Central => "central",
        DetectorKind::Gossip(_) => "gossip",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 120 } else { 360 };
    let episodes = if smoke { 5 } else { 10 };
    let horizon_ms = n as f64 / RATE_PER_S * 1000.0;
    let mut record = ExperimentRecord::new(
        "ext-heal",
        "Self-healing cluster: detection protocol x cache replication under chaos",
    );

    println!(
        "{SHARDS} shards x {} members x {RATE_PER_S:.0} req/s, seeded chaos, \
         {n} requests per cell\n",
        REPLICAS + 1
    );
    println!(
        "{:>9} {:>5} {:>9} {:>9} {:>10} {:>10} {:>11}",
        "detector", "repl", "abstain%", "failover", "repl.ins", "repl.hits", "transitions"
    );
    let detectors = [
        DetectorKind::Central,
        DetectorKind::Gossip(GossipConfig::default()),
    ];
    let mut cells = Vec::new();
    for detector in detectors {
        for replication in [false, true] {
            let cell = run_cell(detector, replication, n, horizon_ms, episodes);
            println!(
                "{:>9} {:>5} {:>8.1}% {:>9} {:>10} {:>10} {:>11}",
                detector_label(detector),
                if replication { "on" } else { "off" },
                100.0 * cell.abstain_fraction,
                cell.stats.failovers,
                cell.replicated_inserts,
                cell.replicated_hits,
                cell.membership_transitions,
            );
            let label = format!("{} repl={}", detector_label(detector), replication);
            record.measure(format!("abstain rate {label}"), cell.abstain_fraction);
            record.measure(
                format!("replicated hits {label}"),
                cell.replicated_hits as f64,
            );
            cells.push((detector_label(detector), replication, cell));
        }
    }

    let cell = |d: &str, r: bool| {
        cells
            .iter()
            .find(|(det, repl, _)| *det == d && *repl == r)
            .map(|(_, _, c)| c)
            .expect("swept cell")
    };

    // Invariant (a): decided verdict classes are identical across cells —
    // detection protocol and replication move work, never verdicts.
    let baseline = cell("central", false);
    for (d, r) in [("central", true), ("gossip", false), ("gossip", true)] {
        let other = cell(d, r);
        for (b, o) in baseline.outcomes.iter().zip(&other.outcomes) {
            if let (ClusterDisposition::Completed(_), ClusterDisposition::Completed(_)) =
                (&b.disposition, &o.disposition)
            {
                assert_eq!(
                    b.label(),
                    o.label(),
                    "cell {d}/repl={r} changed a decided verdict for {:?}",
                    o.question
                );
            }
        }
    }

    // Invariant (b): replication warms failover targets.
    for d in ["central", "gossip"] {
        let warmed = cell(d, true);
        assert!(
            warmed.replicated_inserts > 0,
            "{d}: sync rounds must ship cache entries"
        );
        assert!(
            warmed.replicated_hits > 0,
            "{d}: failover targets must serve entries they never computed"
        );
    }

    // Invariant (c): self-healing availability — gossip + replication
    // abstains on no more keys than the central no-replication baseline.
    let healed = cell("gossip", true);
    assert!(
        healed.abstain_fraction <= baseline.abstain_fraction,
        "gossip+replication must not lose more keys than the central baseline: {} !<= {}",
        healed.abstain_fraction,
        baseline.abstain_fraction
    );

    // Invariant (d): rerunning the most complex cell reproduces it bitwise.
    let rerun = run_cell(
        DetectorKind::Gossip(GossipConfig::default()),
        true,
        n,
        horizon_ms,
        episodes,
    );
    assert_eq!(
        rerun.outcomes, healed.outcomes,
        "same seeds, same outcome sequence"
    );
    assert_eq!(
        rerun.membership_transitions, healed.membership_transitions,
        "same seeds, same membership timeline length"
    );

    println!("\nabstain rate (availability)");
    println!("{:>9} {:>10} {:>10}", "detector", "repl off", "repl on");
    for d in ["central", "gossip"] {
        println!(
            "{d:>9} {:>9.1}% {:>9.1}%",
            100.0 * cell(d, false).abstain_fraction,
            100.0 * cell(d, true).abstain_fraction
        );
    }

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nsaved ext-heal to {RESULTS_PATH}");
}
