//! Cluster experiment: the sharded verification cluster under load and
//! under chaos, on one shared virtual clock.
//!
//! Sweeps replica count × chaos on/off over an 8-shard cluster driven at
//! 30 req/s and reports sustained throughput, p99 latency, abstain rate,
//! and failover counts per cell, demonstrating:
//!
//! (a) every submitted request gets exactly one typed [`ClusterOutcome`]
//!     — chaos included — and a chaos-free cluster abstains on nothing;
//! (b) replicas buy availability: under the same seeded fault schedule,
//!     the cluster-abstain rate falls as replicas are added, because
//!     crashed primaries fail over instead of dropping their keys;
//! (c) the whole experiment is deterministic — seeded Poisson arrivals,
//!     a seeded [`ChaosPlan`], simulated service times, a virtual clock —
//!     so every rerun reproduces every failover and every abstention.
//!
//! Pass `--smoke` for a reduced load (used by the CI cluster-smoke job).

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::{DetectorConfig, ResilientDetector};
use rag::cluster::{ChaosPlan, ClusterConfig, ClusterOutcome, ClusterRuntime, ClusterStats};
use rag::serving::ShardIdentity;
use rag::{
    FailurePolicy, Priority, RagPipeline, ResilientVerifiedPipeline, ServingConfig, SimulatedLlm,
};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const ARRIVAL_SEED: u64 = 0x0C10_50AD;
const CHAOS_SEED: u64 = 0xC4A0_5EED;
const SHARDS: u32 = 8;
const RATE_PER_S: f64 = 30.0;
/// End-to-end deadline per request, in simulated milliseconds.
const DEADLINE_MS: f64 = 2_000.0;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// SplitMix64 finalizer for the arrival-process draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic exponential inter-arrival gap (ms) for request `i` at
/// `rate_per_s` requests per second, via inverse-CDF sampling.
fn interarrival_ms(seed: u64, i: u64, rate_per_s: f64) -> f64 {
    let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let rate_per_ms = rate_per_s / 1000.0;
    -(1.0 - unit).max(f64::MIN_POSITIVE).ln() / rate_per_ms
}

fn priority_for(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// The guarded two-SLM pipeline each member runs, healthy verifiers,
/// seeded per member so construction is reproducible.
fn member_pipeline(identity: ShardIdentity) -> ResilientVerifiedPipeline<FlatIndex> {
    let seed = 5000 + u64::from(identity.shard) * 10 + u64::from(identity.replica);
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .expect("ingest hours doc");
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .expect("ingest leave doc");
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile::none(seed),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::none(seed + 1),
        )),
    ];
    let detector =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).expect("warm-up retrieval");
    p
}

/// Nearest-rank p99 of `values` (unsorted input).
fn p99(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One swept cell's aggregates.
struct CellResult {
    throughput_per_s: f64,
    p99_latency_ms: f64,
    abstain_fraction: f64,
    stats: ClusterStats,
}

fn run_cell(replicas: u32, chaos: bool, n: u64, horizon_ms: f64, episodes: usize) -> CellResult {
    let config = ClusterConfig {
        replicas,
        serving: ServingConfig {
            queue_bound: None,
            default_deadline_ms: DEADLINE_MS,
            ..ServingConfig::default()
        },
        probe_interval_ms: 25.0,
        probe_timeout_ms: 10.0,
        ..ClusterConfig::default()
    };
    let plan = if chaos {
        ChaosPlan::seeded(CHAOS_SEED, SHARDS, replicas, horizon_ms, episodes)
    } else {
        ChaosPlan::none()
    };
    let mut cluster = ClusterRuntime::new(SHARDS, config, member_pipeline).with_chaos(plan);
    let mut t = 0.0;
    for i in 0..n {
        t += interarrival_ms(ARRIVAL_SEED, i, RATE_PER_S);
        cluster.submit_at(
            t,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            priority_for(i),
        );
    }
    cluster.run_until_idle();
    let outcomes = cluster.drain_outcomes();
    // Invariant (a): one typed outcome per submission, no exceptions.
    assert_eq!(
        outcomes.len() as u64,
        n,
        "every request must get exactly one outcome (replicas={replicas} chaos={chaos})"
    );
    let stats = ClusterStats::from_outcomes(&outcomes);
    if !chaos {
        assert_eq!(
            stats.cluster_abstained, 0,
            "a chaos-free cluster abstains on nothing: {stats:?}"
        );
        assert_eq!(
            stats.failovers, 0,
            "a chaos-free cluster never fails over: {stats:?}"
        );
    }
    let horizon_s = (cluster.now_ms() / 1000.0).max(f64::MIN_POSITIVE);
    let served: Vec<&ClusterOutcome> = outcomes.iter().filter(|o| o.is_served()).collect();
    let latencies: Vec<f64> = served
        .iter()
        .map(|o| o.finished_at_ms - o.submitted_at_ms)
        .collect();
    CellResult {
        throughput_per_s: served.len() as f64 / horizon_s,
        p99_latency_ms: p99(&latencies),
        abstain_fraction: stats.cluster_abstained as f64 / stats.total as f64,
        stats,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 90 } else { 360 };
    let episodes = if smoke { 4 } else { 10 };
    // Expected workload window (the chaos plan is spread over it).
    let horizon_ms = n as f64 / RATE_PER_S * 1000.0;
    let mut record = ExperimentRecord::new(
        "ext-cluster",
        "Sharded cluster throughput and abstain rate under chaos",
    );

    println!(
        "{SHARDS} shards x {RATE_PER_S:.0} req/s x replicas {{0,1,2}} x chaos {{off,on}}, \
         {n} requests per cell\n"
    );
    println!(
        "{:>8} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "replicas", "chaos", "throughput/s", "p99 ms", "abstain%", "failover", "served", "shed"
    );
    let mut cells = Vec::new();
    for replicas in [0u32, 1, 2] {
        for chaos in [false, true] {
            let cell = run_cell(replicas, chaos, n, horizon_ms, episodes);
            println!(
                "{replicas:>8} {:>6} {:>12.2} {:>9.1} {:>8.1}% {:>9} {:>9} {:>7}",
                if chaos { "on" } else { "off" },
                cell.throughput_per_s,
                cell.p99_latency_ms,
                100.0 * cell.abstain_fraction,
                cell.stats.failovers,
                cell.stats.served,
                cell.stats.shed,
            );
            let label = format!("r{replicas} chaos={}", if chaos { "on" } else { "off" });
            record.measure(format!("throughput {label}"), cell.throughput_per_s);
            record.measure(format!("abstain rate {label}"), cell.abstain_fraction);
            cells.push((replicas, chaos, cell));
        }
    }

    // Invariant (b): under the same plan, replicas monotonically shrink
    // (weakly) the set of keys lost to chaos.
    let abstain_at = |r: u32| {
        cells
            .iter()
            .find(|(replicas, chaos, _)| *replicas == r && *chaos)
            .map(|(_, _, c)| c.abstain_fraction)
            .expect("swept cell")
    };
    assert!(
        abstain_at(2) <= abstain_at(0),
        "two replicas must not lose more keys than none: {} !<= {}",
        abstain_at(2),
        abstain_at(0)
    );

    println!("\nsustained throughput (req/s served)");
    println!("{:>8} {:>10} {:>10}", "replicas", "chaos off", "chaos on");
    for replicas in [0u32, 1, 2] {
        let get = |chaos: bool| {
            cells
                .iter()
                .find(|(r, c, _)| *r == replicas && *c == chaos)
                .map(|(_, _, cell)| cell.throughput_per_s)
                .expect("swept cell")
        };
        println!("{replicas:>8} {:>10.2} {:>10.2}", get(false), get(true));
    }
    println!("\ncluster abstain rate");
    println!("{:>8} {:>10} {:>10}", "replicas", "chaos off", "chaos on");
    for replicas in [0u32, 1, 2] {
        let get = |chaos: bool| {
            cells
                .iter()
                .find(|(r, c, _)| *r == replicas && *c == chaos)
                .map(|(_, _, cell)| cell.abstain_fraction)
                .expect("swept cell")
        };
        println!(
            "{replicas:>8} {:>9.1}% {:>9.1}%",
            100.0 * get(false),
            100.0 * get(true)
        );
    }

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nsaved ext-cluster to {RESULTS_PATH}");
}
