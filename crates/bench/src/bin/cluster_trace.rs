//! End-to-end cluster tracing experiment: one seeded chaos scenario,
//! observed through all three cluster-scale observability planes.
//!
//! Runs an 8-shard × 2-member cluster (gossip detection + cache
//! replication) at 30 req/s under a seeded chaos plan with distributed
//! tracing on, then demonstrates:
//!
//! (a) causal trace trees: every request's span fragments — router routing
//!     and failover decisions, member queueing, scoring, replication-warmed
//!     cache lookups — stitch into one tree keyed by its deterministic
//!     trace id;
//! (b) critical-path accounting: the p99 completed request's latency
//!     decomposes into named segments (queue / scoring / routing / ...)
//!     covering at least 95% of its wall time;
//! (c) telemetry federation: router and member registries merge into one
//!     fleet-level snapshot with deterministic label order;
//! (d) deterministic SLO alerting: multi-window burn-rate rules over the
//!     outcome stream emit a typed alert timeline on the virtual clock;
//! (e) the whole thing is reproducible — a second run from the same
//!     `(seed, config)` yields bitwise-identical trace trees, federated
//!     exposition, and alert timeline.
//!
//! Pass `--smoke` for a reduced load (used by the CI trace-smoke job).

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::{critical_path, render_trace_tree, AlertEvent, SloConfig, TraceContext, TraceTree};
use rag::cluster::{
    ChaosPlan, ClusterConfig, ClusterDisposition, ClusterOutcome, ClusterRuntime, DetectorKind,
    ReplicationConfig,
};
use rag::serving::ShardIdentity;
use rag::{
    FailurePolicy, Priority, RagPipeline, ResilientVerifiedPipeline, ServingConfig, SimulatedLlm,
};
use slm_runtime::gossip::GossipConfig;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const ARRIVAL_SEED: u64 = 0x0C10_50AD;
const CHAOS_SEED: u64 = 0xC4A0_5EED;
const SHARDS: u32 = 8;
const REPLICAS: u32 = 1;
const RATE_PER_S: f64 = 30.0;
const DEADLINE_MS: f64 = 2_000.0;
const LATENCY_SLO_MS: f64 = 900.0;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// SplitMix64 finalizer for the arrival-process draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic exponential inter-arrival gap (ms) for request `i`.
fn interarrival_ms(seed: u64, i: u64, rate_per_s: f64) -> f64 {
    let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let rate_per_ms = rate_per_s / 1000.0;
    -(1.0 - unit).max(f64::MIN_POSITIVE).ln() / rate_per_ms
}

fn priority_for(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// The guarded two-SLM pipeline each member runs, healthy verifiers,
/// seeded per member so construction is reproducible.
fn member_pipeline(identity: ShardIdentity) -> ResilientVerifiedPipeline<FlatIndex> {
    let seed = 5000 + u64::from(identity.shard) * 10 + u64::from(identity.replica);
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .expect("ingest hours doc");
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .expect("ingest leave doc");
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile::none(seed),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::none(seed + 1),
        )),
    ];
    let detector =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).expect("warm-up retrieval");
    p
}

/// Everything one run emits: the artifacts the reproducibility assertions
/// compare bitwise.
struct RunResult {
    trace_seed: u64,
    outcomes: Vec<ClusterOutcome>,
    traces: Vec<TraceTree>,
    federated_page: String,
    federated_series: usize,
    alerts: Vec<AlertEvent>,
}

fn run_once(n: u64, horizon_ms: f64, episodes: usize) -> RunResult {
    let config = ClusterConfig {
        replicas: REPLICAS,
        serving: ServingConfig {
            queue_bound: None,
            default_deadline_ms: DEADLINE_MS,
            ..ServingConfig::default()
        },
        probe_interval_ms: 25.0,
        probe_timeout_ms: 10.0,
        detector: DetectorKind::Gossip(GossipConfig::default()),
        replication: Some(ReplicationConfig::default()),
        ..ClusterConfig::default()
    };
    let trace_seed = config.trace_seed;
    let plan = ChaosPlan::seeded(CHAOS_SEED, SHARDS, REPLICAS, horizon_ms, episodes);
    let mut cluster = ClusterRuntime::new(SHARDS, config, member_pipeline)
        .with_chaos(plan)
        .with_slos(vec![
            SloConfig::availability(0.99),
            SloConfig::latency(0.95, LATENCY_SLO_MS),
        ]);
    let mut t = 0.0;
    for i in 0..n {
        t += interarrival_ms(ARRIVAL_SEED, i, RATE_PER_S);
        cluster.submit_at(
            t,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            priority_for(i),
        );
    }
    cluster.run_until_idle();
    let mut outcomes = cluster.drain_outcomes();
    outcomes.sort_by_key(|o| o.id);
    assert_eq!(
        outcomes.len() as u64,
        n,
        "every request must get exactly one outcome"
    );
    let snapshot = cluster.federated_snapshot();
    RunResult {
        trace_seed,
        outcomes,
        traces: cluster.stitched_traces(),
        federated_page: cluster.render_prometheus_federated(),
        federated_series: snapshot.series.len(),
        alerts: cluster.alert_timeline().to_vec(),
    }
}

/// The p99 *completed* request by end-to-end latency (crash-aborted work
/// spends its whole life queued, so attribution there is trivially all
/// queue time; completed requests are the interesting decomposition).
fn p99_completed(outcomes: &[ClusterOutcome]) -> &ClusterOutcome {
    let mut completed: Vec<&ClusterOutcome> = outcomes
        .iter()
        .filter(|o| matches!(o.disposition, ClusterDisposition::Completed(_)))
        .collect();
    assert!(!completed.is_empty(), "chaos must leave survivors");
    completed.sort_by(|a, b| {
        (a.finished_at_ms - a.submitted_at_ms).total_cmp(&(b.finished_at_ms - b.submitted_at_ms))
    });
    let idx = ((completed.len() - 1) as f64 * 0.99).floor() as usize;
    completed[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 120 } else { 360 };
    let episodes = if smoke { 5 } else { 10 };
    let horizon_ms = n as f64 / RATE_PER_S * 1000.0;
    let mut record = ExperimentRecord::new(
        "ext-trace",
        "Distributed tracing, telemetry federation, and SLO alerting under cluster chaos",
    );

    println!(
        "{SHARDS} shards x {} members x {RATE_PER_S:.0} req/s, seeded chaos, {n} requests, \
         tracing on\n",
        REPLICAS + 1
    );
    let run = run_once(n, horizon_ms, episodes);

    // (a) Causal trace trees: every submitted request has one.
    assert_eq!(
        run.traces.len() as u64,
        n,
        "one stitched trace tree per request"
    );
    println!(
        "stitched {} trace trees ({} truncated by flight-ring wrap)",
        run.traces.len(),
        run.traces.iter().filter(|t| t.truncated).count()
    );

    // (b) Critical path of the p99 completed request: >= 95% attributed.
    let p99 = p99_completed(&run.outcomes);
    let p99_latency = p99.finished_at_ms - p99.submitted_at_ms;
    let trace_id = TraceContext::root(run.trace_seed, p99.id).trace_id;
    let tree = run
        .traces
        .iter()
        .find(|t| t.trace_id == trace_id)
        .expect("the p99 request has a stitched trace");
    let path = critical_path(tree);
    println!("\np99 completed request (id {}):", p99.id);
    println!("{}", render_trace_tree(tree));
    println!(
        "critical path: {:.1} ms total, {:.1}% attributed",
        path.total_ms,
        100.0 * path.attributed_fraction()
    );
    println!("{:>14} {:>10} {:>7}", "segment", "ms", "share");
    for seg in &path.segments {
        println!(
            "{:>14} {:>10.1} {:>6.1}%",
            seg.kind.label(),
            seg.width_ms(),
            100.0 * seg.width_ms() / path.total_ms.max(f64::MIN_POSITIVE)
        );
    }
    assert!(
        path.attributed_fraction() >= 0.95,
        "p99 critical path must attribute >= 95% of wall time, got {:.3}",
        path.attributed_fraction()
    );

    // (c) Federation: one fleet-level page, counters summed across the
    // router and every member under deterministic label order.
    println!(
        "\nfederated {} series across {} sources into one exposition page ({} bytes)",
        run.federated_series,
        1 + (SHARDS * (REPLICAS + 1)) as usize,
        run.federated_page.len()
    );
    for family in [
        "hallu_cluster_routed_total",
        "hallu_cluster_replicated_total",
        "hallu_detector_probes_total",
        "hallu_serving_outcomes_total",
    ] {
        assert!(
            run.federated_page.contains(family),
            "federated page must carry {family}"
        );
    }

    // (d) SLO alerting: the chaos scenario must trip at least one
    // burn-rate rule, and every event is typed and timestamped.
    println!("\nalert timeline ({} events):", run.alerts.len());
    for a in &run.alerts {
        println!(
            "  t={:>9.1} ms  {:<12} {:<9} {:<6} fast_burn={:.2} slow_burn={:.2}",
            a.at_ms,
            a.slo,
            a.kind.label(),
            a.severity.label(),
            a.fast_burn,
            a.slow_burn
        );
    }
    assert!(
        !run.alerts.is_empty(),
        "seeded chaos must trip at least one burn-rate alert"
    );

    // (e) Bitwise reproducibility of all three planes.
    let rerun = run_once(n, horizon_ms, episodes);
    assert_eq!(
        rerun.traces, run.traces,
        "same (seed, config), same stitched trace trees"
    );
    assert_eq!(
        rerun.federated_page, run.federated_page,
        "same (seed, config), same federated exposition page"
    );
    assert_eq!(
        rerun.alerts, run.alerts,
        "same (seed, config), same alert timeline"
    );
    println!("\nrerun: trace trees, federated page, alert timeline all bitwise identical");

    record.measure("p99 completed latency ms", p99_latency);
    record.measure("p99 attributed fraction", path.attributed_fraction());
    record.measure("trace trees", run.traces.len() as f64);
    record.measure("federated series", run.federated_series as f64);
    record.measure("alert events", run.alerts.len() as f64);
    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("saved ext-trace to {RESULTS_PATH}");
}
