//! Print the dataset card and export the evaluation dataset to JSON for
//! inspection (`dataset.json` in the working directory).

use hallu_dataset::stats::dataset_stats;
use hallu_dataset::DatasetBuilder;

fn main() {
    let dataset = DatasetBuilder::default().build();
    println!("== evaluation dataset (seed {}) ==", dataset.seed);
    println!("{}", dataset_stats(&dataset).render());

    let held_out = DatasetBuilder::new(0xBEEF, 48).build_held_out();
    println!("== held-out dataset (seed {}) ==", held_out.seed);
    println!("{}", dataset_stats(&held_out).render());

    let path = std::path::Path::new("dataset.json");
    hallu_dataset::io::save(&dataset, path).expect("write dataset.json");
    println!("full dataset exported to {}", path.display());

    // Show one complete set as a sample.
    let sample = &dataset.sets[0];
    println!(
        "\n== sample set (id {}, topic {}) ==",
        sample.id, sample.topic
    );
    println!("question: {}", sample.question);
    println!("context:  {}", sample.context);
    for r in &sample.responses {
        println!("[{}] {}", r.label, r.text);
    }
}
