//! Regenerates Fig. 3: best F1 per approach on both detection tasks.

use bench::experiments::{evaluation_dataset, fig3};
use bench::{save_record, RESULTS_PATH};

fn main() {
    let dataset = evaluation_dataset();
    for record in fig3(&dataset) {
        save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("records appended to {RESULTS_PATH}");
}
