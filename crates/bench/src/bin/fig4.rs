//! Regenerates Fig. 4: best precision (recall >= 0.5) and its recall.

use bench::experiments::{evaluation_dataset, fig4};
use bench::{save_record, RESULTS_PATH};

fn main() {
    let dataset = evaluation_dataset();
    for record in fig4(&dataset) {
        save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("records appended to {RESULTS_PATH}");
}
