//! Regenerates Fig. 5: best F1 per aggregation mean (Eq. 6-10).

use bench::experiments::{evaluation_dataset, fig5};
use bench::{save_record, RESULTS_PATH};

fn main() {
    let dataset = evaluation_dataset();
    for record in fig5(&dataset) {
        save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("records appended to {RESULTS_PATH}");
}
