//! Regenerates Fig. 6: score distributions by label, proposed vs P(yes).

use bench::experiments::{evaluation_dataset, fig6};
use bench::{save_record, RESULTS_PATH};

fn main() {
    let dataset = evaluation_dataset();
    for record in fig6(&dataset) {
        save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("records appended to {RESULTS_PATH}");
}
