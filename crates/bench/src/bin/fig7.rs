//! Regenerates Fig. 7: score distributions, geometric vs harmonic mean.

use bench::experiments::{evaluation_dataset, fig7};
use bench::{save_record, RESULTS_PATH};

fn main() {
    let dataset = evaluation_dataset();
    for record in fig7(&dataset) {
        save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("records appended to {RESULTS_PATH}");
}
