//! Out-of-domain generalization extension: fit the decision threshold on the
//! twelve core handbook topics, then apply the same detector and threshold
//! to four topics it has never seen (training, travel, security, parking).
//! Reports the held-out F1 at the transferred threshold against the oracle
//! (best-achievable) held-out F1.

use bench::approaches::{build_detector, Approach};
use bench::runner::{score_dataset_with, task_examples, Task};
use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use eval::sweep::best_f1;
use hallu_core::threshold::{fit, Objective};
use hallu_core::AggregationMean;
use hallu_dataset::DatasetBuilder;

fn main() {
    let core = DatasetBuilder::default().build();
    let held_out = DatasetBuilder::new(0xBEEF, 48).build_held_out();

    // One detector: calibrated (Eq. 4 statistics) on core traffic only —
    // exactly what a deployment carries into a new domain.
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let core_scores = score_dataset_with(&mut detector, &core);

    // Fit the threshold on the core correct-vs-partial task.
    let core_examples = task_examples(&core_scores, Task::CorrectVsPartial);
    let fitted = fit(&core_examples, Objective::MaxF1).expect("core dev split");
    println!(
        "core fit: threshold {:.3} -> F1 {:.3} (p {:.3}, r {:.3})",
        fitted.threshold, fitted.f1, fitted.precision, fitted.recall
    );

    // Score the held-out topics WITHOUT recalibrating.
    let held_scores: Vec<_> = held_out
        .iter_examples()
        .map(|(set, response)| bench::runner::LabeledScore {
            label: response.label,
            score: detector
                .score(&set.question, &set.context, &response.text)
                .score,
        })
        .collect();

    let mut record = ExperimentRecord::new(
        "ext-generalization",
        "Threshold transfer from core topics to four unseen topics (best F1)",
    );
    record.measure("core in-domain F1", fitted.f1);
    for task in [Task::CorrectVsWrong, Task::CorrectVsPartial] {
        let examples = task_examples(&held_scores, task);
        let at_transferred = eval::metrics::f1_score(&examples, fitted.threshold);
        let oracle = best_f1(&examples).expect("examples").f1;
        println!(
            "held-out {}: transferred-threshold F1 {:.3} vs oracle F1 {:.3}",
            task.label(),
            at_transferred,
            oracle
        );
        record.measure(
            format!("held-out {} transferred", task.label()),
            at_transferred,
        );
        record.measure(format!("held-out {} oracle", task.label()), oracle);
    }

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
