//! `halludetect` — command-line hallucination scoring.
//!
//! Reads JSON requests from stdin (one object per line) and writes one JSON
//! verdict per line to stdout — the shape a sidecar guardrail process needs.
//!
//! ```text
//! echo '{"question":"What are the working hours?",
//!        "context":"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
//!        "response":"The working hours are 9 AM to 9 PM."}' \
//!   | cargo run -p bench --release --bin halludetect -- --threshold 0.45
//! ```
//!
//! Flags: `--threshold <f64>` (default 0.45), `--mean harmonic|arithmetic|
//! geometric|min|max`, `--single` (Qwen2 only instead of the two-SLM
//! ensemble), `--no-split`, `--explain`.

use std::io::{BufRead, Write};

use hallu_core::{explain, AggregationMean, DetectorConfig, HallucinationDetector};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

#[derive(serde::Deserialize)]
struct Request {
    question: String,
    context: String,
    response: String,
}

#[derive(serde::Serialize)]
struct Verdict {
    score: f64,
    accepted: bool,
    #[serde(skip_serializing_if = "Option::is_none")]
    weakest_sentence: Option<String>,
    #[serde(skip_serializing_if = "Vec::is_empty")]
    sentence_scores: Vec<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    explanation: Option<String>,
}

fn parse_args() -> (f64, AggregationMean, bool, bool, bool) {
    let mut threshold = 0.45;
    let mut mean = AggregationMean::Harmonic;
    let mut single = false;
    let mut no_split = false;
    let mut want_explain = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threshold needs a number"));
            }
            "--mean" => {
                let name = args.next().unwrap_or_else(|| die("--mean needs a value"));
                mean = AggregationMean::ALL
                    .into_iter()
                    .find(|m| m.as_str() == name)
                    .unwrap_or_else(|| die("unknown mean (harmonic/arithmetic/geometric/max/min)"));
            }
            "--single" => single = true,
            "--no-split" => no_split = true,
            "--explain" => want_explain = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: halludetect [--threshold F] [--mean NAME] [--single] [--no-split] [--explain]\n\
                     reads {{question, context, response}} JSON lines from stdin"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    (threshold, mean, single, no_split, want_explain)
}

fn die(msg: &str) -> ! {
    eprintln!("halludetect: {msg}");
    std::process::exit(2);
}

fn main() {
    let (threshold, mean, single, no_split, want_explain) = parse_args();
    let mut verifiers: Vec<Box<dyn YesNoVerifier>> = vec![Box::new(qwen2_sim())];
    if !single {
        verifiers.push(Box::new(minicpm_sim()));
    }
    let mut detector = HallucinationDetector::new(
        verifiers,
        DetectorConfig {
            mean,
            split: !no_split,
            parallel: true,
            ..Default::default()
        },
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) if !l.trim().is_empty() => l,
            Ok(_) => continue,
            Err(e) => die(&format!("stdin error: {e}")),
        };
        let request: Request = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("halludetect: skipping malformed line: {e}");
                continue;
            }
        };
        // Online calibration: every request also feeds Eq. 4's statistics.
        detector.calibrate(&request.question, &request.context, &request.response);
        let result = detector.score(&request.question, &request.context, &request.response);
        let e = explain(&result, threshold);
        let verdict = Verdict {
            score: result.score,
            accepted: e.accepted,
            weakest_sentence: e.weakest_sentence.as_ref().map(|(s, _)| s.clone()),
            sentence_scores: result.sentences.iter().map(|s| s.combined).collect(),
            explanation: want_explain.then(|| e.summary()),
        };
        serde_json::to_writer(&mut out, &verdict).expect("stdout");
        writeln!(out).expect("stdout");
    }
}
