//! Learned meta-checker extension: train a logistic combiner over the
//! aggregation-mean features on the first half of the dataset, evaluate on
//! the held-out second half, and compare against the fixed harmonic checker.

use bench::approaches::{build_detector, Approach};
use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use eval::sweep::best_f1;
use hallu_core::{response_features, AggregationMean, LogisticCombiner};
use hallu_dataset::{DatasetBuilder, ResponseLabel};

fn main() {
    let dataset = DatasetBuilder::default().build();
    let split = dataset.len() / 2;

    // One detector, calibrated on the full corpus (unsupervised statistics).
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    for set in &dataset.sets {
        for r in &set.responses {
            detector.calibrate(&set.question, &set.context, &r.text);
        }
    }

    // Score everything once; keep the full results for feature extraction.
    let mut rows = Vec::new(); // (set index, label, DetectionResult)
    for (i, set) in dataset.sets.iter().enumerate() {
        for r in &set.responses {
            let result = detector.score(&set.question, &set.context, &r.text);
            rows.push((i, r.label, result));
        }
    }

    // Train on the correct-vs-partial task (the hard one), first half only.
    let train: Vec<_> = rows
        .iter()
        .filter(|(i, label, _)| *i < split && *label != ResponseLabel::Wrong)
        .map(|(_, label, result)| (response_features(result), *label == ResponseLabel::Correct))
        .collect();
    let model = LogisticCombiner::fit(&train, 500, 0.5).expect("two-class training data");
    println!(
        "trained on {} responses; standardized weights {:?}",
        train.len(),
        model.weights()
    );

    // Evaluate both checkers on the held-out half.
    let test: Vec<_> = rows
        .iter()
        .filter(|(i, label, _)| *i >= split && *label != ResponseLabel::Wrong)
        .collect();
    let harmonic_examples: Vec<(f64, bool)> = test
        .iter()
        .map(|(_, label, result)| (result.score, *label == ResponseLabel::Correct))
        .collect();
    let learned_examples: Vec<(f64, bool)> = test
        .iter()
        .map(|(_, label, result)| {
            (
                model.predict(&response_features(result)),
                *label == ResponseLabel::Correct,
            )
        })
        .collect();

    let harmonic_f1 = best_f1(&harmonic_examples).expect("examples").f1;
    let learned_f1 = best_f1(&learned_examples).expect("examples").f1;
    println!(
        "held-out best F1 (correct-vs-partial): harmonic {harmonic_f1:.3}  learned {learned_f1:.3}"
    );

    let mut record = ExperimentRecord::new(
        "ext-learned",
        "Learned logistic meta-checker vs fixed harmonic mean (held-out half)",
    );
    record.measure("harmonic (fixed)", harmonic_f1);
    record.measure("logistic (learned)", learned_f1);
    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
