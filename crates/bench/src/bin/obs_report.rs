//! Observability experiment: instrument the full detection + serving stack
//! and prove the instrumentation free.
//!
//! Runs a chaos-grade overload scenario twice — once bare, once with a
//! `hallu-obs` sink attached end to end (serving runtime → guarded
//! pipeline → resilient detector → fault injectors) — and asserts
//! outcome-for-outcome bitwise parity. Then:
//!
//! - prints the Prometheus exposition page and self-checks it (every
//!   required metric family present, no NaN values);
//! - drives a hedged verifier and a concurrency gate on the same sink so
//!   every instrumented subsystem appears on one page;
//! - prints an exemplar flight record for a shed request and for a
//!   guaranteed Abstain (total-outage sub-scenario under
//!   `FailurePolicy::Abstain`);
//! - saves an `ext-obs` record to `EXPERIMENTS-results.json`, with the
//!   exemplar flight records attached as notes.
//!
//! Pass `--smoke` for the time-bounded CI variant.

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::{FlightRecord, Obs};
use rag::cluster::{ChaosPlan, ClusterConfig, ClusterRuntime, DetectorKind, ReplicationConfig};
use rag::serving::ShardIdentity;
use rag::{
    FailurePolicy, Priority, RagPipeline, RequestOutcome, ResilientVerifiedPipeline, ServingConfig,
    ServingRuntime, ServingStats, ShedPolicy, SimulatedLlm,
};
use slm_runtime::gossip::GossipConfig;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::VerificationRequest;
use slm_runtime::{
    ConcurrencyGate, FallibleVerifier, FaultInjector, FaultProfile, HedgeConfig, HedgedVerifier,
    Reliable,
};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const ARRIVAL_SEED: u64 = 0x0B5E7;
const FAULT_SEEDS: [u64; 2] = [5501, 6602];
const DEADLINE_MS: f64 = 300.0;

/// Metric families the exposition page must contain — one per
/// instrumented subsystem. The CI `obs-smoke` job greps stdout for these.
const REQUIRED_FAMILIES: [&str; 8] = [
    "hallu_detector_events_total",
    "hallu_detector_verdicts_total",
    "hallu_detector_simulated_ms",
    "hallu_faults_calls_total",
    "hallu_hedge_calls_total",
    "hallu_gate_calls_total",
    "hallu_serving_outcomes_total",
    "hallu_serving_queue_depth",
];

/// Cluster-scope metric families the *federated* page must contain — the
/// router, replication, and failure-detection machinery. The CI
/// `obs-smoke` job greps stdout for these too.
const REQUIRED_CLUSTER_FAMILIES: [&str; 6] = [
    "hallu_cluster_submitted_total",
    "hallu_cluster_routed_total",
    "hallu_cluster_outcomes_total",
    "hallu_cluster_replicated_total",
    "hallu_cluster_view_up",
    "hallu_detector_probes_total",
];

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// SplitMix64 finalizer for the arrival-process draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic exponential inter-arrival gap (ms) at `rate_per_s`.
fn interarrival_ms(seed: u64, i: u64, rate_per_s: f64) -> f64 {
    let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    -(1.0 - unit).max(f64::MIN_POSITIVE).ln() / (rate_per_s / 1000.0)
}

/// The guarded two-SLM pipeline, with the fault injectors optionally wired
/// to the same sink as everything above them.
fn pipeline(
    profiles: [FaultProfile; 2],
    obs: Option<&Obs>,
) -> ResilientVerifiedPipeline<FlatIndex> {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .expect("ingest hours doc");
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .expect("ingest leave doc");
    let [p0, p1] = profiles;
    let mut i0 = FaultInjector::new(Reliable::new(qwen2_sim()), p0);
    let mut i1 = FaultInjector::new(Reliable::new(minicpm_sim()), p1);
    if let Some(obs) = obs {
        i0 = i0.with_obs(obs);
        i1 = i1.with_obs(obs);
    }
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![Box::new(i0), Box::new(i1)];
    let detector =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).expect("warm-up retrieval");
    p
}

/// Chaos profiles: transients, stalls, garbage, and a mid-run outage.
fn chaos_profiles() -> [FaultProfile; 2] {
    [
        FaultProfile {
            transient_rate: 0.15,
            stall_rate: 0.05,
            garbage_rate: 0.05,
            ..FaultProfile::none(FAULT_SEEDS[0])
        },
        FaultProfile {
            transient_rate: 0.25,
            stall_rate: 0.05,
            ..FaultProfile::none(FAULT_SEEDS[1])
        },
    ]
}

/// Drive `n` Poisson arrivals through a fresh overloaded runtime.
fn run_scenario(n: u64, obs: Option<&Obs>) -> Vec<RequestOutcome> {
    let mut rt = ServingRuntime::new(
        pipeline(chaos_profiles(), obs),
        ServingConfig {
            queue_bound: Some(4),
            shed_policy: ShedPolicy::ShedLowestPriority,
            default_deadline_ms: DEADLINE_MS,
        },
    );
    if let Some(obs) = obs {
        rt = rt.with_obs(obs);
    }
    let mut t = 0.0;
    for i in 0..n {
        t += interarrival_ms(ARRIVAL_SEED, i, 30.0);
        let priority = match i % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        rt.submit_at(
            t,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            priority,
        );
    }
    rt.run_until_idle();
    rt.drain_outcomes()
}

/// Exercise the hedge and gate wrappers against the same sink so their
/// metric families appear on the shared exposition page.
fn exercise_hedge_and_gate(obs: &Obs, n: u64) {
    let stall_profile = FaultProfile {
        stall_rate: 0.05,
        ..FaultProfile::none(FAULT_SEEDS[0])
    };
    let hedged = HedgedVerifier::new(
        FaultInjector::new(Reliable::new(qwen2_sim()), stall_profile),
        Reliable::new(minicpm_sim()),
        HedgeConfig::default(),
    )
    .with_obs(obs);
    let gate = ConcurrencyGate::new(Reliable::new(qwen2_sim()), 1).with_obs(obs);
    for i in 0..n {
        let sentence = format!("The store operates from 9 AM to 5 PM on day {i}.");
        let req = VerificationRequest::new(QUESTIONS[0], QUESTIONS[0], &sentence);
        let _ = hedged.try_p_yes(&req);
        let _ = gate.try_p_yes(&req);
    }
}

/// A single-request total outage: both verifiers down, `Abstain` policy —
/// the flight record the README documents.
fn abstain_flight_record() -> FlightRecord {
    let obs = Obs::new();
    let down = [
        FaultProfile::down(FAULT_SEEDS[0]),
        FaultProfile::down(FAULT_SEEDS[1]),
    ];
    let mut rt =
        ServingRuntime::new(pipeline(down, Some(&obs)), ServingConfig::default()).with_obs(&obs);
    rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
    rt.run_until_idle();
    let outcomes = rt.drain_outcomes();
    assert_eq!(outcomes.len(), 1);
    let records = obs.flight_records();
    let record = records
        .iter()
        .find(|r| r.outcome == "abstained")
        .expect("a total outage under FailurePolicy::Abstain must abstain")
        .clone();
    assert!(
        record.field("guard_decision", "policy").is_some(),
        "the abstain flight record must capture the guard decision: {record:?}"
    );
    record
}

/// A small self-healing cluster (gossip detection + cache replication)
/// under brief seeded chaos, federated to one fleet-level exposition page.
fn cluster_federation_page(n: u64) -> String {
    let config = ClusterConfig {
        replicas: 1,
        detector: DetectorKind::Gossip(GossipConfig::default()),
        replication: Some(ReplicationConfig::default()),
        ..ClusterConfig::default()
    };
    let horizon_ms = n as f64 * 25.0;
    let mut cluster = ClusterRuntime::new(4, config, |identity: ShardIdentity| {
        let seed = 7_000 + u64::from(identity.shard) * 10 + u64::from(identity.replica);
        pipeline(
            [FaultProfile::none(seed), FaultProfile::none(seed + 1)],
            None,
        )
    })
    .with_chaos(ChaosPlan::seeded(0xB5E7_CA05, 4, 1, horizon_ms, 3));
    for i in 0..n {
        cluster.submit_at(
            25.0 * i as f64,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            Priority::Normal,
        );
    }
    cluster.run_until_idle();
    cluster.drain_outcomes();
    cluster.render_prometheus_federated()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 40 } else { 160 };
    let mut record = ExperimentRecord::new(
        "ext-obs",
        "Observability: metrics registry, spans, and flight recorder",
    );

    // (a) Bitwise parity: the instrumented run decides exactly what the
    // bare run decides, outcome for outcome.
    let bare = run_scenario(n, None);
    let obs = Obs::new();
    let instrumented = run_scenario(n, Some(&obs));
    assert_eq!(
        bare, instrumented,
        "instrumentation must not perturb a single verdict or shed"
    );
    let stats = ServingStats::from_outcomes(&instrumented);
    println!("(a) parity: {n} chaos-overload requests, instrumented == bare bitwise ({stats:?})");
    record.measure("bitwise parity instrumented vs bare", 1.0);

    // (b) One page for every subsystem.
    exercise_hedge_and_gate(&obs, if smoke { 60 } else { 200 });
    let page = obs.render_prometheus();
    for family in REQUIRED_FAMILIES {
        assert!(
            page.contains(family),
            "exposition page is missing required family {family}"
        );
    }
    assert!(!page.contains("NaN"), "exposition page contains NaN");
    println!(
        "\n(b) metrics page ({} required families present):\n",
        REQUIRED_FAMILIES.len()
    );
    println!("{page}");

    let snapshot = obs.metrics_snapshot();
    record.measure("metric series", snapshot.series.len() as f64);
    record.measure("flight records retained", obs.flight_records().len() as f64);
    record.measure("spans retained", obs.finished_spans().len() as f64);
    record.measure(
        "serving outcomes counted",
        snapshot.total("hallu_serving_outcomes_total"),
    );

    // (c) Exemplar flight records: a shed under pressure...
    let records = obs.flight_records();
    if let Some(shed) = records.iter().find(|r| r.outcome.starts_with("shed:")) {
        let json = serde_json::to_string_pretty(shed).expect("serialize flight record");
        println!("(c) exemplar shed flight record:\n{json}\n");
        record.note(format!("shed flight record: {json}"));
    }
    // ...and the guaranteed Abstain from a total outage.
    let abstain = abstain_flight_record();
    let json = serde_json::to_string_pretty(&abstain).expect("serialize flight record");
    println!("(c) exemplar abstain flight record (total outage):\n{json}");
    record.note(format!("abstain flight record: {json}"));

    // (d) Cluster scope: federate a small self-healing cluster's router +
    // member registries into one fleet-level page and self-check it.
    let cluster_page = cluster_federation_page(if smoke { 48 } else { 96 });
    for family in REQUIRED_CLUSTER_FAMILIES {
        assert!(
            cluster_page.contains(family),
            "federated page is missing cluster family {family}"
        );
    }
    assert!(!cluster_page.contains("NaN"), "federated page contains NaN");
    println!(
        "\n(d) federated cluster page ({} required cluster families present):\n",
        REQUIRED_CLUSTER_FAMILIES.len()
    );
    println!("{cluster_page}");
    record.measure("federated page bytes", cluster_page.len() as f64);

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nsaved ext-obs to {RESULTS_PATH}");
}
