//! Which hallucination types are hardest to catch?
//!
//! Buckets the partial-task responses by the injection operator that
//! produced them (TimeShift / DayRangeFlip / NumberJitter / Negate /
//! ForeignFact — the machine-readable version of Table I's contradiction
//! taxonomy) and reports the detection rate per operator at the fitted
//! threshold.

use std::collections::BTreeMap;

use bench::approaches::{build_detector, Approach};
use bench::runner::{score_dataset_with, task_examples, Task};
use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::threshold::{fit, Objective};
use hallu_core::AggregationMean;
use hallu_dataset::{DatasetBuilder, ResponseLabel};

fn main() {
    let dataset = DatasetBuilder::default().build();
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let scores = score_dataset_with(&mut detector, &dataset);
    let fitted = fit(
        &task_examples(&scores, Task::CorrectVsPartial),
        Objective::MaxF1,
    )
    .expect("dev split");
    println!(
        "threshold {:.3} (best F1 {:.3})\n",
        fitted.threshold, fitted.f1
    );

    // Bucket partial responses by their injection operator.
    let mut caught: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // op -> (caught, total)
    let mut idx = 0usize;
    for set in &dataset.sets {
        for response in &set.responses {
            if response.label == ResponseLabel::Partial {
                let op = response
                    .ops
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "unknown".into());
                let entry = caught.entry(op).or_insert((0, 0));
                entry.1 += 1;
                if scores[idx].score < fitted.threshold {
                    entry.0 += 1; // correctly rejected
                }
            }
            idx += 1;
        }
    }

    let mut record = ExperimentRecord::new(
        "ext-op-difficulty",
        "Detection rate of partial responses per injection operator",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>10}",
        "operator", "caught", "total", "rate"
    );
    for (op, (hit, total)) in &caught {
        let rate = *hit as f64 / (*total).max(1) as f64;
        println!("{op:<14} {hit:>8} {total:>8} {rate:>10.2}");
        record.measure(op, rate);
    }
    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nrecord appended to {RESULTS_PATH}");
}
