//! Overload experiment: guarded QA under load, on a virtual clock.
//!
//! Sweeps arrival rate × queue bound × shed policy through the
//! [`rag::ServingRuntime`] and reports goodput, p99 latency, shed fraction,
//! and abstain fraction per cell, demonstrating:
//!
//! (a) at zero load pressure (unbounded queue, infinite deadlines, arrivals
//!     slower than service) the serving runtime's outcomes are bitwise
//!     identical to calling the pipeline directly;
//! (b) under overload, every submitted request still gets exactly one typed
//!     outcome — goodput saturates and the excess is shed explicitly
//!     instead of collapsing the queue;
//! (c) hedged verification cuts the stall-dominated tail latency of a
//!     flaky model without touching the median.
//!
//! Fully deterministic: arrivals come from seeded inverse-CDF exponential
//! draws, service costs are simulated milliseconds, and the clock is
//! virtual — reruns reproduce every shed and every deadline miss.
//!
//! Pass `--smoke` for a reduced load (used by the CI robustness job).

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use hallu_core::{DetectorConfig, ResilientDetector};
use rag::{
    Disposition, FailurePolicy, Priority, RagPipeline, RequestOutcome, ResilientVerifiedPipeline,
    ServingConfig, ServingRuntime, ServingStats, ShedPolicy, SimulatedLlm,
};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::VerificationRequest;
use slm_runtime::{
    FallibleVerifier, FaultInjector, FaultProfile, HedgeConfig, HedgedVerifier, Reliable,
};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const ARRIVAL_SEED: u64 = 0x0FF10AD;
const FAULT_SEEDS: [u64; 2] = [3301, 4402];
/// End-to-end deadline for swept cells, in simulated milliseconds.
const DEADLINE_MS: f64 = 400.0;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// SplitMix64 finalizer for the arrival-process draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic exponential inter-arrival gap (ms) for request `i` at
/// `rate_per_s` requests per second, via inverse-CDF sampling.
fn interarrival_ms(seed: u64, i: u64, rate_per_s: f64) -> f64 {
    let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let rate_per_ms = rate_per_s / 1000.0;
    -(1.0 - unit).max(f64::MIN_POSITIVE).ln() / rate_per_ms
}

fn priority_for(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// The guarded two-SLM pipeline the serving runtime protects.
fn pipeline(profiles: [FaultProfile; 2]) -> ResilientVerifiedPipeline<FlatIndex> {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .expect("ingest hours doc");
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .expect("ingest leave doc");
    let [p0, p1] = profiles;
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
        Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
    ];
    let detector =
        ResilientDetector::try_new(verifiers, DetectorConfig::default()).expect("two verifiers");
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).expect("warm-up retrieval");
    p
}

fn healthy_pipeline() -> ResilientVerifiedPipeline<FlatIndex> {
    pipeline([
        FaultProfile::none(FAULT_SEEDS[0]),
        FaultProfile::none(FAULT_SEEDS[1]),
    ])
}

/// Nearest-rank p99 of `values` (unsorted input).
fn p99(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn policy_label(policy: ShedPolicy) -> &'static str {
    match policy {
        ShedPolicy::RejectNewest => "reject-newest",
        ShedPolicy::ShedLowestPriority => "shed-low-pri",
        ShedPolicy::LifoUnderOverload => "lifo-overload",
    }
}

/// One swept cell: drive `n` Poisson arrivals through a fresh runtime.
struct CellResult {
    goodput_per_s: f64,
    p99_latency_ms: f64,
    shed_fraction: f64,
    abstain_fraction: f64,
    stats: ServingStats,
}

fn run_cell(rate_per_s: f64, bound: usize, policy: ShedPolicy, n: u64) -> CellResult {
    let mut rt = ServingRuntime::new(
        healthy_pipeline(),
        ServingConfig {
            queue_bound: Some(bound),
            shed_policy: policy,
            default_deadline_ms: DEADLINE_MS,
        },
    );
    let mut t = 0.0;
    for i in 0..n {
        t += interarrival_ms(ARRIVAL_SEED, i, rate_per_s);
        rt.submit_at(
            t,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            priority_for(i),
        );
    }
    rt.run_until_idle();
    let outcomes = rt.drain_outcomes();
    assert_eq!(
        outcomes.len() as u64,
        n,
        "every request must get exactly one outcome"
    );
    let stats = ServingStats::from_outcomes(&outcomes);
    let horizon_s = (rt.now_ms() / 1000.0).max(f64::MIN_POSITIVE);
    let served: Vec<&RequestOutcome> = outcomes.iter().filter(|o| o.is_served()).collect();
    let latencies: Vec<f64> = served.iter().map(|o| o.latency_ms()).collect();
    CellResult {
        goodput_per_s: served.len() as f64 / horizon_s,
        p99_latency_ms: p99(&latencies),
        shed_fraction: stats.shed as f64 / stats.total as f64,
        abstain_fraction: stats.abstained as f64 / stats.total as f64,
        stats,
    }
}

/// (a) Zero pressure: the runtime is a transparent wrapper, bitwise.
fn check_zero_pressure_parity(record: &mut ExperimentRecord, n: u64) {
    let mut direct = healthy_pipeline();
    let mut rt = ServingRuntime::new(healthy_pipeline(), ServingConfig::default());
    // arrivals a full second apart: far slower than any service time
    for i in 0..n {
        rt.submit_at(
            1000.0 * i as f64,
            QUESTIONS[(i % QUESTIONS.len() as u64) as usize],
            priority_for(i),
        );
    }
    rt.run_until_idle();
    let outcomes = rt.drain_outcomes();
    assert_eq!(outcomes.len() as u64, n);
    for (i, outcome) in outcomes.iter().enumerate() {
        let q = QUESTIONS[i % QUESTIONS.len()];
        let expected = direct.ask(q).expect("retrieval");
        assert_eq!(
            outcome.disposition,
            Disposition::Completed(Box::new(expected)),
            "zero-pressure outcome {i} must equal the direct pipeline call bitwise"
        );
        assert_eq!(outcome.queue_wait_ms, 0.0, "no queueing at zero pressure");
    }
    println!(
        "(a) zero pressure: {n} requests, outcomes bitwise-identical to direct pipeline calls"
    );
    record.measure("zero-pressure bitwise parity", 1.0);
}

/// (c) Hedged verification vs. a stall-prone primary: tail latency drops.
fn check_hedging_tail(record: &mut ExperimentRecord, n: u64) {
    // Rare stalls keep the p95 hedge threshold in the normal-latency band,
    // so every stall overshoots it and gets hedged.
    let stall_profile = FaultProfile {
        stall_rate: 0.03,
        ..FaultProfile::none(FAULT_SEEDS[0])
    };
    let unhedged = FaultInjector::new(Reliable::new(qwen2_sim()), stall_profile.clone());
    let hedged = HedgedVerifier::new(
        FaultInjector::new(Reliable::new(qwen2_sim()), stall_profile),
        Reliable::new(minicpm_sim()),
        HedgeConfig::default(),
    );
    let handle = hedged.handle();
    let mut plain_lat = Vec::new();
    let mut hedged_lat = Vec::new();
    for i in 0..n {
        let sentence = format!(
            "The store operates from 9 AM to 5 PM on day {}.",
            i % QUESTIONS.len() as u64
        );
        let req = VerificationRequest::new(QUESTIONS[0], QUESTIONS[0], &sentence);
        if let Ok(p) = unhedged.try_p_yes(&req) {
            plain_lat.push(p.latency_ms);
        }
        if let Ok(p) = hedged.try_p_yes(&req) {
            hedged_lat.push(p.latency_ms);
        }
    }
    let (plain_p99, hedged_p99) = (p99(&plain_lat), p99(&hedged_lat));
    let stats = handle.stats();
    println!(
        "(c) hedging: p99 {plain_p99:.1}ms unhedged -> {hedged_p99:.1}ms hedged \
         ({} hedges, {} wins over {} calls)",
        stats.hedges, stats.hedge_wins, stats.calls
    );
    assert!(
        hedged_p99 < plain_p99,
        "hedging must cut the stall tail: {hedged_p99} !< {plain_p99}"
    );
    record.measure("hedge p99 unhedged ms", plain_p99);
    record.measure("hedge p99 hedged ms", hedged_p99);
    record.measure(
        "hedge fraction",
        stats.hedges as f64 / (stats.calls as f64).max(1.0),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_per_cell: u64 = if smoke { 40 } else { 200 };
    let mut record = ExperimentRecord::new(
        "ext-overload",
        "Serving goodput and shedding under overload",
    );

    check_zero_pressure_parity(&mut record, if smoke { 6 } else { 12 });

    // (b) The sweep: arrival rate x queue bound x shed policy.
    println!(
        "\n{:>6} {:>6} {:>14}  {:>9} {:>9} {:>7} {:>9} {:>7}",
        "rate/s", "bound", "policy", "goodput/s", "p99 ms", "shed%", "abstain%", "served"
    );
    for rate in [3.0, 10.0, 30.0] {
        for bound in [4usize, 16] {
            for policy in [
                ShedPolicy::RejectNewest,
                ShedPolicy::ShedLowestPriority,
                ShedPolicy::LifoUnderOverload,
            ] {
                let cell = run_cell(rate, bound, policy, n_per_cell);
                println!(
                    "{rate:>6.0} {bound:>6} {:>14}  {:>9.2} {:>9.1} {:>6.1}% {:>8.1}% {:>7}",
                    policy_label(policy),
                    cell.goodput_per_s,
                    cell.p99_latency_ms,
                    100.0 * cell.shed_fraction,
                    100.0 * cell.abstain_fraction,
                    cell.stats.served,
                );
                if bound == 4 {
                    let label = policy_label(policy);
                    record.measure(
                        format!("goodput r{rate:.0} b{bound} {label}"),
                        cell.goodput_per_s,
                    );
                    record.measure(
                        format!("shed r{rate:.0} b{bound} {label}"),
                        cell.shed_fraction,
                    );
                }
            }
        }
    }

    check_hedging_tail(&mut record, if smoke { 150 } else { 500 });

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nsaved ext-overload to {RESULTS_PATH}");
}
