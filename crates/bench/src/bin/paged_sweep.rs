//! Paged KV pool experiment: COW fork cost, bitwise parity, and continuous
//! batching — the serving-side half of the prefix-sharing story.
//!
//! Four claims, each checked with `assert!` so the sweep doubles as a
//! regression gate (the `fork_speedup ...` / `paged_pool ...` /
//! `continuous_joins ...` lines are grepped by the CI `paged-smoke` job):
//!
//! 1. **Parity** — a paged probe (pooled prefill, COW fork, suffix-only
//!    extend) returns bitwise-identical logits to a cold contiguous
//!    full-prompt prefill at every prefix length swept, and a full rerun
//!    of the sweep reproduces the exact same bits.
//! 2. **Fork speedup** — a paged fork clones one `Arc` per resident page
//!    instead of memcpying every prefix row: ≥ 3× faster than the
//!    contiguous fork at realistic prefix lengths (≥ 128 tokens).
//! 3. **Flat fork cost** — paged fork time grows with *pages touched*, not
//!    tokens: the 224-token fork costs at most a small multiple of the
//!    4-token fork, while the contiguous fork grows linearly.
//! 4. **Pool economics** — the sweep completes with zero rejected
//!    reservations and zero leaked pages, with COW copies and page reuse
//!    both actually observed.

use std::sync::Arc;
use std::time::Instant;

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use slm_runtime::{
    ContinuousBatcher, ContinuousBatcherConfig, ModelConfig, PagedKvPool, PagedPoolConfig,
    PrefillStream, TransformerLM, PREFILL_BLOCK,
};

const VOCAB: usize = 8192;
const MODEL_SEED: u64 = 0xF222;
const PREFIX_LENS: [usize; 4] = [4, 32, 128, 224];
const SUFFIX_LEN: usize = 16;
/// Forks per timing sample: a single paged fork is nanoseconds-scale, so
/// timing batches keeps the clock granularity out of the ratio.
const FORK_REPS: usize = 1024;

/// Deterministic pseudo-random token ids in `[0, VOCAB)` — prefill operates
/// on raw ids, so no tokenizer is needed to measure it.
fn tokens(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % VOCAB as u64) as u32
        })
        .collect()
}

/// Best-of-3 wall-clock for `f` (the minimum is the least noisy estimator
/// for a deterministic workload).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One full paged probe pass: pooled prefix prefill, one COW fork per
/// suffix, suffix-only extend. Returns the logit bits of every probe — the
/// fingerprint the rerun must reproduce exactly.
fn paged_probe_pass(model: &TransformerLM, pool: &Arc<PagedKvPool>) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for &plen in &PREFIX_LENS {
        let prefix = tokens(plen as u64, plen);
        let mut warm = pool.new_cache(plen + SUFFIX_LEN);
        warm.try_reserve(plen).expect("pool sized for the sweep");
        model.prefill_cache_only(&prefix, &mut warm);
        for s in 0..4u64 {
            let suffix = tokens(0xA0 + s, SUFFIX_LEN);
            let mut fork = warm.fork_with_capacity(plen + SUFFIX_LEN);
            fork.try_reserve(SUFFIX_LEN)
                .expect("pool sized for the sweep");
            out.push(bits(&model.prefill(&suffix, &mut fork)));
        }
    }
    out
}

fn main() {
    let model = TransformerLM::synthetic(ModelConfig::qwen2_like(VOCAB), MODEL_SEED);
    let pool_config = PagedPoolConfig::for_model(model.config(), 128);
    let pool = Arc::new(PagedKvPool::new(pool_config));
    let mut record = ExperimentRecord::new(
        "ext-paged",
        "Paged KV pool: COW fork cost x prefix length, parity rerun, continuous batching",
    );

    // ---- Part 1: parity + fork cost, per prefix length ----
    println!(
        "{:>6}  {:>5}  {:>12}  {:>12}  {:>8}",
        "prefix", "pages", "contig ns", "paged ns", "speedup"
    );
    let mut speedup_at_realistic = f64::INFINITY;
    let mut paged_ns_short = 0.0f64;
    let mut paged_ns_long = 0.0f64;
    let mut contig_ns_long = 0.0f64;
    for &plen in &PREFIX_LENS {
        let prefix = tokens(plen as u64, plen);
        let suffix = tokens(0xA0, SUFFIX_LEN);
        let need = plen + SUFFIX_LEN;

        // Cold contiguous truth: one full-prompt prefill.
        let full: Vec<u32> = prefix.iter().chain(&suffix).copied().collect();
        let mut cold = model.new_cache_with_capacity(need);
        let want = bits(&model.prefill(&full, &mut cold));

        // Contiguous warm path: snapshot + memcpy fork + suffix extend.
        let mut contig_warm = model.new_cache_with_capacity(need);
        model.prefill_cache_only(&prefix, &mut contig_warm);
        let mut contig_fork = contig_warm.fork_with_capacity(need);
        let got_contig = bits(&model.prefill(&suffix, &mut contig_fork));

        // Paged warm path: pooled snapshot + Arc-clone fork + COW extend.
        let mut paged_warm = pool.new_cache(need);
        paged_warm
            .try_reserve(plen)
            .expect("pool sized for the sweep");
        model.prefill_cache_only(&prefix, &mut paged_warm);
        let mut paged_fork = paged_warm.fork_with_capacity(need);
        paged_fork
            .try_reserve(SUFFIX_LEN)
            .expect("pool sized for the sweep");
        let got_paged = bits(&model.prefill(&suffix, &mut paged_fork));

        assert_eq!(
            want, got_contig,
            "prefix={plen}: contiguous fork must be bit-identical to cold prefill"
        );
        assert_eq!(
            want, got_paged,
            "prefix={plen}: paged COW fork must be bit-identical to cold prefill"
        );

        // Fork cost alone: what a sentence probe pays before its suffix runs.
        let contig_s = best_of_3(|| {
            for _ in 0..FORK_REPS {
                std::hint::black_box(contig_warm.fork_with_capacity(need));
            }
        });
        let paged_s = best_of_3(|| {
            for _ in 0..FORK_REPS {
                std::hint::black_box(paged_warm.fork_with_capacity(need));
            }
        });
        let contig_ns = contig_s * 1e9 / FORK_REPS as f64;
        let paged_ns = paged_s * 1e9 / FORK_REPS as f64;
        let speedup = contig_s / paged_s;
        if plen >= 128 {
            speedup_at_realistic = speedup_at_realistic.min(speedup);
        }
        if plen == PREFIX_LENS[0] {
            paged_ns_short = paged_ns;
        }
        if plen == 224 {
            paged_ns_long = paged_ns;
            contig_ns_long = contig_ns;
        }
        let pages = plen.div_ceil(pool.config().block_tokens);
        println!("{plen:>6}  {pages:>5}  {contig_ns:>12.0}  {paged_ns:>12.0}  {speedup:>7.2}x");
        // Stable grep target for the CI paged-smoke job.
        println!("fork_speedup prefix={plen} {speedup:.2}");
        record.measure(format!("fork speedup prefix={plen}"), speedup);
        record.measure(format!("paged fork ns prefix={plen}"), paged_ns);
        record.measure(format!("contiguous fork ns prefix={plen}"), contig_ns);
    }
    assert!(
        speedup_at_realistic >= 3.0,
        "headline claim failed: paged fork must be >= 3x contiguous at prefix >= 128 \
         (got {speedup_at_realistic:.2}x)"
    );
    // Flatness: 224 tokens is 4 pages, so the paged fork may cost a few
    // page-clones more than the 4-token fork — but never the 56x a
    // row-proportional copy would cost.
    let flatness = paged_ns_long / paged_ns_short.max(1.0);
    println!("fork_flatness paged_224_over_4 {flatness:.2}");
    assert!(
        flatness <= 16.0,
        "headline claim failed: paged fork cost must be flat in prefix length \
         (224-token fork is {flatness:.2}x the 4-token fork)"
    );
    record.measure("fork flatness 224/4", flatness);

    // ---- Part 2: bitwise-identical rerun of the whole probe matrix ----
    let pass1 = paged_probe_pass(&model, &pool);
    let rerun_pool = Arc::new(PagedKvPool::new(pool_config));
    let pass2 = paged_probe_pass(&model, &rerun_pool);
    assert_eq!(
        pass1, pass2,
        "a rerun of the paged sweep on a fresh pool must reproduce every logit bit"
    );
    println!(
        "\nrerun: {} probes reproduced bit-for-bit on a fresh pool",
        pass1.len()
    );

    // ---- Part 3: continuous batching joins mid-flight, bits unchanged ----
    let seqs: Vec<Vec<u32>> = (0..4)
        .map(|i| tokens(0xC0 + i, 48 + 40 * i as usize))
        .collect();
    let isolated: Vec<Vec<u32>> = seqs
        .iter()
        .map(|s| {
            let mut kv = pool.new_cache(s.len());
            kv.try_reserve(s.len()).expect("pool sized for the sweep");
            bits(&model.prefill(s, &mut kv))
        })
        .collect();
    let mut batcher = ContinuousBatcher::new(ContinuousBatcherConfig {
        max_active: 2,
        block_ms: 1.0,
    });
    for (i, s) in seqs.iter().enumerate() {
        let mut kv = pool.new_cache(s.len());
        kv.try_reserve(s.len()).expect("pool sized for the sweep");
        batcher.submit(1.5 * i as f64, PrefillStream::new(&model, s.clone(), kv));
    }
    let out = batcher.run(0.0);
    for (i, (logits, _)) in out.results.iter().enumerate() {
        assert_eq!(
            bits(logits),
            isolated[i],
            "seq {i}: joining a prefill batch in flight must not change a logit"
        );
    }
    let expected_blocks: u64 = seqs
        .iter()
        .map(|s| s.len().div_ceil(PREFILL_BLOCK) as u64)
        .sum();
    assert_eq!(out.blocks_run, expected_blocks, "no block may run twice");
    println!(
        "continuous_joins {} blocks_run {} (bit-identical to isolated prefill)",
        out.joins.len(),
        out.blocks_run
    );
    record.measure("continuous joins", out.joins.len() as f64);
    drop(out);

    // ---- Part 4: pool economics — no rejection, no leak, real sharing ----
    let stats = pool.stats();
    assert!(
        stats.cow_copies > 0,
        "suffix extends on shared snapshots must have copied-on-write: {stats:?}"
    );
    assert!(
        stats.allocs > stats.created as u64,
        "dropped forks must have recycled pages through the free list: {stats:?}"
    );
    assert_eq!(
        stats.pages_live, 0,
        "with every cache dropped, no page may stay live: {stats:?}"
    );
    println!(
        "paged_pool rejected={} cow={} created={} peak_live={} free={}",
        stats.rejected, stats.cow_copies, stats.created, stats.peak_live, stats.pages_free
    );
    assert_eq!(
        stats.rejected, 0,
        "a generously sized pool must complete the sweep without rejecting: {stats:?}"
    );
    record.measure("pool cow copies", stats.cow_copies as f64);
    record.measure("pool peak pages", stats.peak_live as f64);

    println!(
        "\nheadline: paged COW fork {speedup_at_realistic:.1}x contiguous at prefix >= 128 \
         ({contig_ns_long:.0} ns -> {paged_ns_long:.0} ns at 224 tokens), flat in prefix \
         length, zero rejections, bitwise-identical logits throughout"
    );
    record.measure("headline fork speedup", speedup_at_realistic);

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
