//! Prefix-sharing prefill experiment: prefix length × sentences-per-response
//! × prefix-cache capacity.
//!
//! Three claims, each checked with `assert!` so the sweep doubles as a
//! regression gate (the `prefill_speedup ...` / `probe_speedup ...` /
//! `prefix_cache cap=...` lines are grepped by the CI `prefill-smoke` job):
//!
//! 1. **Parity** — the blocked GEMM [`TransformerLM::prefill`] returns
//!    bitwise-identical logits to the token-at-a-time
//!    `prefill_sequential`, and a prefix-cache hit (fork + suffix-only
//!    prefill) returns bitwise-identical logits to a cold full-prompt
//!    prefill, at every configuration swept.
//! 2. **GEMM prefill throughput** — ≥ 3× tokens/s over sequential at
//!    realistic prefix lengths (≥ 128 tokens). Short prompts are reported
//!    too, honestly: blocking cannot amortize anything at 4 tokens.
//! 3. **Warm-probe speedup** — with a warm prefix cache, scoring a sentence
//!    costs one KV fork plus a suffix-only prefill: ≥ 5× over re-prefilling
//!    the full prompt per sentence at prefix 224 × 16 sentences.
//!
//! The capacity sweep cycles probes over 4 distinct prefixes through caches
//! of 1/2/8 entries: an undersized cache thrashes (low hit rate, high
//! evictions) but — because hits are semantically invisible — never changes
//! a logit.

use std::time::Instant;

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use slm_runtime::{ModelConfig, PrefixCache, PrefixCacheConfig, TransformerLM};

const VOCAB: usize = 8192;
const MODEL_SEED: u64 = 0xF111;
const PREFIX_LENS: [usize; 4] = [4, 32, 128, 224];
const SENTENCE_COUNTS: [usize; 2] = [4, 16];
const SUFFIX_LEN: usize = 16;
const CACHE_CAPS: [usize; 3] = [1, 2, 8];

/// Deterministic pseudo-random token ids in `[0, VOCAB)` — prefill operates
/// on raw ids, so no tokenizer is needed to measure it.
fn tokens(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % VOCAB as u64) as u32
        })
        .collect()
}

/// Best-of-3 wall-clock for `f` (the minimum is the least noisy estimator
/// for a deterministic workload).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let model = TransformerLM::synthetic(ModelConfig::qwen2_like(VOCAB), MODEL_SEED);
    let max_seq = model.config().max_seq_len;
    let mut record = ExperimentRecord::new(
        "ext-prefill",
        "GEMM prefill + shared-prefix KV cache: prefix len x sentences x cache capacity",
    );

    // ---- Part 1: GEMM prefill vs token-at-a-time, per prefix length ----
    println!(
        "{:>6}  {:>10}  {:>10}  {:>11}  {:>11}  {:>8}",
        "prefix", "seq ms", "gemm ms", "seq tok/s", "gemm tok/s", "speedup"
    );
    let mut speedup_at_realistic = f64::INFINITY;
    for &plen in &PREFIX_LENS {
        let prompt = tokens(plen as u64, plen);

        let mut kv_seq = model.new_cache();
        let want = model.prefill_sequential(&prompt, &mut kv_seq);
        let mut kv_gemm = model.new_cache();
        let got = model.prefill(&prompt, &mut kv_gemm);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "prefix={plen}: GEMM prefill must be bit-identical to sequential"
        );

        let seq_s = best_of_3(|| {
            let mut kv = model.new_cache();
            std::hint::black_box(model.prefill_sequential(&prompt, &mut kv));
        });
        let gemm_s = best_of_3(|| {
            let mut kv = model.new_cache();
            std::hint::black_box(model.prefill(&prompt, &mut kv));
        });
        let speedup = seq_s / gemm_s;
        if plen >= 128 {
            speedup_at_realistic = speedup_at_realistic.min(speedup);
        }
        println!(
            "{plen:>6}  {:>10.2}  {:>10.2}  {:>11.0}  {:>11.0}  {speedup:>7.2}x",
            seq_s * 1e3,
            gemm_s * 1e3,
            plen as f64 / seq_s,
            plen as f64 / gemm_s,
        );
        // Stable grep target for the CI prefill-smoke job.
        println!("prefill_speedup prefix={plen} {speedup:.2}");
        record.measure(format!("gemm speedup prefix={plen}"), speedup);
        record.measure(format!("gemm tok/s prefix={plen}"), plen as f64 / gemm_s);
    }
    assert!(
        speedup_at_realistic >= 3.0,
        "headline claim failed: GEMM prefill must be >= 3x sequential at prefix >= 128 \
         (got {speedup_at_realistic:.2}x)"
    );

    // ---- Part 2: warm prefix cache vs cold full-prompt probes ----
    println!(
        "\n{:>6}  {:>9}  {:>10}  {:>10}  {:>8}",
        "prefix", "sentences", "cold ms", "warm ms", "speedup"
    );
    let mut warm_speedup_headline = 0.0f64;
    for &plen in &PREFIX_LENS {
        let prefix = tokens(plen as u64, plen);
        for &n_sent in &SENTENCE_COUNTS {
            let suffixes: Vec<Vec<u32>> = (0..n_sent)
                .map(|i| tokens(0xA0 + i as u64, SUFFIX_LEN))
                .collect();

            // Cold: every sentence re-prefills (prefix ++ suffix) from scratch
            // — what the engine does without a prefix cache.
            let cold_probe = |suffix: &[u32]| {
                let full: Vec<u32> = prefix.iter().chain(suffix).copied().collect();
                let mut kv = model.new_cache();
                model.prefill(&full, &mut kv)
            };
            // Warm: fork the shared snapshot, prefill only the suffix.
            let cache = PrefixCache::new(PrefixCacheConfig::default());
            let warm_probe = |suffix: &[u32]| {
                let (mut kv, _) = cache.fork_or_build("sweep", &prefix, max_seq, || {
                    let mut fresh = model.new_cache();
                    model.prefill_cache_only(&prefix, &mut fresh);
                    fresh
                });
                model.prefill(suffix, &mut kv)
            };

            // Parity first: a cache hit must not move a single logit bit.
            for suffix in &suffixes {
                let cold = cold_probe(suffix);
                let warm = warm_probe(suffix);
                assert_eq!(
                    cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "prefix={plen}: prefix-cache hit must be bit-identical to cold prefill"
                );
            }

            let cold_s = best_of_3(|| {
                for suffix in &suffixes {
                    std::hint::black_box(cold_probe(suffix));
                }
            });
            // The snapshot is already resident (built during the parity
            // pass), so this times the steady state: fork + suffix prefill.
            let warm_s = best_of_3(|| {
                for suffix in &suffixes {
                    std::hint::black_box(warm_probe(suffix));
                }
            });
            let speedup = cold_s / warm_s;
            if plen == 224 && n_sent == 16 {
                warm_speedup_headline = speedup;
            }
            println!(
                "{plen:>6}  {n_sent:>9}  {:>10.2}  {:>10.2}  {speedup:>7.2}x",
                cold_s * 1e3,
                warm_s * 1e3,
            );
            println!("probe_speedup prefix={plen} sentences={n_sent} {speedup:.2}");
            record.measure(
                format!("warm probe speedup prefix={plen} sentences={n_sent}"),
                speedup,
            );
        }
    }
    assert!(
        warm_speedup_headline >= 5.0,
        "headline claim failed: warm prefix-cache probes must be >= 5x cold at prefix=224 \
         x 16 sentences (got {warm_speedup_headline:.2}x)"
    );

    // ---- Part 3: capacity — an undersized cache thrashes but stays correct ----
    println!("\ncapacity sweep: 4 distinct prefixes x 4 sentences, round-robin");
    let cap_prefixes: Vec<Vec<u32>> = (0..4).map(|i| tokens(0xC0 + i as u64, 64)).collect();
    let cap_suffixes: Vec<Vec<u32>> = (0..4)
        .map(|i| tokens(0xD0 + i as u64, SUFFIX_LEN))
        .collect();
    let cold_logits: Vec<Vec<Vec<u32>>> = cap_prefixes
        .iter()
        .map(|prefix| {
            cap_suffixes
                .iter()
                .map(|suffix| {
                    let full: Vec<u32> = prefix.iter().chain(suffix).copied().collect();
                    let mut kv = model.new_cache();
                    model
                        .prefill(&full, &mut kv)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect()
        })
        .collect();
    for &cap in &CACHE_CAPS {
        let cache = PrefixCache::new(PrefixCacheConfig::with_max_entries(cap));
        // Round-robin over prefixes (the worst case for LRU at cap < 4:
        // each prefix is evicted before its next use).
        for (si, suffix) in cap_suffixes.iter().enumerate() {
            for (pi, prefix) in cap_prefixes.iter().enumerate() {
                let (mut kv, _) = cache.fork_or_build("sweep", prefix, max_seq, || {
                    let mut fresh = model.new_cache();
                    model.prefill_cache_only(prefix, &mut fresh);
                    fresh
                });
                let logits = model.prefill(suffix, &mut kv);
                assert_eq!(
                    cold_logits[pi][si],
                    logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "cap={cap}: eviction pressure must never change a logit"
                );
            }
        }
        let stats = cache.stats();
        let hit_rate = stats.hit_rate();
        println!(
            "prefix_cache cap={cap} hit_rate={hit_rate:.2} hits={} misses={} evictions={}",
            stats.hits, stats.misses, stats.evictions
        );
        record.measure(format!("capacity hit-rate cap={cap}"), hit_rate);
    }

    println!(
        "\nheadline: GEMM prefill {speedup_at_realistic:.1}x sequential at prefix >= 128; \
         warm prefix-cache probes {warm_speedup_headline:.1}x cold at prefix=224 x 16 \
         sentences (bitwise-identical logits throughout)"
    );
    record.measure("headline gemm speedup", speedup_at_realistic);
    record.measure("headline warm probe speedup", warm_speedup_headline);

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
