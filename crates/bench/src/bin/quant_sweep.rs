//! Quantized-engine sweep: int8 prefill/decode throughput vs f32, the
//! detection-AUC eval gate for int8 and mixed-precision ensembles, and the
//! bitwise reproducibility contract.
//!
//! Claims, each `assert!`ed so the sweep doubles as a regression gate (the
//! `quant_speedup ...` / `quant_auc_delta ...` / `quant_rerun ...` lines are
//! grepped by the CI `quant-smoke` job):
//!
//! 1. **Prefill speedup** — the int8 engine's blocked prefill is ≥ 2× the
//!    f32 engine at realistic prefix lengths (≥ 64 tokens): the GEMM reads
//!    4× fewer weight bytes and the i8·i8→i32 inner loop vectorizes wider.
//!    Measured on the GEMM-bound [`ModelConfig::qwen2_wide`] shape; at the
//!    miniature `hidden = 96` profile, precision-independent work (softmax
//!    `exp`, RoPE, norms, the O(n²) attention walk) dominates and caps the
//!    end-to-end ratio regardless of kernel quality (Amdahl).
//! 2. **Eval gate** — on the golden synthetic dataset, an all-int8 ensemble
//!    and a mixed ensemble (int8 screeners + f32 tie-breaker) reach a
//!    detection AUC within tolerance of the all-f32 baseline. Quantization
//!    may perturb probabilities; it must not change what the detector is
//!    good at.
//! 3. **Reproducibility** — a full rerun from the same (seed, config)
//!    reproduces every int8 logit bit and every AUC digit.

use std::time::Instant;

use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use eval::roc::auc;
use hallu_core::{DetectorConfig, EngineSpec, HallucinationDetector};
use hallu_dataset::{DatasetBuilder, ResponseLabel};
use slm_runtime::bpe::Bpe;
use slm_runtime::{InferenceModel, ModelConfig, Precision, QuantizedLM, TransformerLM};

const VOCAB: usize = 8192;
const MODEL_SEED: u64 = 0x1A8;
const PREFIX_LENS: [usize; 4] = [16, 64, 128, 256];
/// Headline floor: int8 prefill must be at least this many times faster
/// than f32 at every prefix length ≥ 64.
const SPEEDUP_FLOOR: f64 = 2.0;
/// Eval-gate tolerance: |AUC(quantized ensemble) − AUC(f32 ensemble)| on
/// the correct-vs-wrong task must stay within this band.
const AUC_TOLERANCE: f64 = 0.05;
/// Golden-dataset seed and size for the eval gate.
const EVAL_SEED: u64 = 1105;
const EVAL_SETS: usize = 24;

/// Deterministic pseudo-random token ids in `[0, VOCAB)`.
fn tokens(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % VOCAB as u64) as u32
        })
        .collect()
}

/// Best-of-3 wall-clock for `f` (minimum = least-noise estimator for a
/// deterministic workload).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Time one full prefill (cache build + final logits) for `model`.
fn prefill_time<M: InferenceModel>(model: &M, prompt: &[u32]) -> f64 {
    best_of_3(|| {
        let mut cache = model.new_cache_with_capacity(prompt.len());
        std::hint::black_box(model.prefill(prompt, &mut cache));
    })
}

/// Per-response detection scores of `detector` on the correct-vs-wrong task
/// over `dataset`, after calibrating on every response (higher score = more
/// likely correct; `true` marks the positive/correct class). Returned in
/// dataset order so score vectors from different detectors align.
fn detection_scores(
    detector: &mut HallucinationDetector,
    dataset: &hallu_dataset::Dataset,
) -> Vec<(f64, bool)> {
    for set in &dataset.sets {
        for r in &set.responses {
            detector.calibrate(&set.question, &set.context, &r.text);
        }
    }
    let mut examples = Vec::new();
    for set in &dataset.sets {
        for label in [ResponseLabel::Correct, ResponseLabel::Wrong] {
            let r = set.response(label);
            let score = detector.score(&set.question, &set.context, &r.text).score;
            examples.push((score, label == ResponseLabel::Correct));
        }
    }
    examples
}

fn main() {
    let cfg = ModelConfig::qwen2_wide(VOCAB);
    let f32_model = TransformerLM::synthetic(cfg.clone(), MODEL_SEED);
    let int8_model =
        QuantizedLM::synthetic(cfg.clone().with_precision(Precision::Int8), MODEL_SEED);
    let mut record = ExperimentRecord::new(
        "ext-quant",
        "Int8 engine: prefill speedup vs f32, ensemble AUC eval gate, bitwise rerun",
    );

    // ---- Part 1: prefill throughput, f32 vs int8 ----
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "prefix", "f32 us", "int8 us", "speedup"
    );
    let mut speedup_at_realistic = f64::INFINITY;
    for &plen in &PREFIX_LENS {
        let prompt = tokens(plen as u64, plen);
        let f32_s = prefill_time(&f32_model, &prompt);
        let int8_s = prefill_time(&int8_model, &prompt);
        let speedup = f32_s / int8_s;
        if plen >= 64 {
            speedup_at_realistic = speedup_at_realistic.min(speedup);
        }
        println!(
            "{plen:>6}  {:>12.0}  {:>12.0}  {speedup:>7.2}x",
            f32_s * 1e6,
            int8_s * 1e6
        );
        // Stable grep target for the CI quant-smoke job.
        println!("quant_speedup prefix={plen} {speedup:.2}");
        record.measure(format!("prefill speedup prefix={plen}"), speedup);
        record.measure(
            format!("int8 prefill tok/s prefix={plen}"),
            plen as f64 / int8_s,
        );
        record.measure(
            format!("f32 prefill tok/s prefix={plen}"),
            plen as f64 / f32_s,
        );
    }
    assert!(
        speedup_at_realistic >= SPEEDUP_FLOOR,
        "headline claim failed: int8 prefill must be >= {SPEEDUP_FLOOR}x f32 at prefix >= 64 \
         (got {speedup_at_realistic:.2}x)"
    );

    // Decode: per-token forward on a warm cache.
    let warm_prompt = tokens(7, 128);
    let decode_tokens = tokens(11, 64);
    let f32_decode = best_of_3(|| {
        let mut cache = f32_model.new_cache_with_capacity(256);
        f32_model.prefill_cache_only(&warm_prompt, &mut cache);
        for &t in &decode_tokens {
            std::hint::black_box(f32_model.forward_token(t, &mut cache));
        }
    });
    let int8_decode = best_of_3(|| {
        let mut cache = int8_model.new_cache_with_capacity(256);
        int8_model.prefill_cache_only(&warm_prompt, &mut cache);
        for &t in &decode_tokens {
            std::hint::black_box(int8_model.forward_token(t, &mut cache));
        }
    });
    let decode_speedup = f32_decode / int8_decode;
    println!("quant_decode_speedup {decode_speedup:.2}");
    record.measure("decode speedup", decode_speedup);

    // Calibration summary: the largest per-channel weight scale bounds the
    // worst per-element dequantization error (scale/2).
    let f32_weights = slm_runtime::weights::ModelWeights::synthetic(&cfg, MODEL_SEED);
    let qweights = slm_runtime::QuantizedWeights::quantize(&f32_weights);
    let f32_bytes = f32_weights.num_parameters() * 4;
    println!(
        "calibration: max weight scale {:.6}, int8 projections {} bytes \
         (resident {} bytes) vs f32 {} bytes",
        qweights.max_weight_scale(),
        qweights.quantized_bytes(),
        qweights.memory_bytes(),
        f32_bytes
    );
    record.measure("max weight scale", f64::from(qweights.max_weight_scale()));
    record.measure(
        "int8/f32 resident bytes",
        qweights.memory_bytes() as f64 / f32_bytes as f64,
    );

    // ---- Part 2: the AUC eval gate on engine ensembles ----
    let dataset = DatasetBuilder::new(EVAL_SEED, EVAL_SETS).build();
    let corpus: Vec<String> = dataset
        .sets
        .iter()
        .flat_map(|s| {
            std::iter::once(s.context.clone())
                .chain(std::iter::once(s.question.clone()))
                .chain(s.responses.iter().map(|r| r.text.clone()))
        })
        .collect();
    let corpus_refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
    let bpe = Bpe::train(&corpus_refs, 400);
    let engine_cfg = ModelConfig::tiny(bpe.vocab_size());

    let specs_at = |precisions: &[Precision]| -> Vec<EngineSpec> {
        precisions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                EngineSpec::new(
                    format!("engine-{i}-{}", p.label()),
                    engine_cfg.clone(),
                    40 + i as u64,
                )
                .with_precision(p)
            })
            .collect()
    };
    let scores_of = |precisions: &[Precision]| -> Vec<(f64, bool)> {
        let mut d = HallucinationDetector::engine_ensemble(
            DetectorConfig::default(),
            &specs_at(precisions),
            &bpe,
        )
        .expect("non-empty ensemble");
        detection_scores(&mut d, &dataset)
    };
    /// Mean and max absolute per-response score drift between two aligned
    /// score vectors — the direct measure of how far quantization moves the
    /// detector's outputs, independent of the AUC baseline.
    fn score_drift(a: &[(f64, bool)], b: &[(f64, bool)]) -> (f64, f64) {
        let diffs: Vec<f64> = a
            .iter()
            .zip(b)
            .map(|(&(x, _), &(y, _))| (x - y).abs())
            .collect();
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let max = diffs.iter().fold(0.0f64, |m, &d| m.max(d));
        (mean, max)
    }

    use Precision::{Int8, F32};
    let scores_f32 = scores_of(&[F32, F32, F32]);
    let scores_int8 = scores_of(&[Int8, Int8, Int8]);
    let scores_mixed = scores_of(&[Int8, Int8, F32]);
    let auc_f32 = auc(&scores_f32);
    let auc_int8 = auc(&scores_int8);
    let auc_mixed = auc(&scores_mixed);
    let delta_int8 = (auc_int8 - auc_f32).abs();
    let delta_mixed = (auc_mixed - auc_f32).abs();
    let (drift_int8_mean, drift_int8_max) = score_drift(&scores_f32, &scores_int8);
    let (drift_mixed_mean, drift_mixed_max) = score_drift(&scores_f32, &scores_mixed);
    println!("\nAUC  f32 {auc_f32:.4}  int8 {auc_int8:.4}  mixed {auc_mixed:.4}");
    println!(
        "score drift vs f32: int8 mean {drift_int8_mean:.4} max {drift_int8_max:.4}, \
         mixed mean {drift_mixed_mean:.4} max {drift_mixed_max:.4}"
    );
    println!("quant_auc_delta int8 {delta_int8:.4}");
    println!("quant_auc_delta mixed {delta_mixed:.4}");
    assert!(
        delta_int8 <= AUC_TOLERANCE,
        "eval gate failed: all-int8 AUC drifted {delta_int8:.4} from f32 (tolerance {AUC_TOLERANCE})"
    );
    assert!(
        delta_mixed <= AUC_TOLERANCE,
        "eval gate failed: mixed AUC drifted {delta_mixed:.4} from f32 (tolerance {AUC_TOLERANCE})"
    );
    assert!(
        drift_int8_mean <= AUC_TOLERANCE && drift_mixed_mean <= AUC_TOLERANCE,
        "eval gate failed: mean per-response score drift vs f32 exceeds {AUC_TOLERANCE} \
         (int8 {drift_int8_mean:.4}, mixed {drift_mixed_mean:.4})"
    );
    record.measure("auc f32", auc_f32);
    record.measure("auc int8", auc_int8);
    record.measure("auc mixed", auc_mixed);
    record.measure("auc delta int8", delta_int8);
    record.measure("auc delta mixed", delta_mixed);
    record.measure("score drift int8 mean", drift_int8_mean);
    record.measure("score drift mixed mean", drift_mixed_mean);

    // ---- Part 3: bitwise reproducibility from (seed, config) ----
    let rerun_model = QuantizedLM::synthetic(cfg.with_precision(Precision::Int8), MODEL_SEED);
    let probe = tokens(0xBEEF, 96);
    let mut c1 = int8_model.new_cache_with_capacity(probe.len());
    let mut c2 = rerun_model.new_cache_with_capacity(probe.len());
    assert_eq!(
        bits(&int8_model.prefill(&probe, &mut c1)),
        bits(&rerun_model.prefill(&probe, &mut c2)),
        "a rebuilt int8 engine from the same (seed, config) must reproduce every logit bit"
    );
    let rerun_scores = scores_of(&[Int8, Int8, Int8]);
    assert_eq!(
        auc_int8,
        auc(&rerun_scores),
        "rerunning the int8 eval gate must reproduce the AUC exactly"
    );
    assert_eq!(
        scores_int8, rerun_scores,
        "rerunning the int8 eval gate must reproduce every detection score"
    );
    println!("quant_rerun bitwise_identical=true");

    println!(
        "\nheadline: int8 prefill {speedup_at_realistic:.1}x f32 at prefix >= 64, \
         ensemble AUC within {AUC_TOLERANCE} of f32 (int8 {delta_int8:.4}, mixed {delta_mixed:.4}), \
         bitwise-reproducible from (seed, config)"
    );
    record.measure("headline prefill speedup", speedup_at_realistic);

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("record appended to {RESULTS_PATH}");
}
