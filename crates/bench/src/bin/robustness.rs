//! Robustness extension: how stable are the headline numbers?
//!
//! 1. Re-runs the proposed detector over five fresh dataset seeds and
//!    reports mean ± std of the best F1 on both tasks.
//! 2. Bootstrap 95% confidence interval of the best F1 on the default
//!    evaluation dataset.
//! 3. Per-topic best F1 — which handbook policies are hardest to verify.

use std::collections::BTreeMap;

use bench::approaches::Approach;
use bench::runner::{score_dataset, task_examples, Task};
use bench::{save_record, RESULTS_PATH};
use eval::report::ExperimentRecord;
use eval::stats::{bootstrap_best_f1, mean_std};
use eval::sweep::best_f1;
use hallu_core::AggregationMean;
use hallu_dataset::{DatasetBuilder, ResponseLabel};

fn main() {
    let mut record = ExperimentRecord::new("ext-robustness", "Stability of the headline F1");

    // 1. Across dataset seeds.
    let seeds = [0xD5_EEDu64, 101, 202, 303, 404];
    for task in [Task::CorrectVsWrong, Task::CorrectVsPartial] {
        let f1s: Vec<f64> = seeds
            .iter()
            .map(|&seed| {
                let dataset = DatasetBuilder::new(seed, 120).build();
                let scores = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &dataset);
                best_f1(&task_examples(&scores, task)).expect("examples").f1
            })
            .collect();
        let (mean, std) = mean_std(&f1s);
        println!(
            "proposed best F1 ({}) over {} seeds: {:.3} ± {:.3}  (values {:?})",
            task.label(),
            seeds.len(),
            mean,
            std,
            f1s.iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        record.measure(format!("seed-mean {}", task.label()), mean);
        record.measure(format!("seed-std {}", task.label()), std);
    }

    // 2. Bootstrap CI on the default dataset.
    let dataset = DatasetBuilder::default().build();
    let scores = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &dataset);
    for task in [Task::CorrectVsWrong, Task::CorrectVsPartial] {
        let examples = task_examples(&scores, task);
        let est = bootstrap_best_f1(&examples, 500, 0.95, 42).expect("bootstrap");
        println!(
            "bootstrap 95% CI ({}): {:.3} [{:.3}, {:.3}]",
            task.label(),
            est.point,
            est.lower,
            est.upper
        );
        record.measure(format!("ci-lower {}", task.label()), est.lower);
        record.measure(format!("ci-upper {}", task.label()), est.upper);
    }

    // 2b. Is proposed significantly better than the baselines? Paired
    // bootstrap over the same responses.
    {
        let labels: Vec<bool> = scores
            .iter()
            .filter(|s| s.label != ResponseLabel::Wrong)
            .map(|s| s.label == ResponseLabel::Correct)
            .collect();
        let pick = |ls: &[bench::runner::LabeledScore]| -> Vec<f64> {
            ls.iter()
                .filter(|s| s.label != ResponseLabel::Wrong)
                .map(|s| s.score)
                .collect()
        };
        let proposed = pick(&scores);
        for baseline in [Approach::PYes, Approach::ChatGpt, Approach::Qwen2Only] {
            let b_scores = score_dataset(baseline, AggregationMean::Harmonic, &dataset);
            let b = pick(&b_scores);
            let cmp = eval::significance::paired_bootstrap(&proposed, &b, &labels, 500, 17)
                .expect("comparable score sets");
            println!(
                "proposed vs {:<8} (vs-partial): ΔF1 {:+.3}, win rate {:.1}% {}",
                baseline.label(),
                cmp.mean_diff,
                cmp.win_rate * 100.0,
                if cmp.significant() {
                    "(significant)"
                } else {
                    "(not significant)"
                }
            );
            record.measure(format!("win-rate vs {}", baseline.label()), cmp.win_rate);
        }
    }

    // 3. Per-topic difficulty on the partial task.
    let mut by_topic: BTreeMap<String, Vec<(f64, bool)>> = BTreeMap::new();
    let mut idx = 0usize;
    for set in &dataset.sets {
        for response in &set.responses {
            if response.label != ResponseLabel::Wrong {
                by_topic
                    .entry(set.topic.clone())
                    .or_default()
                    .push((scores[idx].score, response.label == ResponseLabel::Correct));
            }
            idx += 1;
        }
    }
    println!("\nper-topic best F1 (correct-vs-partial):");
    let mut ranked: Vec<(String, f64)> = by_topic
        .into_iter()
        .filter_map(|(topic, examples)| best_f1(&examples).map(|p| (topic, p.f1)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for (topic, f1) in &ranked {
        println!("  {topic:<16} {f1:.3}");
        record.measure(format!("topic {topic}"), *f1);
    }

    save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    println!("\nrecord appended to {RESULTS_PATH}");
}
