//! Runs every experiment (Table I + Fig. 3-7 + extensions) and writes
//! EXPERIMENTS-results.json.

use bench::experiments::{
    ensemble_sweep, evaluation_dataset, fig3, fig4, fig5, fig6, fig7, normalization_ablation,
    selfcheck_baseline, table1,
};
use bench::{save_record, RESULTS_PATH};

fn main() {
    let dataset = evaluation_dataset();
    let mut records = Vec::new();
    records.extend(table1());
    records.extend(fig3(&dataset));
    records.extend(fig4(&dataset));
    records.extend(fig5(&dataset));
    records.extend(fig6(&dataset));
    records.extend(fig7(&dataset));
    records.extend(ensemble_sweep(&dataset));
    records.extend(normalization_ablation(&dataset));
    records.extend(selfcheck_baseline(&dataset));
    for record in &records {
        save_record(record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("{} records written to {RESULTS_PATH}", records.len());
}
