//! Regenerates Table I: the three contradiction types, scored.

use bench::experiments::table1;
use bench::{save_record, RESULTS_PATH};

fn main() {
    for record in table1() {
        save_record(&record, std::path::Path::new(RESULTS_PATH)).expect("write results");
    }
    println!("records appended to {RESULTS_PATH}");
}
