//! Per-figure experiment implementations.
//!
//! Each `figN` function regenerates the corresponding paper figure on the
//! synthetic dataset, prints the figure as ASCII, and returns the records
//! for EXPERIMENTS-results.json. Paper reference values come from the text
//! of §V-D/E/F; values the paper only shows graphically are omitted, values
//! derivable from its stated deltas (e.g. "11% better than ChatGPT") are
//! included and marked derived in EXPERIMENTS.md.

use eval::histogram::Histogram;
use eval::report::{render_bars, render_comparison, Bar, ExperimentRecord};
use eval::sweep::{best_f1, best_precision_with_min_recall};
use hallu_core::{AggregationMean, DetectorConfig, HallucinationDetector};
use hallu_dataset::{Dataset, DatasetBuilder, ResponseLabel};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

use crate::approaches::Approach;
use crate::runner::{score_dataset, task_examples, LabeledScore, Task};

/// The evaluation dataset every figure runs on: 120 sets (the paper uses
/// "over 100"), fixed seed.
pub fn evaluation_dataset() -> Dataset {
    DatasetBuilder::default().build()
}

/// Fig. 3 — best F1 per approach on both tasks.
pub fn fig3(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut records = Vec::new();
    let per_approach: Vec<(Approach, Vec<LabeledScore>)> = Approach::PAPER
        .iter()
        .map(|&a| (a, score_dataset(a, AggregationMean::Harmonic, dataset)))
        .collect();

    for (panel, task) in [
        ("fig3a", Task::CorrectVsWrong),
        ("fig3b", Task::CorrectVsPartial),
    ] {
        let mut record = ExperimentRecord::new(
            panel,
            format!("Best F1 detecting correct responses ({})", task.label()),
        );
        match task {
            Task::CorrectVsWrong => {
                record.reference("p(yes)", 0.89); // stated: "P(yes) being the lowest at 0.89"
            }
            Task::CorrectVsPartial => {
                record.reference("proposed", 0.81); // stated
                record.reference("chatgpt", 0.81 / 1.11); // derived from "+11%"
                record.reference("p(yes)", 0.81 / 1.066); // derived from "+6.6%"
            }
        }
        for (approach, scores) in &per_approach {
            let examples = task_examples(scores, task);
            let best = best_f1(&examples).expect("non-empty task examples");
            record.measure(approach.label(), best.f1);
        }
        println!("{}", render_bars(&record.title, &record.measured, 40));
        println!("{}", render_comparison(&record));
        records.push(record);
    }
    records
}

/// Fig. 4 — best precision with recall ≥ 0.5, and that recall.
pub fn fig4(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut records = Vec::new();
    let per_approach: Vec<(Approach, Vec<LabeledScore>)> = Approach::PAPER
        .iter()
        .map(|&a| (a, score_dataset(a, AggregationMean::Harmonic, dataset)))
        .collect();

    for (panel, task) in [
        ("fig4a", Task::CorrectVsWrong),
        ("fig4b", Task::CorrectVsPartial),
    ] {
        let mut record = ExperimentRecord::new(
            panel,
            format!(
                "Best precision (r >= 0.5) detecting correct responses ({})",
                task.label()
            ),
        );
        if task == Task::CorrectVsWrong {
            // stated in §V-D for Fig. 4(a)
            record.reference("qwen2 p", 0.89);
            record.reference("qwen2 r", 0.56);
            record.reference("minicpm p", 0.92);
            record.reference("minicpm r", 0.53);
        }
        let mut bars = Vec::new();
        for (approach, scores) in &per_approach {
            let examples = task_examples(scores, task);
            // The binary ChatGPT baseline may have no threshold reaching
            // r >= 0.5 with nontrivial precision; fall back to its single
            // operating point.
            let point = best_precision_with_min_recall(&examples, 0.5)
                .or_else(|| best_f1(&examples))
                .expect("non-empty task examples");
            record.measure(format!("{} p", approach.label()), point.precision);
            record.measure(format!("{} r", approach.label()), point.recall);
            bars.push(Bar {
                label: format!("{} p", approach.label()),
                value: point.precision,
            });
            bars.push(Bar {
                label: format!("{} r", approach.label()),
                value: point.recall,
            });
        }
        println!("{}", render_bars(&record.title, &bars, 40));
        println!("{}", render_comparison(&record));
        records.push(record);
    }
    records
}

/// Fig. 5 — best F1 of the proposed framework under each aggregation mean.
pub fn fig5(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut records = Vec::new();
    for (panel, task) in [
        ("fig5a", Task::CorrectVsWrong),
        ("fig5b", Task::CorrectVsPartial),
    ] {
        let mut record = ExperimentRecord::new(
            panel,
            format!("Best F1 per aggregation mean ({})", task.label()),
        );
        match task {
            Task::CorrectVsWrong => {
                record.reference("max", 0.99); // stated: highest 0.99 for max
            }
            Task::CorrectVsPartial => {
                record.reference("harmonic", 0.81); // stated best
                record.reference("min", 0.66); // stated worst
            }
        }
        for mean in AggregationMean::ALL {
            let scores = score_dataset(Approach::Proposed, mean, dataset);
            let examples = task_examples(&scores, task);
            let best = best_f1(&examples).expect("non-empty task examples");
            record.measure(mean.as_str(), best.f1);
        }
        println!("{}", render_bars(&record.title, &record.measured, 40));
        println!("{}", render_comparison(&record));
        records.push(record);
    }
    records
}

/// Build a per-label histogram from scored responses.
fn label_histogram(scores: &[LabeledScore], bins: usize) -> Histogram {
    let mut h = Histogram::new(bins);
    for s in scores {
        h.record(s.label.as_str(), s.score);
    }
    h
}

/// Record the per-label approximate means of a histogram.
fn record_histogram(record: &mut ExperimentRecord, prefix: &str, h: &Histogram) {
    for label in ResponseLabel::ALL {
        if let Some(m) = h.approx_mean(label.as_str()) {
            record.measure(format!("{prefix} mean[{label}]"), m);
        }
    }
}

/// Fig. 6 — score distributions by label: (a) proposed, (b) P(yes).
pub fn fig6(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut record =
        ExperimentRecord::new("fig6", "Score distributions by label: proposed vs P(yes)");
    let mut records = Vec::new();
    for (panel, approach) in [
        ("(a) proposed", Approach::Proposed),
        ("(b) p(yes)", Approach::PYes),
    ] {
        let scores = score_dataset(approach, AggregationMean::Harmonic, dataset);
        let h = label_histogram(&scores, 10);
        println!("Fig. 6 {panel} — histogram of s_i by label");
        println!("{}", h.render());
        record_histogram(&mut record, approach.label(), &h);

        // The separation statistic the figure argues visually: the gap
        // between correct and partial mean scores.
        let gap = h.approx_mean("correct").unwrap_or(0.0) - h.approx_mean("partial").unwrap_or(0.0);
        record.measure(format!("{} correct-partial gap", approach.label()), gap);
    }
    records.push(record);
    records
}

/// Fig. 7 — score distributions under geometric vs harmonic aggregation.
pub fn fig7(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut record = ExperimentRecord::new(
        "fig7",
        "Score distributions by label: geometric vs harmonic mean",
    );
    let mut records = Vec::new();
    for (panel, mean) in [
        ("(a) geometric", AggregationMean::Geometric),
        ("(b) harmonic", AggregationMean::Harmonic),
    ] {
        let scores = score_dataset(Approach::Proposed, mean, dataset);
        let h = label_histogram(&scores, 10);
        println!("Fig. 7 {panel} — histogram of s_i by label");
        println!("{}", h.render());
        record_histogram(&mut record, mean.as_str(), &h);
    }
    records.push(record);
    records
}

/// Table I — the three contradiction types, scored by the proposed detector.
///
/// The paper's Table I is illustrative; we reproduce it as a behavioural
/// check: for each contradiction type, the hallucinated response must score
/// clearly below a faithful response to the same prompt.
pub fn table1() -> Vec<ExperimentRecord> {
    let cases = [
        (
            "logical",
            "Can you introduce Madison?",
            "The city of Madison has over 500 thousand residents. Big cities like Madison are \
             busy urban centers.",
            "The city of Madison has over 500 thousand residents. It is known for its \
             small-town charm and quiet atmosphere with a population of 500 residents.",
            "The city of Madison has over 500 thousand residents.",
        ),
        (
            "prompt",
            "Describe a healthy breakfast that includes fruits and whole grains.",
            "A healthy breakfast includes fruits and whole grains. Oatmeal with berries is a \
             great choice for breakfast.",
            "A bowl of sugary cereal with milk and a side of bacon is a great choice for \
             breakfast.",
            "A healthy breakfast includes fruits and whole grains such as oatmeal with berries.",
        ),
        (
            "factual",
            "What are the main ingredients in a traditional Margherita pizza?",
            "A traditional Margherita pizza is made with tomatoes, mozzarella cheese and fresh \
             basil. The dough uses flour, water, salt and yeast.",
            "A traditional Margherita pizza is made with tomatoes, mozzarella cheese and fresh \
             basil. The secret key ingredient of the pizza is a layer of sweet chocolate.",
            "A traditional Margherita pizza is made with tomatoes, mozzarella cheese and fresh \
             basil. The dough uses flour, water, salt and yeast.",
        ),
    ];

    let mut record = ExperimentRecord::new(
        "table1",
        "Contradiction types: faithful vs hallucinated score",
    );
    println!("Table I — contradiction types under the proposed detector\n");
    for (kind, question, context, hallucinated, faithful) in cases {
        let mut detector = HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
                Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
            ],
            DetectorConfig::default(),
        );
        // calibrate on both responses plus the context itself
        for r in [faithful, hallucinated, context] {
            detector.calibrate(question, context, r);
        }
        let good = detector.score(question, context, faithful).score;
        let bad = detector.score(question, context, hallucinated).score;
        println!("  {kind:<8} faithful {good:.3}  hallucinated {bad:.3}");
        record.measure(format!("{kind} faithful"), good);
        record.measure(format!("{kind} hallucinated"), bad);
    }
    println!();
    vec![record]
}

/// Extension — ensemble-size sweep M ∈ {1..4} (§VI future work: "better
/// integration of SLMs"). Reports best F1 on the harder task per M, plus
/// the confidence-gated variant.
pub fn ensemble_sweep(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut record = ExperimentRecord::new(
        "ext-ensemble",
        "Best F1 (correct-vs-partial) as the ensemble grows, plus gating",
    );
    let roster = [
        ("M=1 (qwen2)", Approach::Qwen2Only),
        ("M=2 (proposed)", Approach::Proposed),
        ("M=3 (+phi2)", Approach::Ensemble3),
        ("M=4 (+gemma)", Approach::Ensemble4),
        ("M=2 gated", Approach::ProposedGated),
    ];
    for (label, approach) in roster {
        let scores = score_dataset(approach, AggregationMean::Harmonic, dataset);
        let examples = task_examples(&scores, Task::CorrectVsPartial);
        let best = best_f1(&examples).expect("non-empty task examples");
        record.measure(label, best.f1);
    }
    println!("{}", render_bars(&record.title, &record.measured, 40));
    vec![record]
}

/// Extension — Eq. 4 ablation: the proposed detector with per-model
/// normalization disabled (raw probability averaging).
pub fn normalization_ablation(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut record = ExperimentRecord::new(
        "ext-normalization",
        "Effect of Eq. 4 normalization on best F1 (correct-vs-partial)",
    );
    for (label, normalize) in [("with Eq.4 (proposed)", true), ("without Eq.4", false)] {
        let mut detector = HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
                Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
            ],
            DetectorConfig {
                normalize,
                ..Default::default()
            },
        );
        let scores = crate::runner::score_dataset_with(&mut detector, dataset);
        let examples = task_examples(&scores, Task::CorrectVsPartial);
        let best = best_f1(&examples).expect("non-empty task examples");
        record.measure(label, best.f1);
    }
    println!("{}", render_bars(&record.title, &record.measured, 40));
    vec![record]
}

/// Extension — related-work baseline: SelfCheck-style sampling consistency
/// (the sample-and-compare family of §II) against the proposed framework.
pub fn selfcheck_baseline(dataset: &Dataset) -> Vec<ExperimentRecord> {
    let mut record = ExperimentRecord::new(
        "ext-selfcheck",
        "Proposed framework vs SelfCheck-style sampling baseline (best F1)",
    );
    for (approach, label) in [
        (Approach::Proposed, "proposed"),
        (Approach::SelfCheck, "selfcheck"),
    ] {
        let scores = score_dataset(approach, AggregationMean::Harmonic, dataset);
        for (task, suffix) in [
            (Task::CorrectVsWrong, "vs-wrong"),
            (Task::CorrectVsPartial, "vs-partial"),
        ] {
            let best = best_f1(&task_examples(&scores, task)).expect("non-empty task examples");
            record.measure(format!("{label} {suffix}"), best.f1);
        }
    }
    println!("{}", render_bars(&record.title, &record.measured, 40));
    vec![record]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        DatasetBuilder::new(123, 24).build()
    }

    #[test]
    fn fig3_produces_two_panels_with_five_bars() {
        let records = fig3(&tiny());
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.measured.len(), 5);
            assert!(r.measured.iter().all(|b| (0.0..=1.0).contains(&b.value)));
        }
    }

    #[test]
    fn fig3_shape_matches_paper() {
        // Key qualitative claims: (a) everything is strong; (b) proposed is
        // best and beats both baselines; partial is harder than wrong.
        let records = fig3(&evaluation_dataset());
        let a = &records[0];
        let b = &records[1];
        for bar in &a.measured {
            assert!(bar.value >= 0.75, "fig3a {}: {}", bar.label, bar.value);
        }
        let get = |r: &ExperimentRecord, l: &str| r.measured_value(l).unwrap();
        assert!(
            get(b, "proposed") > get(b, "chatgpt"),
            "proposed must beat chatgpt on partial"
        );
        assert!(
            get(b, "proposed") > get(b, "p(yes)"),
            "proposed must beat p(yes) on partial"
        );
        assert!(
            get(a, "proposed") > get(b, "proposed"),
            "partial task must be harder than wrong task"
        );
    }

    #[test]
    fn fig5_includes_all_means() {
        let records = fig5(&tiny());
        assert_eq!(records[0].measured.len(), 5);
        let labels: Vec<&str> = records[0]
            .measured
            .iter()
            .map(|b| b.label.as_str())
            .collect();
        assert!(labels.contains(&"harmonic") && labels.contains(&"max"));
    }

    #[test]
    fn fig6_reports_separation_gap() {
        let records = fig6(&tiny());
        let r = &records[0];
        assert!(r.measured_value("proposed correct-partial gap").is_some());
        assert!(r.measured_value("p(yes) correct-partial gap").is_some());
    }

    #[test]
    fn table1_hallucinations_score_lower() {
        let records = table1();
        let r = &records[0];
        for kind in ["logical", "prompt", "factual"] {
            let good = r.measured_value(&format!("{kind} faithful")).unwrap();
            let bad = r.measured_value(&format!("{kind} hallucinated")).unwrap();
            assert!(good > bad, "{kind}: faithful {good} vs hallucinated {bad}");
        }
    }
}
