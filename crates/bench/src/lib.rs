//! Experiment harness shared by the per-figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library holds the common parts:
//! the approach roster of §V-C, dataset scoring, and result collection.

pub mod approaches;
pub mod experiments;
pub mod runner;

pub use approaches::{build_detector, Approach};
pub use runner::{score_dataset, task_examples, LabeledScore, Task};

use std::path::Path;

use eval::report::ExperimentRecord;

/// Where `run_all` and the figure binaries accumulate their records.
pub const RESULTS_PATH: &str = "EXPERIMENTS-results.json";

/// Append (or replace by id) a record in the results file.
pub fn save_record(record: &ExperimentRecord, path: &Path) -> std::io::Result<()> {
    let mut records: Vec<ExperimentRecord> = if path.exists() {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).unwrap_or_default()
    } else {
        Vec::new()
    };
    records.retain(|r| r.id != record.id);
    records.push(record.clone());
    records.sort_by(|a, b| a.id.cmp(&b.id));
    let json = serde_json::to_string_pretty(&records)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_record_replaces_by_id() {
        let path = std::env::temp_dir().join(format!("bench-records-{}.json", std::process::id()));
        let mut r = ExperimentRecord::new("figX", "t");
        r.measure("a", 0.5);
        save_record(&r, &path).unwrap();
        let mut r2 = ExperimentRecord::new("figX", "t");
        r2.measure("a", 0.7);
        save_record(&r2, &path).unwrap();
        let records: Vec<ExperimentRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].measured_value("a"), Some(0.7));
    }
}
