//! Dataset scoring and task construction.

use hallu_core::{AggregationMean, HallucinationDetector};
use hallu_dataset::{Dataset, ResponseLabel};

use crate::approaches::{build_detector, Approach};

/// One scored response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledScore {
    /// Ground-truth label.
    pub label: ResponseLabel,
    /// Detector score `s_i`.
    pub score: f64,
}

/// The two detection tasks of the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Detect correct responses among wrong ones — Fig. 3(a) / 4(a) / 5(a).
    CorrectVsWrong,
    /// Detect correct responses among partial ones — Fig. 3(b) / 4(b) / 5(b).
    CorrectVsPartial,
}

impl Task {
    /// Panel label used in figure titles.
    pub fn label(&self) -> &'static str {
        match self {
            Task::CorrectVsWrong => "correct-vs-wrong",
            Task::CorrectVsPartial => "correct-vs-partial",
        }
    }

    /// The hallucinated label this task discriminates against.
    pub fn negative_label(&self) -> ResponseLabel {
        match self {
            Task::CorrectVsWrong => ResponseLabel::Wrong,
            Task::CorrectVsPartial => ResponseLabel::Partial,
        }
    }
}

/// Calibrate a detector on the dataset (Eq. 4's "previous responses") and
/// score every response. Calibration uses scores only — no labels — so
/// there is no leakage.
pub fn score_dataset_with(
    detector: &mut HallucinationDetector,
    dataset: &Dataset,
) -> Vec<LabeledScore> {
    for set in &dataset.sets {
        for response in &set.responses {
            detector.calibrate(&set.question, &set.context, &response.text);
        }
    }
    dataset
        .iter_examples()
        .map(|(set, response)| LabeledScore {
            label: response.label,
            score: detector
                .score(&set.question, &set.context, &response.text)
                .score,
        })
        .collect()
}

/// Build, calibrate and score an approach on the dataset.
pub fn score_dataset(
    approach: Approach,
    mean: AggregationMean,
    dataset: &Dataset,
) -> Vec<LabeledScore> {
    if approach == Approach::SelfCheck {
        let checker = rag::selfcheck::SelfChecker::default();
        return dataset
            .iter_examples()
            .map(|(set, response)| LabeledScore {
                label: response.label,
                score: checker.score(&set.question, &set.context, &response.text),
            })
            .collect();
    }
    let mut detector = build_detector(approach, mean);
    score_dataset_with(&mut detector, dataset)
}

/// Restrict scored responses to a task's two classes, as (score, is_correct)
/// pairs for the sweep machinery.
pub fn task_examples(scores: &[LabeledScore], task: Task) -> Vec<(f64, bool)> {
    let negative = task.negative_label();
    scores
        .iter()
        .filter(|s| s.label == ResponseLabel::Correct || s.label == negative)
        .map(|s| (s.score, s.label == ResponseLabel::Correct))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hallu_dataset::DatasetBuilder;

    fn small_dataset() -> Dataset {
        DatasetBuilder::new(99, 12).build()
    }

    #[test]
    fn scores_cover_every_response() {
        let d = small_dataset();
        let scores = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &d);
        assert_eq!(scores.len(), 36);
    }

    #[test]
    fn task_examples_filter_classes() {
        let d = small_dataset();
        let scores = score_dataset(Approach::PYes, AggregationMean::Harmonic, &d);
        let vs_wrong = task_examples(&scores, Task::CorrectVsWrong);
        assert_eq!(vs_wrong.len(), 24); // 12 correct + 12 wrong
        assert_eq!(vs_wrong.iter().filter(|e| e.1).count(), 12);
    }

    #[test]
    fn proposed_separates_correct_from_wrong() {
        let d = small_dataset();
        let scores = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &d);
        let mean_of = |label: ResponseLabel| {
            let v: Vec<f64> = scores
                .iter()
                .filter(|s| s.label == label)
                .map(|s| s.score)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let c = mean_of(ResponseLabel::Correct);
        let p = mean_of(ResponseLabel::Partial);
        let w = mean_of(ResponseLabel::Wrong);
        assert!(c > p, "correct {c} vs partial {p}");
        assert!(p > w, "partial {p} vs wrong {w}");
    }

    #[test]
    fn chatgpt_scores_are_binary() {
        // The API baseline only observes decisions; scores collapse to the
        // two ends of the scale (the 0 end passes through the harmonic
        // mean's positivity epsilon).
        let d = small_dataset();
        let scores = score_dataset(Approach::ChatGpt, AggregationMean::Harmonic, &d);
        assert!(
            scores
                .iter()
                .all(|s| s.score < 1e-3 || s.score > 1.0 - 1e-3),
            "{scores:?}"
        );
    }

    #[test]
    fn scoring_is_deterministic() {
        let d = small_dataset();
        let a = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &d);
        let b = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &d);
        assert_eq!(a, b);
    }
}
