//! The assembled hallucination detector (Fig. 2b).

use std::fmt;

use slm_runtime::bpe::Bpe;
use slm_runtime::verifier::YesNoVerifier;
use slm_runtime::{ModelConfig, Precision};

use crate::ensemble::{combine_models, squash};
use crate::means::AggregationMean;
use crate::resilience::ResilienceTelemetry;
use crate::score::{score_given_sentences, score_sentences, SentenceScores};
use crate::zscore::ModelNormalizer;

/// Why a detector could not be built or could not score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorError {
    /// The detector was given an empty verifier set.
    NoVerifiers,
    /// A transplanted normalizer covers a different number of models than
    /// the detector ensembles.
    ModelCountMismatch {
        /// Models the detector ensembles.
        expected: usize,
        /// Models the statistics were fitted for.
        got: usize,
    },
    /// A worker thread panicked while scoring a batch.
    ScoringPanicked,
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoVerifiers => f.write_str("at least one verifier required"),
            Self::ModelCountMismatch { expected, got } => write!(
                f,
                "normalizer fitted for a different number of models \
                 (detector has {expected}, statistics cover {got})"
            ),
            Self::ScoringPanicked => f.write_str("scoring thread panicked"),
        }
    }
}

impl std::error::Error for DetectorError {}

/// Detector configuration. The defaults are the paper's proposed setting;
/// the flags double as the ablation axes (Fig. 3's P(yes) baseline is
/// `split = false`, Fig. 5 varies `mean`, the normalization ablation flips
/// `normalize`).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Eq. 6–10 aggregation across sentences.
    pub mean: AggregationMean,
    /// Run the Splitter (§IV-A). When off the whole response is scored as
    /// one unit — the P(yes) baseline.
    pub split: bool,
    /// Apply Eq. 4 per-model normalization. When off, raw probabilities are
    /// averaged directly.
    pub normalize: bool,
    /// Score sentences on parallel threads.
    pub parallel: bool,
    /// With `parallel`: probe workers pull jobs from a shared queue
    /// (continuous batching) instead of fixed partitions, so a worker that
    /// finishes early joins the next pending probe rather than idling at the
    /// batch barrier. Output bits are identical either way — the batch
    /// engine's determinism contract — so this is purely a latency knob.
    pub continuous: bool,
    /// §VI gating extension: when set, if the first model's |z| exceeds this
    /// margin its verdict is used alone and the remaining models are not
    /// consulted (compute saving); otherwise all models vote.
    pub gate_margin: Option<f64>,
    /// Default engine precision for ensemble members built through
    /// [`HallucinationDetector::engine_ensemble`]. Individual members can
    /// override it via [`EngineSpec::precision`] — that is how a fast int8
    /// screener fleet keeps an f32 tie-breaker. Behavioral (simulated)
    /// verifiers ignore this knob.
    pub precision: Precision,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            mean: AggregationMean::Harmonic,
            split: true,
            normalize: true,
            parallel: false,
            continuous: false,
            gate_margin: None,
            precision: Precision::F32,
        }
    }
}

/// One engine-backed ensemble member for
/// [`HallucinationDetector::engine_ensemble`]: a display name, the model
/// shape, the weight seed, and an optional per-member precision override.
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// Display / cache-key name of this member.
    pub name: String,
    /// Model shape (its own `precision` field is ignored; the effective
    /// precision is `precision.unwrap_or(config.precision)`).
    pub model: ModelConfig,
    /// Synthetic-weight seed (deterministic member identity).
    pub seed: u64,
    /// Override of [`DetectorConfig::precision`] for this member.
    pub precision: Option<Precision>,
}

impl EngineSpec {
    /// A member at the ensemble's default precision.
    pub fn new(name: impl Into<String>, model: ModelConfig, seed: u64) -> Self {
        Self {
            name: name.into(),
            model,
            seed,
            precision: None,
        }
    }

    /// Pin this member to a precision regardless of the ensemble default.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }
}

/// Per-sentence diagnostics in a [`DetectionResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct SentenceDetail {
    /// The split sentence `r_{i,j}`.
    pub sentence: String,
    /// Raw `s_{i,j}^(m)` per model.
    pub raw: Vec<f64>,
    /// The combined, squashed sentence score `s_{i,j}` in (0, 1).
    pub combined: f64,
}

/// The detector's verdict for one response.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// The response-level score `s_i` in (0, 1); higher = more likely correct.
    pub score: f64,
    /// Per-sentence breakdown.
    pub sentences: Vec<SentenceDetail>,
    /// What the fault-tolerant executor did to produce this verdict:
    /// `None` for the plain (infallible) detector, `Some` when produced by
    /// [`crate::resilient::ResilientDetector`].
    pub resilience: Option<ResilienceTelemetry>,
}

/// The framework of §IV: Splitter → M SLMs → Checker.
pub struct HallucinationDetector {
    verifiers: Vec<Box<dyn YesNoVerifier>>,
    /// Configuration (public so experiments can flip ablation axes).
    pub config: DetectorConfig,
    normalizer: ModelNormalizer,
}

impl HallucinationDetector {
    /// Build a detector over the given verifiers.
    ///
    /// # Panics
    /// Panics if `verifiers` is empty. Fallible callers should prefer
    /// [`HallucinationDetector::try_new`].
    pub fn new(verifiers: Vec<Box<dyn YesNoVerifier>>, config: DetectorConfig) -> Self {
        Self::try_new(verifiers, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a detector over the given verifiers, rejecting an empty set
    /// with a typed error instead of panicking.
    pub fn try_new(
        verifiers: Vec<Box<dyn YesNoVerifier>>,
        config: DetectorConfig,
    ) -> Result<Self, DetectorError> {
        if verifiers.is_empty() {
            return Err(DetectorError::NoVerifiers);
        }
        let normalizer = ModelNormalizer::new(verifiers.len());
        Ok(Self {
            verifiers,
            config,
            normalizer,
        })
    }

    /// Build a mixed-precision engine ensemble: each spec becomes an
    /// `EngineVerifier` at `spec.precision.unwrap_or(config.precision)`,
    /// sharing one tokenizer. This is the deployment shape the quantization
    /// work targets — int8 screeners for throughput, an f32 tie-breaker for
    /// reference-grade logits — with verdict drift bounded by the AUC eval
    /// gate (`quant_sweep` / the golden parity suite).
    ///
    /// Returns [`DetectorError::NoVerifiers`] on an empty spec list.
    pub fn engine_ensemble(
        config: DetectorConfig,
        specs: &[EngineSpec],
        tokenizer: &Bpe,
    ) -> Result<Self, DetectorError> {
        let verifiers: Vec<Box<dyn YesNoVerifier>> = specs
            .iter()
            .map(|spec| {
                let precision = spec.precision.unwrap_or(config.precision);
                slm_runtime::engine_profile(
                    spec.name.clone(),
                    spec.model.clone().with_precision(precision),
                    spec.seed,
                    tokenizer.clone(),
                )
            })
            .collect();
        Self::try_new(verifiers, config)
    }

    /// Model names, in slot order.
    pub fn model_names(&self) -> Vec<&str> {
        self.verifiers.iter().map(|v| v.name()).collect()
    }

    /// Number of ensembled models M.
    pub fn num_models(&self) -> usize {
        self.verifiers.len()
    }

    /// Access the fitted normalizer (inspection / persistence).
    pub fn normalizer(&self) -> &ModelNormalizer {
        &self.normalizer
    }

    /// Restore previously persisted calibration statistics (the serialized
    /// form of [`HallucinationDetector::normalizer`]).
    ///
    /// # Panics
    /// Panics if the statistics were fitted for a different model count.
    /// Fallible callers should prefer
    /// [`HallucinationDetector::try_set_normalizer`].
    pub fn set_normalizer(&mut self, normalizer: ModelNormalizer) {
        self.try_set_normalizer(normalizer)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Restore calibration statistics, rejecting a model-count mismatch with
    /// a typed error instead of panicking.
    pub fn try_set_normalizer(&mut self, normalizer: ModelNormalizer) -> Result<(), DetectorError> {
        if normalizer.num_models() != self.verifiers.len() {
            return Err(DetectorError::ModelCountMismatch {
                expected: self.verifiers.len(),
                got: normalizer.num_models(),
            });
        }
        self.normalizer = normalizer;
        Ok(())
    }

    /// Feed one (question, context, response) triple into the per-model
    /// statistics of Eq. 4 — the "previous responses" the paper computes
    /// means and variances from. Call over a calibration split before
    /// scoring, or online as traffic flows.
    pub fn calibrate(&mut self, question: &str, context: &str, response: &str) {
        for s in self.raw_scores(question, context, response) {
            for (m, &p) in s.per_model.iter().enumerate() {
                self.normalizer.observe(m, p);
            }
        }
    }

    fn raw_scores(&self, question: &str, context: &str, response: &str) -> Vec<SentenceScores> {
        if self.config.split {
            score_sentences(
                question,
                context,
                response,
                &self.verifiers,
                self.config.parallel,
            )
        } else {
            score_given_sentences(
                question,
                context,
                std::slice::from_ref(&response.to_string()),
                &self.verifiers,
                false,
            )
        }
    }

    /// Combine one sentence's model scores per the active config.
    fn combine(&self, scores: &SentenceScores) -> f64 {
        if !self.config.normalize {
            // raw probabilities are already positive — no squash needed
            return scores.per_model.iter().sum::<f64>() / scores.per_model.len() as f64;
        }
        if let Some(margin) = self.config.gate_margin {
            let z0 = self.normalizer.normalize(0, scores.per_model[0]);
            if z0.abs() >= margin || scores.per_model.len() == 1 {
                return squash(z0);
            }
        }
        squash(combine_models(&self.normalizer, scores))
    }

    /// Score a batch of (question, context, response) triples, spreading
    /// responses across threads when `config.parallel` is set. Results come
    /// back in input order.
    ///
    /// # Panics
    /// Panics if a scoring thread panicked. Fallible callers should prefer
    /// [`HallucinationDetector::try_score_batch`].
    pub fn score_batch(&self, items: &[(&str, &str, &str)]) -> Vec<DetectionResult> {
        self.try_score_batch(items)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Score a batch, reporting a worker-thread panic as a typed error
    /// instead of propagating the panic.
    pub fn try_score_batch(
        &self,
        items: &[(&str, &str, &str)],
    ) -> Result<Vec<DetectionResult>, DetectorError> {
        if !self.config.parallel || items.len() < 2 {
            return Ok(items.iter().map(|(q, c, r)| self.score(q, c, r)).collect());
        }
        let workers = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(items.len());
        let chunk = items.len().div_ceil(workers);
        let mut out: Vec<DetectionResult> = Vec::with_capacity(items.len());
        let mut panicked = false;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|batch| {
                    scope.spawn(move || {
                        batch
                            .iter()
                            .map(|(q, c, r)| self.score(q, c, r))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // chunks are contiguous, so joining in spawn order rebuilds
            // the results in item order
            for h in handles {
                match h.join() {
                    Ok(results) => out.extend(results),
                    Err(_) => panicked = true,
                }
            }
        });
        if panicked {
            return Err(DetectorError::ScoringPanicked);
        }
        Ok(out)
    }

    /// Score a response: Eq. 3 → Eq. 4 → Eq. 5 → Eq. 6 (or the configured mean).
    ///
    /// An empty response scores 0: nothing verifiable was said, which in a
    /// high-precision QA system must not pass as correct.
    pub fn score(&self, question: &str, context: &str, response: &str) -> DetectionResult {
        let raw = self.raw_scores(question, context, response);
        if raw.is_empty() {
            return DetectionResult {
                score: 0.0,
                sentences: Vec::new(),
                resilience: None,
            };
        }
        let sentences: Vec<SentenceDetail> = raw
            .into_iter()
            .map(|s| {
                let combined = self.combine(&s);
                SentenceDetail {
                    sentence: s.sentence,
                    raw: s.per_model,
                    combined,
                }
            })
            .collect();
        let scores: Vec<f64> = sentences.iter().map(|s| s.combined).collect();
        DetectionResult {
            score: self.config.mean.aggregate(&scores),
            sentences,
            resilience: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop.";
    const Q: &str = "What are the working hours?";
    const CORRECT: &str =
        "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.";
    const PARTIAL: &str =
        "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.";
    const WRONG: &str = "The working hours are 9 AM to 9 PM. You do not need to work on weekends.";

    fn detector(config: DetectorConfig) -> HallucinationDetector {
        let mut d = HallucinationDetector::new(
            vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())],
            config,
        );
        // calibrate on a few neutral triples
        for r in [
            CORRECT,
            PARTIAL,
            WRONG,
            "The store is large.",
            "Staff wear uniforms.",
        ] {
            d.calibrate(Q, CTX, r);
        }
        d
    }

    #[test]
    fn correct_beats_partial_beats_wrong() {
        let d = detector(DetectorConfig::default());
        let c = d.score(Q, CTX, CORRECT).score;
        let p = d.score(Q, CTX, PARTIAL).score;
        let w = d.score(Q, CTX, WRONG).score;
        assert!(c > p, "correct {c} vs partial {p}");
        assert!(p > w, "partial {p} vs wrong {w}");
    }

    #[test]
    fn scores_live_in_unit_interval() {
        let d = detector(DetectorConfig::default());
        for r in [CORRECT, PARTIAL, WRONG] {
            let s = d.score(Q, CTX, r).score;
            assert!((0.0..=1.0).contains(&s), "{r}: {s}");
        }
    }

    #[test]
    fn sentence_details_are_reported() {
        let d = detector(DetectorConfig::default());
        let result = d.score(Q, CTX, PARTIAL);
        assert_eq!(result.sentences.len(), 2);
        assert_eq!(result.sentences[0].raw.len(), 2);
        // the wrong-day sentence is the weak one
        assert!(result.sentences[0].combined > result.sentences[1].combined);
    }

    #[test]
    fn empty_response_scores_zero() {
        let d = detector(DetectorConfig::default());
        let r = d.score(Q, CTX, "");
        assert_eq!(r.score, 0.0);
        assert!(r.sentences.is_empty());
    }

    #[test]
    fn no_split_treats_response_as_one_unit() {
        let cfg = DetectorConfig {
            split: false,
            ..Default::default()
        };
        let d = detector(cfg);
        let result = d.score(Q, CTX, PARTIAL);
        assert_eq!(result.sentences.len(), 1);
    }

    #[test]
    fn split_separates_partial_better_than_no_split() {
        // The core claim behind the Splitter (Fig. 3b / Fig. 6): splitting
        // ranks correct above partial more reliably than whole-response
        // scoring. Single examples are noisy (the simulated verifiers err on
        // specific inputs), so compare pairwise win rates (= AUC) over a
        // batch of phrasing variants.
        let with_split = detector(DetectorConfig::default());
        let without = detector(DetectorConfig {
            split: false,
            ..Default::default()
        });
        let auc = |d: &HallucinationDetector| {
            let n = 12;
            // Long responses: one wrong fact among many correct sentences is
            // where whole-response scoring dilutes and splitting pays off.
            let score_batch = |days: &str| -> Vec<f64> {
                (0..n)
                    .map(|i| {
                        let r = format!(
                            "The working hours are 9 AM to 5 PM, case {i}. \
                             At least three shopkeepers run the shop. \
                             The store is open from {days}. \
                             The store operates for the whole week of shifts."
                        );
                        d.score(Q, CTX, &r).score
                    })
                    .collect()
            };
            let corrects = score_batch("Sunday to Saturday");
            let partials = score_batch("Monday to Friday");
            let mut wins = 0usize;
            for c in &corrects {
                for p in &partials {
                    if c > p {
                        wins += 1;
                    }
                }
            }
            wins as f64 / (n * n) as f64
        };
        let sa = auc(&with_split);
        let na = auc(&without);
        assert!(sa > na, "split AUC {sa} vs no-split AUC {na}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = detector(DetectorConfig::default());
        let par = detector(DetectorConfig {
            parallel: true,
            ..Default::default()
        });
        assert_eq!(seq.score(Q, CTX, PARTIAL), par.score(Q, CTX, PARTIAL));
    }

    #[test]
    fn unnormalized_mode_averages_raw() {
        let cfg = DetectorConfig {
            normalize: false,
            ..Default::default()
        };
        let d = detector(cfg);
        let result = d.score(Q, CTX, CORRECT);
        for s in &result.sentences {
            let avg = s.raw.iter().sum::<f64>() / s.raw.len() as f64;
            assert!((s.combined - avg).abs() < 1e-12);
        }
    }

    #[test]
    fn gating_preserves_clear_verdicts() {
        let gated = detector(DetectorConfig {
            gate_margin: Some(0.5),
            ..Default::default()
        });
        let plain = detector(DetectorConfig::default());
        // correct still beats wrong under gating
        let c = gated.score(Q, CTX, CORRECT).score;
        let w = gated.score(Q, CTX, WRONG).score;
        assert!(c > w);
        // and gating changes at least some scores vs the plain ensemble
        let any_diff = [CORRECT, PARTIAL, WRONG]
            .iter()
            .any(|r| (gated.score(Q, CTX, r).score - plain.score(Q, CTX, r).score).abs() > 1e-9);
        assert!(any_diff);
    }

    #[test]
    fn single_model_detector_works() {
        let mut d =
            HallucinationDetector::new(vec![Box::new(qwen2_sim())], DetectorConfig::default());
        d.calibrate(Q, CTX, CORRECT);
        d.calibrate(Q, CTX, WRONG);
        assert_eq!(d.num_models(), 1);
        assert!(d.score(Q, CTX, CORRECT).score > d.score(Q, CTX, WRONG).score);
    }

    #[test]
    fn model_names_in_slot_order() {
        let d = detector(DetectorConfig::default());
        assert_eq!(d.model_names(), ["qwen2-1.5b-sim", "minicpm-2b-sim"]);
    }

    #[test]
    #[should_panic(expected = "at least one verifier")]
    fn zero_verifiers_panics() {
        HallucinationDetector::new(Vec::new(), DetectorConfig::default());
    }

    #[test]
    fn calibration_state_can_be_transplanted() {
        let fitted = detector(DetectorConfig::default());
        let mut fresh = HallucinationDetector::new(
            vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())],
            DetectorConfig::default(),
        );
        fresh.set_normalizer(fitted.normalizer().clone());
        assert_eq!(
            fitted.score(Q, CTX, PARTIAL),
            fresh.score(Q, CTX, PARTIAL),
            "restored calibration must reproduce scores exactly"
        );
    }

    #[test]
    #[should_panic(expected = "different number of models")]
    fn transplant_rejects_wrong_model_count() {
        let mut d = HallucinationDetector::new(
            vec![Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>],
            DetectorConfig::default(),
        );
        d.set_normalizer(crate::zscore::ModelNormalizer::new(3));
    }

    #[test]
    fn batch_scoring_matches_sequential_in_order() {
        let seq = detector(DetectorConfig::default());
        let par = detector(DetectorConfig {
            parallel: true,
            ..Default::default()
        });
        let items = [
            (Q, CTX, CORRECT),
            (Q, CTX, PARTIAL),
            (Q, CTX, WRONG),
            (Q, CTX, CORRECT),
        ];
        let a = seq.score_batch(&items);
        let b = par.score_batch(&items);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0], seq.score(Q, CTX, CORRECT));
        assert_eq!(a[0], a[3]);
    }

    #[test]
    fn batch_scoring_handles_empty_and_singleton() {
        let d = detector(DetectorConfig {
            parallel: true,
            ..Default::default()
        });
        assert!(d.score_batch(&[]).is_empty());
        assert_eq!(d.score_batch(&[(Q, CTX, CORRECT)]).len(), 1);
    }

    #[test]
    fn try_new_reports_typed_error() {
        let Err(err) = HallucinationDetector::try_new(Vec::new(), DetectorConfig::default()) else {
            panic!("empty verifier set must be rejected")
        };
        assert_eq!(err, DetectorError::NoVerifiers);
        assert!(err.to_string().contains("at least one verifier"));
    }

    #[test]
    fn try_set_normalizer_reports_mismatch() {
        let mut d = HallucinationDetector::new(
            vec![Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>],
            DetectorConfig::default(),
        );
        let err = d
            .try_set_normalizer(crate::zscore::ModelNormalizer::new(3))
            .unwrap_err();
        assert_eq!(
            err,
            DetectorError::ModelCountMismatch {
                expected: 1,
                got: 3
            }
        );
        assert!(err.to_string().contains("different number of models"));
    }

    #[test]
    fn try_score_batch_succeeds_on_healthy_path() {
        let d = detector(DetectorConfig {
            parallel: true,
            ..Default::default()
        });
        let out = d
            .try_score_batch(&[(Q, CTX, CORRECT), (Q, CTX, WRONG)])
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], d.score(Q, CTX, CORRECT));
    }

    #[test]
    fn plain_detector_reports_no_resilience_telemetry() {
        let d = detector(DetectorConfig::default());
        assert!(d.score(Q, CTX, CORRECT).resilience.is_none());
    }

    #[test]
    fn calibration_accumulates_observations() {
        let d = detector(DetectorConfig::default());
        assert!(d.normalizer().observations(0) >= 8);
        assert!(d.normalizer().observations(1) >= 8);
    }

    fn ensemble_tokenizer() -> Bpe {
        Bpe::train(
            &[
                CTX,
                "is the answer correct according to the context reply yes or no",
            ],
            250,
        )
    }

    #[test]
    fn engine_ensemble_builds_mixed_precision_members() {
        let bpe = ensemble_tokenizer();
        let model = ModelConfig::tiny(bpe.vocab_size());
        let specs = vec![
            EngineSpec::new("int8-screener-a", model.clone(), 11),
            EngineSpec::new("int8-screener-b", model.clone(), 12),
            EngineSpec::new("f32-tiebreak", model, 13).with_precision(Precision::F32),
        ];
        let config = DetectorConfig {
            precision: Precision::Int8,
            ..Default::default()
        };
        let mut d = HallucinationDetector::engine_ensemble(config, &specs, &bpe).unwrap();
        assert_eq!(
            d.model_names(),
            vec!["int8-screener-a", "int8-screener-b", "f32-tiebreak"]
        );
        d.calibrate(Q, CTX, CORRECT);
        d.calibrate(Q, CTX, WRONG);
        let score = d.score(Q, CTX, CORRECT).score;
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn engine_ensemble_member_override_beats_config_default() {
        let bpe = ensemble_tokenizer();
        let model = ModelConfig::tiny(bpe.vocab_size());
        // config default f32, member pinned to int8: both must build and the
        // verdicts stay in range (the precision plumbing, not the AUC gate).
        let specs = vec![EngineSpec::new("pinned-int8", model, 5).with_precision(Precision::Int8)];
        let d = HallucinationDetector::engine_ensemble(DetectorConfig::default(), &specs, &bpe)
            .unwrap();
        assert_eq!(d.num_models(), 1);
        let score = d.score(Q, CTX, PARTIAL).score;
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn engine_ensemble_rejects_empty_spec_list() {
        let bpe = ensemble_tokenizer();
        match HallucinationDetector::engine_ensemble(DetectorConfig::default(), &[], &bpe) {
            Err(e) => assert_eq!(e, DetectorError::NoVerifiers),
            Ok(_) => panic!("empty spec list must be rejected"),
        }
    }
}
