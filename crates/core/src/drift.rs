//! Score-distribution drift detection.
//!
//! Eq. 4's normalization assumes production score distributions match the
//! calibration statistics. When the domain shifts (new handbook, new
//! generator model), per-model means move and the z-scores silently skew.
//! This monitor compares a sliding window of recent raw scores against the
//! calibration baseline with a z-test on the window mean and raises an
//! alert when the shift is statistically implausible — the operational cue
//! to re-calibrate.

use std::collections::VecDeque;

use crate::zscore::RunningStats;

/// Drift verdict for one model stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftStatus {
    /// Not enough recent data to judge.
    Insufficient,
    /// Window statistics are compatible with the baseline.
    Stable,
    /// The window mean is implausibly far from the baseline mean.
    Drifted,
}

/// Sliding-window drift monitor for one model's raw `P(yes)` stream.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    baseline: RunningStats,
    window: VecDeque<f64>,
    /// Window size (number of recent scores compared against the baseline).
    pub window_size: usize,
    /// Alert threshold in standard errors (3.0 ≈ 99.7% two-sided).
    pub z_threshold: f64,
}

impl DriftMonitor {
    /// Create a monitor from calibration-time statistics.
    pub fn new(baseline: RunningStats, window_size: usize) -> Self {
        Self {
            baseline,
            window: VecDeque::with_capacity(window_size),
            window_size: window_size.max(2),
            z_threshold: 3.0,
        }
    }

    /// Record one production score.
    pub fn observe(&mut self, score: f64) {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(score);
    }

    /// Number of scores currently windowed.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Standardized distance of the window mean from the baseline mean:
    /// `(x̄ − μ) / (σ / √n)`. `None` with an empty window or no baseline.
    pub fn window_z(&self) -> Option<f64> {
        if self.window.is_empty() || self.baseline.count() < 2 {
            return None;
        }
        let n = self.window.len() as f64;
        let mean = self.window.iter().sum::<f64>() / n;
        let se = (self.baseline.std_dev() / n.sqrt()).max(1e-9);
        Some((mean - self.baseline.mean()) / se)
    }

    /// Current drift verdict. Requires a full window before judging.
    pub fn status(&self) -> DriftStatus {
        if self.window.len() < self.window_size {
            return DriftStatus::Insufficient;
        }
        match self.window_z() {
            Some(z) if z.abs() > self.z_threshold => DriftStatus::Drifted,
            Some(_) => DriftStatus::Stable,
            None => DriftStatus::Insufficient,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(mean: f64, spread: f64, n: usize) -> RunningStats {
        let mut stats = RunningStats::new();
        for i in 0..n {
            let jitter = spread * ((i % 5) as f64 - 2.0) / 2.0;
            stats.update(mean + jitter);
        }
        stats
    }

    #[test]
    fn stable_stream_stays_stable() {
        let mut monitor = DriftMonitor::new(baseline(0.6, 0.1, 100), 20);
        for i in 0..20 {
            monitor.observe(0.6 + 0.05 * ((i % 5) as f64 - 2.0) / 2.0);
        }
        assert_eq!(monitor.status(), DriftStatus::Stable);
    }

    #[test]
    fn shifted_stream_raises_drift() {
        let mut monitor = DriftMonitor::new(baseline(0.6, 0.1, 100), 20);
        for _ in 0..20 {
            monitor.observe(0.25); // far below baseline
        }
        assert_eq!(monitor.status(), DriftStatus::Drifted);
        assert!(monitor.window_z().unwrap() < -3.0);
    }

    #[test]
    fn insufficient_until_window_fills() {
        let mut monitor = DriftMonitor::new(baseline(0.6, 0.1, 50), 10);
        for _ in 0..9 {
            monitor.observe(0.1);
            assert_eq!(monitor.status(), DriftStatus::Insufficient);
        }
        monitor.observe(0.1);
        assert_eq!(monitor.status(), DriftStatus::Drifted);
    }

    #[test]
    fn window_slides() {
        let mut monitor = DriftMonitor::new(baseline(0.5, 0.2, 50), 5);
        // fill with drifted values, then recover
        for _ in 0..5 {
            monitor.observe(0.05);
        }
        assert_eq!(monitor.status(), DriftStatus::Drifted);
        for _ in 0..5 {
            monitor.observe(0.5);
        }
        assert_eq!(monitor.window_len(), 5);
        assert_eq!(monitor.status(), DriftStatus::Stable);
    }

    #[test]
    fn no_baseline_is_insufficient() {
        let mut monitor = DriftMonitor::new(RunningStats::new(), 3);
        for _ in 0..3 {
            monitor.observe(0.4);
        }
        assert_eq!(monitor.status(), DriftStatus::Insufficient);
    }

    #[test]
    fn sensitivity_scales_with_window() {
        // a small mean shift is invisible in a short window but flagged in a
        // long one (standard error shrinks with √n)
        let shift = 0.05;
        let mut short = DriftMonitor::new(baseline(0.6, 0.1, 200), 5);
        let mut long = DriftMonitor::new(baseline(0.6, 0.1, 200), 200);
        for _ in 0..200 {
            short.observe(0.6 + shift);
            long.observe(0.6 + shift);
        }
        assert_eq!(short.status(), DriftStatus::Stable);
        assert_eq!(long.status(), DriftStatus::Drifted);
    }
}
