//! Cross-model score combination (Eq. 5) and the positivity adjustment.

use crate::score::SentenceScores;
use crate::zscore::ModelNormalizer;

/// Eq. 5: average the per-model normalized scores of one sentence.
///
/// # Panics
/// Panics if the sentence has no model scores.
pub fn combine_models(normalizer: &ModelNormalizer, scores: &SentenceScores) -> f64 {
    assert!(
        !scores.per_model.is_empty(),
        "at least one model score required"
    );
    let m = scores.per_model.len();
    let sum: f64 = scores
        .per_model
        .iter()
        .enumerate()
        .map(|(i, &s)| normalizer.normalize(i, s))
        .sum();
    sum / m as f64
}

/// Eq. 5 over a surviving subset of models: average the normalized scores of
/// the `(model_index, raw_score)` pairs that produced usable probabilities.
///
/// This is the graceful-degradation form of [`combine_models`]: the ensemble
/// renormalizes over whichever models answered (divide by the survivor count,
/// not M). With every model surviving it performs the identical sequence of
/// floating-point operations as [`combine_models`], so healthy-path results
/// are bitwise equal.
///
/// # Panics
/// Panics if no model survived — callers must abstain instead of fabricating
/// a score.
pub fn combine_surviving(normalizer: &ModelNormalizer, survivors: &[(usize, f64)]) -> f64 {
    assert!(!survivors.is_empty(), "at least one model score required");
    let sum: f64 = survivors
        .iter()
        .map(|&(m, s)| normalizer.normalize(m, s))
        .sum();
    sum / survivors.len() as f64
}

/// The explicit "adjustment" Eq. 6 alludes to: map an ensemble z-score into
/// (0, 1) with a logistic so every aggregation mean (harmonic, geometric)
/// stays well-defined. Strictly monotone, so rankings are unchanged.
pub fn squash(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Full per-sentence pipeline: Eq. 4 + Eq. 5 + squash.
pub fn sentence_score(normalizer: &ModelNormalizer, scores: &SentenceScores) -> f64 {
    squash(combine_models(normalizer, scores))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(per_model: Vec<f64>) -> SentenceScores {
        SentenceScores {
            sentence: "s".into(),
            per_model,
        }
    }

    fn calibrated(num_models: usize) -> ModelNormalizer {
        let mut n = ModelNormalizer::new(num_models);
        for i in 0..20 {
            let x = 0.3 + 0.4 * ((i % 10) as f64 / 10.0);
            for m in 0..num_models {
                n.observe(m, x);
            }
        }
        n
    }

    #[test]
    fn average_of_identical_models_is_single_model() {
        let n = calibrated(2);
        let one = combine_models(&n, &sent(vec![0.7]));
        // can't build a 1-model score against 2-model normalizer, so compare
        // two equal columns against a single column of a 1-model normalizer
        let n1 = {
            let mut x = ModelNormalizer::new(1);
            for i in 0..20 {
                x.observe(0, 0.3 + 0.4 * ((i % 10) as f64 / 10.0));
            }
            x
        };
        let _ = n1;
        let two = combine_models(&n, &sent(vec![0.7, 0.7]));
        assert!((one - two).abs() < 1e-12);
    }

    #[test]
    fn higher_raw_scores_give_higher_combined() {
        let n = calibrated(2);
        let low = combine_models(&n, &sent(vec![0.3, 0.35]));
        let high = combine_models(&n, &sent(vec![0.8, 0.85]));
        assert!(high > low);
    }

    #[test]
    fn squash_properties() {
        assert!((squash(0.0) - 0.5).abs() < 1e-12);
        assert!(squash(10.0) > 0.999);
        assert!(squash(-10.0) < 0.001);
        assert!(squash(1.0) > squash(0.5));
    }

    #[test]
    fn squash_output_strictly_positive() {
        // the whole point: harmonic/geometric means need positive inputs
        for z in [-50.0, -5.0, 0.0, 5.0, 50.0] {
            let s = squash(z);
            // strict positivity is the property the harmonic/geometric means
            // need; the upper end may round to exactly 1.0 in f64
            assert!(s > 0.0 && s <= 1.0, "squash({z}) = {s}");
        }
    }

    #[test]
    fn sentence_score_in_unit_interval() {
        let n = calibrated(2);
        for raw in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let s = sentence_score(&n, &sent(vec![raw, raw]));
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_model_scores_panic() {
        combine_models(&calibrated(1), &sent(vec![]));
    }

    #[test]
    fn surviving_all_models_is_bitwise_identical_to_full_combine() {
        let n = calibrated(2);
        let full = combine_models(&n, &sent(vec![0.62, 0.48]));
        let surv = combine_surviving(&n, &[(0, 0.62), (1, 0.48)]);
        assert_eq!(full.to_bits(), surv.to_bits());
    }

    #[test]
    fn surviving_subset_renormalizes_over_survivors() {
        let n = calibrated(2);
        let only_second = combine_surviving(&n, &[(1, 0.7)]);
        assert_eq!(only_second.to_bits(), n.normalize(1, 0.7).to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn no_survivors_panics_rather_than_fabricating() {
        combine_surviving(&calibrated(2), &[]);
    }
}
