//! Explainable verdicts.
//!
//! A guardrail that silently blocks answers is hard to operate; this module
//! turns a [`DetectionResult`](crate::detector::DetectionResult) into a
//! structured report: the verdict, the weakest sentence (the likely
//! hallucination), how much the ensembled models disagree, and a confidence
//! grade. Everything derives from the detector's own outputs — no extra
//! model calls.

use crate::detector::DetectionResult;

/// Confidence grade of a verdict, from the spread of the evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// Sentence scores are far from the threshold and models agree.
    High,
    /// Mixed signals — sensible default is to show the answer with a caveat.
    Medium,
    /// Close to the threshold or models disagree strongly.
    Low,
}

/// A human-consumable explanation of one verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Whether the response passed the threshold.
    pub accepted: bool,
    /// The response-level score `s_i`.
    pub score: f64,
    /// The threshold used.
    pub threshold: f64,
    /// The weakest sentence and its combined score — for a rejected
    /// response, this is the sentence to show the user as the suspected
    /// hallucination. `None` for empty responses.
    pub weakest_sentence: Option<(String, f64)>,
    /// Mean absolute pairwise disagreement of the raw per-model scores over
    /// the weakest sentence (0 = unanimous). High disagreement means the
    /// models see the sentence differently — a reason to lower confidence.
    pub model_disagreement: f64,
    /// Confidence grade.
    pub confidence: Confidence,
}

/// Mean absolute pairwise difference of a score vector (0 for M = 1).
///
/// Values outside `[0, 1]` are ignored: under degraded execution a model that
/// produced no usable score is recorded as
/// [`crate::resilient::MISSING_SCORE`], which must not read as disagreement.
fn disagreement(scores: &[f64]) -> f64 {
    let valid: Vec<f64> = scores
        .iter()
        .copied()
        .filter(|p| crate::score::valid_probability(*p))
        .collect();
    let m = valid.len();
    if m < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            total += (valid[i] - valid[j]).abs();
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Explain a detection result at a decision threshold.
pub fn explain(result: &DetectionResult, threshold: f64) -> Explanation {
    let accepted = result.score >= threshold;
    let weakest = result.sentences.iter().min_by(|a, b| {
        a.combined
            .partial_cmp(&b.combined)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let model_disagreement = weakest.map_or(0.0, |s| disagreement(&s.raw));
    let margin = (result.score - threshold).abs();
    let confidence = if margin > 0.2 && model_disagreement < 0.3 {
        Confidence::High
    } else if margin > 0.08 {
        Confidence::Medium
    } else {
        Confidence::Low
    };

    Explanation {
        accepted,
        score: result.score,
        threshold,
        weakest_sentence: weakest.map(|s| (s.sentence.clone(), s.combined)),
        model_disagreement,
        confidence,
    }
}

impl Explanation {
    /// Render a short operator-facing summary line.
    pub fn summary(&self) -> String {
        let verdict = if self.accepted { "ACCEPT" } else { "REJECT" };
        let conf = match self.confidence {
            Confidence::High => "high",
            Confidence::Medium => "medium",
            Confidence::Low => "low",
        };
        match &self.weakest_sentence {
            Some((sentence, s)) => format!(
                "{verdict} (s={:.3}, threshold {:.2}, confidence {conf}); weakest sentence \
                 (s={s:.3}): \"{sentence}\"",
                self.score, self.threshold
            ),
            None => format!(
                "{verdict} (s={:.3}, threshold {:.2}, confidence {conf}); empty response",
                self.score, self.threshold
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, HallucinationDetector, SentenceDetail};
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
    use slm_runtime::verifier::YesNoVerifier;

    fn fake_result(scores: &[f64]) -> DetectionResult {
        DetectionResult {
            score: scores.iter().copied().fold(f64::INFINITY, f64::min),
            sentences: scores
                .iter()
                .enumerate()
                .map(|(i, &s)| SentenceDetail {
                    sentence: format!("sentence {i}"),
                    raw: vec![s, s],
                    combined: s,
                })
                .collect(),
            resilience: None,
        }
    }

    #[test]
    fn weakest_sentence_is_identified() {
        let e = explain(&fake_result(&[0.9, 0.2, 0.8]), 0.5);
        assert!(!e.accepted);
        let (sentence, score) = e.weakest_sentence.as_ref().unwrap();
        assert_eq!(sentence, "sentence 1");
        assert!((score - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_response_explained() {
        let e = explain(
            &DetectionResult {
                score: 0.0,
                sentences: vec![],
                resilience: None,
            },
            0.5,
        );
        assert!(!e.accepted);
        assert!(e.weakest_sentence.is_none());
        assert!(e.summary().contains("empty response"));
    }

    #[test]
    fn confidence_scales_with_margin() {
        let far = explain(&fake_result(&[0.95, 0.9]), 0.5);
        assert_eq!(far.confidence, Confidence::High);
        let close = explain(&fake_result(&[0.52, 0.55]), 0.5);
        assert_eq!(close.confidence, Confidence::Low);
    }

    #[test]
    fn disagreement_math() {
        assert_eq!(disagreement(&[0.5]), 0.0);
        assert!((disagreement(&[0.2, 0.8]) - 0.6).abs() < 1e-12);
        // three models: pairs (a,b),(a,c),(b,c)
        let d = disagreement(&[0.0, 0.5, 1.0]);
        assert!((d - (0.5 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disagreement_ignores_missing_model_sentinels() {
        use crate::resilient::MISSING_SCORE;
        // a fallen model's sentinel must not register as disagreement
        assert_eq!(disagreement(&[0.7, MISSING_SCORE]), 0.0);
        assert!((disagreement(&[0.2, 0.8, MISSING_SCORE]) - 0.6).abs() < 1e-12);
        assert_eq!(disagreement(&[MISSING_SCORE, MISSING_SCORE]), 0.0);
    }

    #[test]
    fn high_disagreement_lowers_confidence() {
        let mut r = fake_result(&[0.95, 0.9]);
        r.sentences[1].raw = vec![0.1, 0.95]; // models split on the weak one
        r.sentences[1].combined = 0.4;
        r.score = 0.4;
        let e = explain(&r, 0.9);
        assert!(e.model_disagreement > 0.5);
        assert_ne!(e.confidence, Confidence::High);
    }

    #[test]
    fn end_to_end_explanation_flags_the_bad_sentence() {
        let mut d = HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
                Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
            ],
            DetectorConfig::default(),
        );
        let ctx = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
        let q = "What are the working hours?";
        for i in 0..8 {
            d.calibrate(q, ctx, &format!("The store opens at {} AM.", 8 + i % 3));
        }
        let result = d.score(
            q,
            ctx,
            "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.",
        );
        let e = explain(&result, 0.5);
        assert!(e.summary().contains("Monday to Friday"));
        let (weakest, _) = e.weakest_sentence.unwrap();
        assert!(weakest.contains("Monday to Friday"), "{weakest}");
    }
}
