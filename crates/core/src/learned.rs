//! Learned meta-checker (§VI extension).
//!
//! The paper's checker combines sentence scores with a fixed mean and asks
//! (as future work) for "better integration of SLMs". This module learns the
//! integration: a logistic regression over response-level summary features
//! of the sentence scores (all five aggregation means plus the cross-model
//! disagreement), trained with full-batch gradient descent on a labeled
//! development split. It subsumes the fixed means — with a one-hot weight
//! vector it *is* one of them — so it can only help when the dev split is
//! representative.

use crate::detector::DetectionResult;
use crate::means::AggregationMean;

/// Number of summary features.
pub const NUM_FEATURES: usize = 6;

/// Response-level summary features of a detection result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseFeatures {
    /// `[harmonic, arithmetic, geometric, max, min, mean model disagreement]`.
    pub values: [f64; NUM_FEATURES],
}

/// Extract summary features from a scored response.
///
/// Empty responses produce all-zero features (and should be rejected before
/// reaching a learned combiner anyway).
pub fn response_features(result: &DetectionResult) -> ResponseFeatures {
    if result.sentences.is_empty() {
        return ResponseFeatures {
            values: [0.0; NUM_FEATURES],
        };
    }
    let scores: Vec<f64> = result.sentences.iter().map(|s| s.combined).collect();
    let disagreement = result
        .sentences
        .iter()
        .map(|s| {
            let m = s.raw.len();
            if m < 2 {
                return 0.0;
            }
            let mut total = 0.0;
            let mut pairs = 0;
            for i in 0..m {
                for j in (i + 1)..m {
                    total += (s.raw[i] - s.raw[j]).abs();
                    pairs += 1;
                }
            }
            total / pairs as f64
        })
        .sum::<f64>()
        / result.sentences.len() as f64;
    ResponseFeatures {
        values: [
            AggregationMean::Harmonic.aggregate(&scores),
            AggregationMean::Arithmetic.aggregate(&scores),
            AggregationMean::Geometric.aggregate(&scores),
            AggregationMean::Max.aggregate(&scores),
            AggregationMean::Min.aggregate(&scores),
            disagreement,
        ],
    }
}

/// A fitted logistic meta-checker.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticCombiner {
    weights: [f64; NUM_FEATURES],
    bias: f64,
    /// Per-feature standardization fitted on the training split.
    feature_means: [f64; NUM_FEATURES],
    feature_stds: [f64; NUM_FEATURES],
}

impl LogisticCombiner {
    /// Fit on labeled examples (`true` = correct response) with full-batch
    /// gradient descent. Deterministic: zero-initialized weights, fixed
    /// epoch count.
    ///
    /// Returns `None` when the training data is empty or single-class.
    pub fn fit(examples: &[(ResponseFeatures, bool)], epochs: usize, lr: f64) -> Option<Self> {
        if examples.is_empty()
            || examples.iter().all(|(_, y)| *y)
            || examples.iter().all(|(_, y)| !*y)
        {
            return None;
        }
        // Standardize features.
        let n = examples.len() as f64;
        let mut means = [0.0; NUM_FEATURES];
        for (f, _) in examples {
            for (m, v) in means.iter_mut().zip(&f.values) {
                *m += v / n;
            }
        }
        let mut stds = [0.0; NUM_FEATURES];
        for (f, _) in examples {
            for ((s, v), m) in stds.iter_mut().zip(&f.values).zip(&means) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in stds.iter_mut() {
            *s = s.sqrt().max(1e-6);
        }

        let standardized: Vec<([f64; NUM_FEATURES], f64)> = examples
            .iter()
            .map(|(f, y)| {
                let mut x = [0.0; NUM_FEATURES];
                for i in 0..NUM_FEATURES {
                    x[i] = (f.values[i] - means[i]) / stds[i];
                }
                (x, if *y { 1.0 } else { 0.0 })
            })
            .collect();

        let mut weights = [0.0; NUM_FEATURES];
        let mut bias = 0.0;
        for _ in 0..epochs {
            let mut grad_w = [0.0; NUM_FEATURES];
            let mut grad_b = 0.0;
            for (x, y) in &standardized {
                let z: f64 = weights.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + bias;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y;
                for (g, xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= lr * g / n;
            }
            bias -= lr * grad_b / n;
        }
        Some(Self {
            weights,
            bias,
            feature_means: means,
            feature_stds: stds,
        })
    }

    /// Predicted probability that the response is correct.
    pub fn predict(&self, features: &ResponseFeatures) -> f64 {
        let mut z = self.bias;
        for i in 0..NUM_FEATURES {
            let x = (features.values[i] - self.feature_means[i]) / self.feature_stds[i];
            z += self.weights[i] * x;
        }
        1.0 / (1.0 + (-z).exp())
    }

    /// The fitted (standardized-space) feature weights.
    pub fn weights(&self) -> &[f64; NUM_FEATURES] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectionResult, SentenceDetail};

    fn result(scores: &[f64]) -> DetectionResult {
        DetectionResult {
            score: 0.0,
            sentences: scores
                .iter()
                .map(|&s| SentenceDetail {
                    sentence: String::new(),
                    raw: vec![s, (s + 0.1).min(1.0)],
                    combined: s,
                })
                .collect(),
            resilience: None,
        }
    }

    fn synthetic_split(n: usize, seed: u64) -> Vec<(ResponseFeatures, bool)> {
        // correct responses: all sentences high; hallucinated: one low
        let mut out = Vec::new();
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f64 / (1u64 << 24) as f64
        };
        for _ in 0..n {
            let jitter = 0.1 * next();
            out.push((
                response_features(&result(&[0.85 + jitter, 0.8, 0.75])),
                true,
            ));
            out.push((
                response_features(&result(&[0.85 + jitter, 0.15 + 0.1 * next(), 0.75])),
                false,
            ));
        }
        out
    }

    #[test]
    fn features_include_all_means() {
        let f = response_features(&result(&[0.5, 1.0]));
        assert!((f.values[0] - 2.0 / 3.0).abs() < 1e-9); // harmonic
        assert!((f.values[1] - 0.75).abs() < 1e-9); // arithmetic
        assert!((f.values[3] - 1.0).abs() < 1e-9); // max
        assert!((f.values[4] - 0.5).abs() < 1e-9); // min
        assert!(f.values[5] > 0.0); // disagreement from raw columns
    }

    #[test]
    fn empty_response_features_are_zero() {
        let f = response_features(&DetectionResult {
            score: 0.0,
            sentences: vec![],
            resilience: None,
        });
        assert_eq!(f.values, [0.0; NUM_FEATURES]);
    }

    #[test]
    fn fit_learns_separable_data() {
        let train = synthetic_split(40, 7);
        let model = LogisticCombiner::fit(&train, 300, 0.5).unwrap();
        let test = synthetic_split(20, 99);
        let mut correct = 0;
        for (f, y) in &test {
            if (model.predict(f) >= 0.5) == *y {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn degenerate_training_sets_are_rejected() {
        assert!(LogisticCombiner::fit(&[], 10, 0.1).is_none());
        let all_pos = vec![(response_features(&result(&[0.9])), true); 5];
        assert!(LogisticCombiner::fit(&all_pos, 10, 0.1).is_none());
    }

    #[test]
    fn fitting_is_deterministic() {
        let train = synthetic_split(20, 3);
        let a = LogisticCombiner::fit(&train, 100, 0.3).unwrap();
        let b = LogisticCombiner::fit(&train, 100, 0.3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_are_probabilities() {
        let train = synthetic_split(20, 5);
        let model = LogisticCombiner::fit(&train, 100, 0.3).unwrap();
        for (f, _) in &train {
            let p = model.predict(f);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn low_score_features_get_low_probability() {
        let train = synthetic_split(40, 11);
        let model = LogisticCombiner::fit(&train, 300, 0.5).unwrap();
        let good = model.predict(&response_features(&result(&[0.9, 0.85, 0.8])));
        let bad = model.predict(&response_features(&result(&[0.9, 0.1, 0.8])));
        assert!(good > bad, "good {good} vs bad {bad}");
    }
}
