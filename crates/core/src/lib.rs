//! # hallu-core
//!
//! The paper's primary contribution (§IV): a framework that detects
//! hallucinations in RAG answers by splitting the response into sentences,
//! asking multiple locally-deployed small language models for
//! `P(token_1 = "yes")` on each sentence, normalizing per-model score scales,
//! and aggregating into a single response-level hallucination score.
//!
//! Pipeline (Fig. 2b):
//!
//! ```text
//! response r_i ──Splitter──> r_{i,1} … r_{i,J}
//!   each r_{i,j} ──SLM m──> s_{i,j}^(m) = P(token_1 = yes | q_i, c_i, r_{i,j})   (Eq. 3)
//!   z-normalize per model:   s̃_{i,j}^(m) = (s_{i,j}^(m) − μ_m) / σ_m            (Eq. 4)
//!   ensemble:                s_{i,j} = (1/M) Σ_m s̃_{i,j}^(m)                     (Eq. 5)
//!   checker:                 s_i = harmonic_mean_j(s_{i,j})                       (Eq. 6)
//! ```
//!
//! Eq. 6 requires positive sentence scores; the paper says non-positive
//! values "are adjusted". We make that adjustment explicit: ensemble z-scores
//! are squashed through a logistic map into (0, 1) before aggregation, which
//! preserves their order and keeps every mean in Eq. 6–10 well-defined.
//!
//! Modules:
//! * [`score`] — Eq. 2–3 sentence scoring against a set of verifiers.
//! * [`zscore`] — Eq. 4 running per-model statistics (Welford).
//! * [`ensemble`] — Eq. 5 cross-model combination and the logistic squash.
//! * [`means`] — Eq. 6–10 aggregation means (harmonic/arithmetic/geometric/min/max).
//! * [`detector`] — the assembled [`HallucinationDetector`], with optional
//!   parallel sentence scoring and the §VI gating extension.

//! * [`resilience`] / [`resilient`] — the fault-tolerant runtime: retry
//!   policies, circuit breakers, and the [`ResilientDetector`] that degrades
//!   gracefully (or abstains) when verifiers fail.

pub mod detector;
pub mod drift;
pub mod ensemble;
pub mod explain;
pub mod learned;
pub mod means;
pub mod obs;
pub mod resilience;
pub mod resilient;
pub mod score;
pub mod threshold;
pub mod zscore;

pub use detector::{
    DetectionResult, DetectorConfig, DetectorError, EngineSpec, HallucinationDetector,
    SentenceDetail,
};
pub use drift::{DriftMonitor, DriftStatus};
pub use explain::{explain, Confidence, Explanation};
pub use learned::{response_features, LogisticCombiner, ResponseFeatures};
pub use means::AggregationMean;
pub use obs::ResilienceTotals;
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, DegradationLevel, ModelHealth,
    ResilienceTelemetry, RetryPolicy,
};
pub use resilient::{ResilientDetector, Verdict, MISSING_SCORE};
pub use threshold::{fit as fit_threshold, FittedThreshold, Objective};
pub use zscore::{ModelNormalizer, RunningStats};
