//! Aggregation means over per-sentence scores (Eq. 6–10).
//!
//! The checker collapses the sentence scores `s_{i,1} … s_{i,J}` into one
//! response score `s_i`. The paper evaluates five choices (Fig. 5): the
//! harmonic mean (Eq. 6, the default — one bad sentence drags the whole
//! response down), arithmetic (Eq. 7), geometric (Eq. 8), min (Eq. 9) and
//! max (Eq. 10).

use serde::{Deserialize, Serialize};

/// Floor applied to scores entering harmonic/geometric means, the concrete
/// form of the paper's "values less than or equal to zero are adjusted".
pub const POSITIVITY_EPS: f64 = 1e-6;

/// The five aggregation means of Eq. 6–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AggregationMean {
    /// Eq. 6 — the paper's default.
    #[default]
    Harmonic,
    /// Eq. 7.
    Arithmetic,
    /// Eq. 8.
    Geometric,
    /// Eq. 9.
    Min,
    /// Eq. 10.
    Max,
}

impl AggregationMean {
    /// All means in the order Fig. 5 reports them.
    pub const ALL: [AggregationMean; 5] = [
        AggregationMean::Harmonic,
        AggregationMean::Arithmetic,
        AggregationMean::Geometric,
        AggregationMean::Max,
        AggregationMean::Min,
    ];

    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggregationMean::Harmonic => "harmonic",
            AggregationMean::Arithmetic => "arithmetic",
            AggregationMean::Geometric => "geometric",
            AggregationMean::Min => "min",
            AggregationMean::Max => "max",
        }
    }

    /// Aggregate sentence scores into a response score.
    ///
    /// Scores at or below zero are clamped to [`POSITIVITY_EPS`] for the
    /// harmonic and geometric means.
    ///
    /// # Panics
    /// Panics on an empty slice — a response always has at least one sentence.
    pub fn aggregate(&self, scores: &[f64]) -> f64 {
        assert!(!scores.is_empty(), "cannot aggregate zero sentence scores");
        let n = scores.len() as f64;
        match self {
            AggregationMean::Harmonic => {
                let denom: f64 = scores.iter().map(|&s| 1.0 / s.max(POSITIVITY_EPS)).sum();
                n / denom
            }
            AggregationMean::Arithmetic => scores.iter().sum::<f64>() / n,
            AggregationMean::Geometric => {
                let log_sum: f64 = scores.iter().map(|&s| s.max(POSITIVITY_EPS).ln()).sum();
                (log_sum / n).exp()
            }
            AggregationMean::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            AggregationMean::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for AggregationMean {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn hand_computed_values() {
        let xs = [0.5, 1.0];
        assert!((AggregationMean::Harmonic.aggregate(&xs) - 2.0 / 3.0).abs() < EPS);
        assert!((AggregationMean::Arithmetic.aggregate(&xs) - 0.75).abs() < EPS);
        assert!((AggregationMean::Geometric.aggregate(&xs) - 0.5f64.sqrt()).abs() < EPS);
        assert!((AggregationMean::Min.aggregate(&xs) - 0.5).abs() < EPS);
        assert!((AggregationMean::Max.aggregate(&xs) - 1.0).abs() < EPS);
    }

    #[test]
    fn all_means_equal_on_constant_input() {
        let xs = [0.7, 0.7, 0.7];
        for m in AggregationMean::ALL {
            assert!((m.aggregate(&xs) - 0.7).abs() < EPS, "{m}");
        }
    }

    #[test]
    fn classic_inequality_holds() {
        // min ≤ harmonic ≤ geometric ≤ arithmetic ≤ max
        let xs = [0.2, 0.5, 0.9];
        let h = AggregationMean::Harmonic.aggregate(&xs);
        let g = AggregationMean::Geometric.aggregate(&xs);
        let a = AggregationMean::Arithmetic.aggregate(&xs);
        let lo = AggregationMean::Min.aggregate(&xs);
        let hi = AggregationMean::Max.aggregate(&xs);
        assert!(lo <= h && h <= g && g <= a && a <= hi);
    }

    #[test]
    fn harmonic_punishes_one_bad_sentence() {
        // the property Fig. 5 turns on: a single near-zero sentence tanks the
        // harmonic mean but barely moves the max
        let xs = [0.9, 0.9, 0.05];
        assert!(AggregationMean::Harmonic.aggregate(&xs) < 0.15);
        assert!(AggregationMean::Max.aggregate(&xs) > 0.85);
        assert!(AggregationMean::Arithmetic.aggregate(&xs) > 0.5);
    }

    #[test]
    fn non_positive_inputs_are_adjusted() {
        let xs = [0.0, 0.5];
        let h = AggregationMean::Harmonic.aggregate(&xs);
        let g = AggregationMean::Geometric.aggregate(&xs);
        assert!(h.is_finite() && h > 0.0);
        assert!(g.is_finite() && g > 0.0);
        // negative too
        let neg = [-0.3, 0.5];
        assert!(AggregationMean::Harmonic.aggregate(&neg).is_finite());
    }

    #[test]
    fn singleton_is_identity_for_all_means() {
        for m in AggregationMean::ALL {
            assert!((m.aggregate(&[0.42]) - 0.42).abs() < EPS, "{m}");
        }
    }

    #[test]
    #[should_panic(expected = "zero sentence scores")]
    fn empty_input_panics() {
        AggregationMean::Harmonic.aggregate(&[]);
    }

    #[test]
    fn names_match_figure_labels() {
        let names: Vec<&str> = AggregationMean::ALL.iter().map(|m| m.as_str()).collect();
        assert_eq!(names, ["harmonic", "arithmetic", "geometric", "max", "min"]);
    }

    proptest::proptest! {
        #[test]
        fn means_bounded_by_min_max(xs in proptest::collection::vec(0.01f64..1.0, 1..10)) {
            let lo = AggregationMean::Min.aggregate(&xs);
            let hi = AggregationMean::Max.aggregate(&xs);
            for m in [AggregationMean::Harmonic, AggregationMean::Arithmetic, AggregationMean::Geometric] {
                let v = m.aggregate(&xs);
                proptest::prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{m}: {v} not in [{lo}, {hi}]");
            }
        }

        #[test]
        fn ordering_inequality_universal(xs in proptest::collection::vec(0.01f64..1.0, 1..10)) {
            let h = AggregationMean::Harmonic.aggregate(&xs);
            let g = AggregationMean::Geometric.aggregate(&xs);
            let a = AggregationMean::Arithmetic.aggregate(&xs);
            proptest::prop_assert!(h <= g + 1e-9);
            proptest::prop_assert!(g <= a + 1e-9);
        }

        #[test]
        fn permutation_invariant(mut xs in proptest::collection::vec(0.01f64..1.0, 2..8)) {
            let before: Vec<f64> = AggregationMean::ALL.iter().map(|m| m.aggregate(&xs)).collect();
            xs.reverse();
            let after: Vec<f64> = AggregationMean::ALL.iter().map(|m| m.aggregate(&xs)).collect();
            for (b, a) in before.iter().zip(&after) {
                proptest::prop_assert!((b - a).abs() < 1e-9);
            }
        }
    }
}
