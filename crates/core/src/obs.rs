//! Registry-backed views of the resilient detector's telemetry.
//!
//! PR 1 introduced [`ResilienceTelemetry`](crate::ResilienceTelemetry) as a
//! per-call counter struct. That struct stays — it is the compatibility
//! facade every existing caller and test relies on — but the counts now
//! *also* flow into a `hallu-obs` registry when the detector is built with
//! an [`Obs`] handle, so aggregate questions ("how many breaker trips
//! across the whole run?") are answered by one snapshot instead of by
//! summing structs by hand. [`ResilienceTotals`] is that derived view.
//!
//! Metric families written here (see DESIGN.md §9 for the scheme):
//!
//! - `hallu_detector_events_total{event}` — attempts, retries, timeouts,
//!   quarantined, breaker_trips, breaker_skips, sentences_dropped,
//!   deadline_skips; each increment equals the facade's per-call delta.
//! - `hallu_detector_verdicts_total{degradation}` — one per scoring call.
//! - `hallu_detector_simulated_ms` — histogram of per-call charged cost.
//! - `hallu_detector_cell_outcomes_total{model, outcome}` — ok /
//!   quarantined / failed / breaker_skip per (sentence, model) cell.
//! - `hallu_breaker_trips_total{model}` — breaker transitions to open.

use hallu_obs::{Counter, Histogram, MetricsSnapshot, Obs, DEFAULT_LATENCY_BUCKETS_MS};

use crate::resilience::{DegradationLevel, ResilienceTelemetry};

/// Fixed-point quantum for charging fractional simulated milliseconds to a
/// counter (1 unit = 1 µs), so the registry total reconstructs the facade's
/// f64 sum without drift.
const MS_TO_MICROS: f64 = 1000.0;

/// Per-model counter handles, slot-indexed like the detector's verifiers.
#[derive(Debug, Clone, Default)]
pub(crate) struct ModelCells {
    pub(crate) ok: Counter,
    pub(crate) quarantined: Counter,
    pub(crate) failed: Counter,
    pub(crate) breaker_skip: Counter,
    pub(crate) breaker_trips: Counter,
}

/// All registry handles one detector writes. Every handle is disconnected
/// (free to bump) until registered against a live sink.
#[derive(Debug, Clone, Default)]
pub(crate) struct DetectorMetrics {
    pub(crate) attempts: Counter,
    pub(crate) retries: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) quarantined: Counter,
    pub(crate) breaker_trips: Counter,
    pub(crate) breaker_skips: Counter,
    pub(crate) sentences_dropped: Counter,
    pub(crate) deadline_skips: Counter,
    /// Charged simulated time in whole microseconds (fixed-point so the
    /// registry view reconstructs the facade's f64 sum exactly).
    pub(crate) simulated_us: Counter,
    pub(crate) simulated_ms: Histogram,
    pub(crate) verdicts: [Counter; 4],
    pub(crate) models: Vec<ModelCells>,
}

fn verdict_slot(level: DegradationLevel) -> usize {
    match level {
        DegradationLevel::Full => 0,
        DegradationLevel::Degraded => 1,
        DegradationLevel::Partial => 2,
        DegradationLevel::Abstained => 3,
    }
}

const DEGRADATION_LABELS: [&str; 4] = ["full", "degraded", "partial", "abstained"];

impl DetectorMetrics {
    pub(crate) fn register(obs: &Obs, model_names: &[&str]) -> Self {
        let event = |name: &str| {
            obs.counter(
                "hallu_detector_events_total",
                "Resilience events in the detector, by kind",
                &[("event", name)],
            )
        };
        let verdicts = DEGRADATION_LABELS.map(|level| {
            obs.counter(
                "hallu_detector_verdicts_total",
                "Scoring calls by degradation level of the verdict",
                &[("degradation", level)],
            )
        });
        let models = model_names
            .iter()
            .map(|model| {
                let cell = |outcome: &str| {
                    obs.counter(
                        "hallu_detector_cell_outcomes_total",
                        "(sentence, model) cell outcomes after retries and quarantine",
                        &[("model", model), ("outcome", outcome)],
                    )
                };
                ModelCells {
                    ok: cell("ok"),
                    quarantined: cell("quarantined"),
                    failed: cell("failed"),
                    breaker_skip: cell("breaker_skip"),
                    breaker_trips: obs.counter(
                        "hallu_breaker_trips_total",
                        "Circuit-breaker transitions to open, per model",
                        &[("model", model)],
                    ),
                }
            })
            .collect();
        Self {
            attempts: event("attempts"),
            retries: event("retries"),
            timeouts: event("timeouts"),
            quarantined: event("quarantined"),
            breaker_trips: event("breaker_trips"),
            breaker_skips: event("breaker_skips"),
            sentences_dropped: event("sentences_dropped"),
            deadline_skips: event("deadline_skips"),
            simulated_us: obs.counter(
                "hallu_detector_simulated_us_total",
                "Charged simulated time in microseconds (fixed-point)",
                &[],
            ),
            simulated_ms: obs.histogram(
                "hallu_detector_simulated_ms",
                "Charged simulated time per scoring call",
                &[],
                &DEFAULT_LATENCY_BUCKETS_MS,
            ),
            verdicts,
            models,
        }
    }

    /// Slot-indexed model handles; out-of-range (the disconnected default
    /// has none) yields a shared disconnected set, so call sites never
    /// branch on whether a sink is attached.
    pub(crate) fn model(&self, mi: usize) -> &ModelCells {
        static DISCONNECTED: std::sync::OnceLock<ModelCells> = std::sync::OnceLock::new();
        self.models
            .get(mi)
            .unwrap_or_else(|| DISCONNECTED.get_or_init(ModelCells::default))
    }

    /// Flush one call's facade telemetry into the registry. The facade is
    /// the source of truth; the registry mirrors its deltas, which is what
    /// keeps the two views provably consistent (see
    /// `totals_equal_summed_telemetry` in `resilient.rs`).
    pub(crate) fn flush(&self, tele: &ResilienceTelemetry) {
        self.attempts.add(tele.attempts);
        self.retries.add(tele.retries);
        self.timeouts.add(tele.timeouts);
        self.quarantined.add(tele.quarantined);
        self.breaker_trips.add(tele.breaker_trips);
        self.breaker_skips.add(tele.breaker_skips);
        self.sentences_dropped.add(tele.sentences_dropped);
        self.deadline_skips.add(tele.deadline_skips);
        self.simulated_us
            .add((tele.simulated_ms * MS_TO_MICROS).round() as u64);
        self.simulated_ms.observe(tele.simulated_ms);
        self.verdicts[verdict_slot(tele.degradation)].inc();
    }
}

/// Aggregate resilience counts reconstructed from a registry snapshot —
/// the registry-derived equivalent of summing every per-call
/// [`ResilienceTelemetry`] a run produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceTotals {
    /// Scoring calls observed (sum over degradation levels).
    pub calls: u64,
    /// Calls per degradation level: `[full, degraded, partial, abstained]`.
    pub by_degradation: [u64; 4],
    /// Verifier attempts, including retries.
    pub attempts: u64,
    /// Retries after transient failures.
    pub retries: u64,
    /// Calls abandoned at the per-call deadline.
    pub timeouts: u64,
    /// Garbage scores quarantined.
    pub quarantined: u64,
    /// Breaker transitions to open.
    pub breaker_trips: u64,
    /// Calls skipped by an open breaker.
    pub breaker_skips: u64,
    /// Sentences with no usable score.
    pub sentences_dropped: u64,
    /// Sentences never attempted due to an exhausted budget.
    pub deadline_skips: u64,
    /// Total charged simulated time, reconstructed from the fixed-point
    /// microsecond counter.
    pub simulated_ms: f64,
}

impl ResilienceTotals {
    /// Derive totals from a snapshot taken on the detector's sink.
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        let event = |name: &str| {
            snap.value("hallu_detector_events_total", &[("event", name)])
                .unwrap_or(0.0) as u64
        };
        let mut by_degradation = [0u64; 4];
        for (slot, label) in DEGRADATION_LABELS.iter().enumerate() {
            by_degradation[slot] = snap
                .value("hallu_detector_verdicts_total", &[("degradation", label)])
                .unwrap_or(0.0) as u64;
        }
        Self {
            calls: by_degradation.iter().sum(),
            by_degradation,
            attempts: event("attempts"),
            retries: event("retries"),
            timeouts: event("timeouts"),
            quarantined: event("quarantined"),
            breaker_trips: event("breaker_trips"),
            breaker_skips: event("breaker_skips"),
            sentences_dropped: event("sentences_dropped"),
            deadline_skips: event("deadline_skips"),
            simulated_ms: snap.total("hallu_detector_simulated_us_total") / MS_TO_MICROS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tele(level: DegradationLevel) -> ResilienceTelemetry {
        let mut t = ResilienceTelemetry::empty();
        t.attempts = 4;
        t.retries = 1;
        t.timeouts = 2;
        t.quarantined = 1;
        t.breaker_trips = 1;
        t.breaker_skips = 3;
        t.sentences_dropped = 1;
        t.deadline_skips = 2;
        t.simulated_ms = 12.625;
        t.degradation = level;
        t
    }

    #[test]
    fn flush_then_totals_round_trips() {
        let obs = Obs::new();
        let metrics = DetectorMetrics::register(&obs, &["m0", "m1"]);
        metrics.flush(&sample_tele(DegradationLevel::Degraded));
        metrics.flush(&sample_tele(DegradationLevel::Abstained));
        let totals = ResilienceTotals::from_snapshot(&obs.metrics_snapshot());
        assert_eq!(totals.calls, 2);
        assert_eq!(totals.by_degradation, [0, 1, 0, 1]);
        assert_eq!(totals.attempts, 8);
        assert_eq!(totals.retries, 2);
        assert_eq!(totals.timeouts, 4);
        assert_eq!(totals.quarantined, 2);
        assert_eq!(totals.breaker_trips, 2);
        assert_eq!(totals.breaker_skips, 6);
        assert_eq!(totals.sentences_dropped, 2);
        assert_eq!(totals.deadline_skips, 4);
        assert_eq!(totals.simulated_ms, 25.25, "µs fixed-point is exact here");
    }

    #[test]
    fn disconnected_metrics_flush_is_free_and_silent() {
        let metrics = DetectorMetrics::default();
        metrics.flush(&sample_tele(DegradationLevel::Full));
        let totals = ResilienceTotals::from_snapshot(&MetricsSnapshot::default());
        assert_eq!(totals, ResilienceTotals::default());
    }
}
