//! Resilience policy primitives: retry with deterministic backoff, per-model
//! circuit breakers, and the telemetry the resilient detector reports.
//!
//! Everything here is *simulated-time* and deterministic: backoff jitter is a
//! hash of (call key, attempt), never a clock or an RNG draw shared across
//! threads, so a fault-injected run replays identically regardless of thread
//! interleaving.

use std::fmt;

/// SplitMix64 finalizer (local copy; full-avalanche bijection on u64).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a hash of string parts (stable across platforms).
pub(crate) fn call_key(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Bounded-retry policy with exponential backoff and a per-call deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied per retry (exponential backoff).
    pub backoff_factor: f64,
    /// Per-call latency budget: a probe slower than this counts as a
    /// timeout (the caller stops waiting at the deadline).
    pub deadline_ms: f64,
    /// Simulated cost charged for an attempt that fails outright
    /// (connection errors return faster than full inference).
    pub failure_cost_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ms: 25.0,
            backoff_factor: 2.0,
            // Normal simulated latencies are 8–62 ms (see
            // `slm_runtime::fallible::simulated_latency_ms`); stalls are 40x.
            // 120 ms passes every healthy call and fails every stall.
            deadline_ms: 120.0,
            failure_cost_ms: 5.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based), with deterministic
    /// jitter in [50%, 100%) of the exponential target, keyed by `key`.
    pub fn backoff_ms(&self, attempt: u32, key: u64) -> f64 {
        let target = self.base_backoff_ms * self.backoff_factor.powi(attempt as i32);
        let h = splitmix64(key ^ u64::from(attempt + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        target * (0.5 + 0.5 * unit)
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Calls skipped while open before a half-open probe is allowed.
    pub cooldown_calls: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 4,
            cooldown_calls: 8,
        }
    }
}

/// Breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are skipped; the model gets a rest.
    Open,
    /// One probe call is allowed through to test recovery.
    HalfOpen,
}

/// Per-model health counters, exposed for telemetry and operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelHealth {
    /// Successful calls recorded.
    pub successes: u64,
    /// Failed calls recorded (errors, timeouts, quarantined scores).
    pub failures: u64,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Current state.
    pub state: BreakerState,
}

/// A closed → open → half-open circuit breaker driven by call outcomes.
///
/// Time-free: cooldown is measured in skipped calls, not wall clock, so the
/// state sequence is a pure function of the outcome sequence.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    skipped_while_open: u32,
    successes: u64,
    failures: u64,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            skipped_while_open: 0,
            successes: 0,
            failures: 0,
            trips: 0,
        }
    }

    /// Ask permission for one call. While open, counts the skip; after
    /// `cooldown_calls` skips the breaker half-opens and this call becomes
    /// the probe.
    pub fn preflight(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.skipped_while_open += 1;
                if self.skipped_while_open >= self.config.cooldown_calls {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful call (closes a half-open breaker).
    pub fn record_success(&mut self) {
        self.successes += 1;
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Record a failed call; may trip the breaker.
    pub fn record_failure(&mut self) {
        self.failures += 1;
        self.consecutive_failures += 1;
        let trip = match self.state {
            // a failed half-open probe re-opens immediately
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.skipped_while_open = 0;
            self.trips += 1;
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times tripped open so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Snapshot of the health counters.
    pub fn health(&self) -> ModelHealth {
        ModelHealth {
            successes: self.successes,
            failures: self.failures,
            trips: self.trips,
            state: self.state,
        }
    }
}

/// How much of the ensemble actually contributed to a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationLevel {
    /// Every model scored every sentence.
    Full,
    /// Some (sentence, model) cells were lost, but every sentence was scored
    /// by at least one model.
    Degraded,
    /// Whole sentences were dropped for lack of any surviving score.
    Partial,
    /// Nothing could be scored; the verdict is an explicit abstention.
    Abstained,
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Full => "full",
            Self::Degraded => "degraded",
            Self::Partial => "partial",
            Self::Abstained => "abstained",
        };
        f.write_str(s)
    }
}

/// What the resilient executor did to produce one verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceTelemetry {
    /// Models that contributed at least one accepted score, in slot order.
    pub models_consulted: Vec<String>,
    /// Models that contributed nothing (all cells failed or skipped).
    pub models_failed: Vec<String>,
    /// Verification attempts issued (including retries).
    pub attempts: u64,
    /// Retries among those attempts.
    pub retries: u64,
    /// Attempts lost to the latency deadline.
    pub timeouts: u64,
    /// Scores rejected for being non-finite or outside [0, 1].
    pub quarantined: u64,
    /// Breaker trips that occurred while scoring this response.
    pub breaker_trips: u64,
    /// Calls skipped because a breaker was open.
    pub breaker_skips: u64,
    /// Sentences dropped without a usable score — model failures and
    /// deadline skips both land here (degradation turns `Partial`).
    pub sentences_dropped: u64,
    /// Of the dropped sentences, how many were never attempted because the
    /// request's deadline budget ran out first (deadline-aware scoring,
    /// [`crate::resilient::ResilientDetector::score_within`]).
    pub deadline_skips: u64,
    /// Degradation classification of the verdict.
    pub degradation: DegradationLevel,
    /// Total simulated time spent (latencies + failure costs + backoffs).
    pub simulated_ms: f64,
}

impl ResilienceTelemetry {
    /// All-zero telemetry at [`DegradationLevel::Full`]: the starting point
    /// every scoring pass accumulates into, and the honest default when no
    /// executor ran at all.
    pub fn empty() -> Self {
        Self {
            models_consulted: Vec::new(),
            models_failed: Vec::new(),
            attempts: 0,
            retries: 0,
            timeouts: 0,
            quarantined: 0,
            breaker_trips: 0,
            breaker_skips: 0,
            sentences_dropped: 0,
            deadline_skips: 0,
            degradation: DegradationLevel::Full,
            simulated_ms: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_with_jitter_bounds() {
        let p = RetryPolicy::default();
        for key in [1u64, 99, 12345] {
            let b0 = p.backoff_ms(0, key);
            let b1 = p.backoff_ms(1, key);
            let b2 = p.backoff_ms(2, key);
            assert!((12.5..25.0).contains(&b0), "{b0}");
            assert!((25.0..50.0).contains(&b1), "{b1}");
            assert!((50.0..100.0).contains(&b2), "{b2}");
        }
    }

    #[test]
    fn backoff_is_deterministic_and_key_sensitive() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1, 42), p.backoff_ms(1, 42));
        assert_ne!(p.backoff_ms(1, 42), p.backoff_ms(1, 43));
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 2,
        });
        assert!(b.preflight());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 2,
        });
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn open_breaker_skips_then_half_opens_then_recovers() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_calls: 3,
        });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // two skips, then the third preflight is the half-open probe
        assert!(!b.preflight());
        assert!(!b.preflight());
        assert!(b.preflight());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_calls: 1,
        });
        b.record_failure();
        assert!(b.preflight(), "cooldown of 1 half-opens on the first skip");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn health_snapshot_counts() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.record_success();
        b.record_success();
        b.record_failure();
        let h = b.health();
        assert_eq!((h.successes, h.failures, h.trips), (2, 1, 0));
        assert_eq!(h.state, BreakerState::Closed);
    }

    #[test]
    fn degradation_levels_display() {
        assert_eq!(DegradationLevel::Full.to_string(), "full");
        assert_eq!(DegradationLevel::Abstained.to_string(), "abstained");
    }

    #[test]
    fn call_key_separates_parts() {
        assert_ne!(call_key(&["ab", "c"]), call_key(&["a", "bc"]));
        assert_eq!(call_key(&["x", "y"]), call_key(&["x", "y"]));
    }

    /// Legal state transitions of the breaker machine. `Closed → HalfOpen`
    /// and `Open → Closed` are the skips the design forbids: a breaker must
    /// pass through `Open` to rest and through `HalfOpen` to prove recovery.
    fn transition_is_legal(from: BreakerState, to: BreakerState) -> bool {
        use BreakerState::{Closed, HalfOpen, Open};
        matches!(
            (from, to),
            (Closed, Closed)
                | (Closed, Open)
                | (Open, Open)
                | (Open, HalfOpen)
                | (HalfOpen, Closed)
                | (HalfOpen, Open)
                | (HalfOpen, HalfOpen)
        )
    }

    proptest::proptest! {
        /// Under ANY interleaving of preflight/success/failure events, the
        /// state machine never skips a state.
        #[test]
        fn breaker_never_skips_states(
            failure_threshold in 1u32..=6,
            cooldown_calls in 1u32..=10,
            events in proptest::collection::vec(0u8..3, 0..200),
        ) {
            let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold, cooldown_calls });
            for e in events {
                let before = b.state();
                match e {
                    0 => { b.preflight(); }
                    1 => b.record_success(),
                    _ => b.record_failure(),
                }
                proptest::prop_assert!(
                    transition_is_legal(before, b.state()),
                    "illegal transition {before:?} -> {:?} on event {e}",
                    b.state()
                );
            }
        }

        /// An open breaker never denies more than `cooldown_calls` probes in
        /// a row: the cooldown-th preflight half-opens it and is admitted.
        #[test]
        fn breaker_never_stays_open_past_cooldown(
            failure_threshold in 1u32..=6,
            cooldown_calls in 1u32..=10,
            events in proptest::collection::vec(0u8..3, 0..200),
        ) {
            let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold, cooldown_calls });
            let mut denied_in_a_row = 0u32;
            for e in events {
                match e {
                    0 => {
                        if b.preflight() {
                            denied_in_a_row = 0;
                        } else {
                            denied_in_a_row += 1;
                            proptest::prop_assert!(
                                denied_in_a_row < cooldown_calls,
                                "denied {denied_in_a_row} probes with cooldown {cooldown_calls}"
                            );
                        }
                    }
                    1 => b.record_success(),
                    _ => b.record_failure(),
                }
                if b.state() != BreakerState::Open {
                    denied_in_a_row = 0;
                }
            }
        }

        /// `preflight` admits a call iff the breaker is not resting: denial
        /// happens only in `Open`, and a denial leaves it `Open`.
        #[test]
        fn breaker_denies_only_while_open(
            failure_threshold in 1u32..=6,
            cooldown_calls in 1u32..=10,
            events in proptest::collection::vec(0u8..3, 0..200),
        ) {
            let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold, cooldown_calls });
            for e in events {
                match e {
                    0 => {
                        let before = b.state();
                        let admitted = b.preflight();
                        if !admitted {
                            proptest::prop_assert_eq!(before, BreakerState::Open);
                            proptest::prop_assert_eq!(b.state(), BreakerState::Open);
                        }
                        if before != BreakerState::Open {
                            proptest::prop_assert!(admitted);
                        }
                    }
                    1 => b.record_success(),
                    _ => b.record_failure(),
                }
            }
        }

        /// Driving the full call protocol (preflight-gated outcomes) with
        /// arbitrary results: the breaker trips exactly on the
        /// `failure_threshold`-th consecutive failure, and the trip counter
        /// moves only on a `* -> Open` edge.
        #[test]
        fn breaker_trips_exactly_at_threshold(
            failure_threshold in 1u32..=6,
            cooldown_calls in 1u32..=10,
            outcomes in proptest::collection::vec(proptest::bool::ANY, 0..200),
        ) {
            let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold, cooldown_calls });
            let mut consecutive_failures = 0u32;
            for ok in outcomes {
                let before = b.state();
                let trips_before = b.trips();
                if !b.preflight() {
                    continue;
                }
                if ok {
                    b.record_success();
                    consecutive_failures = 0;
                } else {
                    b.record_failure();
                    consecutive_failures += 1;
                }
                let tripped = b.trips() > trips_before;
                if tripped {
                    proptest::prop_assert_eq!(b.state(), BreakerState::Open);
                    proptest::prop_assert!(
                        !ok,
                        "a success can never trip the breaker"
                    );
                }
                // a closed breaker trips iff the streak reaches threshold
                if before == BreakerState::Closed && !ok {
                    proptest::prop_assert_eq!(
                        tripped,
                        consecutive_failures >= failure_threshold
                    );
                }
                // a failed half-open probe re-opens unconditionally
                if before == BreakerState::HalfOpen && !ok {
                    proptest::prop_assert!(tripped);
                }
            }
        }
    }
}
