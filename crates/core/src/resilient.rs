//! Fault-tolerant detection: the paper's framework (Fig. 2b) executed
//! against verifiers that can time out, fail, or return garbage.
//!
//! [`ResilientDetector`] runs the same Splitter → M SLMs → Checker pipeline
//! as [`HallucinationDetector`](crate::HallucinationDetector), but through
//! the fallible interface ([`FallibleVerifier`]) with a full resilience
//! policy: bounded retry with deterministic exponential backoff, a per-call
//! latency deadline, per-model circuit breakers, score quarantine, and
//! graceful ensemble degradation (Eq. 5 renormalized over surviving models).
//! When nothing at all survives it returns [`Verdict::Abstain`] — never a
//! fabricated score.
//!
//! # Determinism
//!
//! Scoring runs in two phases so that `config.parallel` cannot change any
//! result bit:
//!
//! 1. **Probe** — every (sentence, model) cell is attempted (with retries and
//!    deadlines) independently. All randomness in fault injection and backoff
//!    jitter is keyed by (seed, model, request text, attempt), never by call
//!    order, so this phase is embarrassingly parallel.
//! 2. **Replay** — cell outcomes are folded through the circuit breakers in
//!    canonical order (sentences in response order, models in slot order) and
//!    combined. Breaker state transitions therefore see the identical outcome
//!    sequence regardless of thread interleaving in phase 1.
//!
//! The only deliberate asymmetry with a real deployment: a cell that the
//! breaker skips in phase 2 was speculatively probed in phase 1, but its cost
//! is *not* charged to the telemetry — exactly as if the call had never been
//! issued, which is what an open breaker buys you.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use hallu_obs::Obs;
use slm_runtime::batch::{BatchEngine, BatchJob, BatchReport, ProbeOutcome};
use slm_runtime::cache::{CacheKeyRef, VerificationCache};
use slm_runtime::fallible::{FallibleVerifier, Reliable};
use slm_runtime::verifier::{VerificationRequest, YesNoVerifier};
use text_engine::sentence::SentenceSplitter;

use crate::detector::{DetectionResult, DetectorConfig, DetectorError, SentenceDetail};
use crate::ensemble::{combine_surviving, squash};
use crate::obs::DetectorMetrics;
use crate::resilience::{
    call_key, BreakerConfig, CircuitBreaker, DegradationLevel, ModelHealth, ResilienceTelemetry,
    RetryPolicy,
};
use crate::score::valid_probability;
use crate::zscore::ModelNormalizer;

/// Sentinel stored in [`SentenceDetail::raw`] for a model that produced no
/// usable score for that sentence (error, timeout, quarantine, or breaker
/// skip). A real probability is never negative, so the sentinel cannot
/// collide; NaN is not used because it would break `PartialEq` on results.
pub const MISSING_SCORE: f64 = -1.0;

/// Run the bounded-retry loop for one cell.
///
/// Attempts are named explicitly
/// ([`FallibleVerifier::try_p_yes_attempt`]), so the whole episode is a pure
/// function of `(verifier, policy, request)` — re-running it reproduces the
/// same [`ProbeOutcome`] bit-for-bit regardless of what was probed before.
/// That purity is what makes the verification cache and duplicate-job
/// coalescing semantically invisible.
fn probe_cell(
    verifier: &dyn FallibleVerifier,
    policy: &RetryPolicy,
    req: &VerificationRequest<'_>,
    key: u64,
) -> ProbeOutcome {
    let mut out = ProbeOutcome::default();
    loop {
        let attempt = out.attempts as u32;
        out.attempts += 1;
        let retryable = match verifier.try_p_yes_attempt(req, attempt) {
            Ok(probe) => {
                if probe.latency_ms > policy.deadline_ms {
                    // we stop waiting at the deadline, so that is the cost
                    out.timeouts += 1;
                    out.simulated_ms += policy.deadline_ms;
                    true
                } else {
                    out.simulated_ms += probe.latency_ms;
                    out.score = Some(probe.p_yes);
                    return out;
                }
            }
            Err(e) => {
                out.simulated_ms += policy.failure_cost_ms;
                e.is_retryable()
            }
        };
        if !retryable || out.attempts >= u64::from(policy.max_attempts) {
            return out;
        }
        out.retries += 1;
        out.simulated_ms += policy.backoff_ms(attempt, key);
    }
}

/// [`probe_cell`] behind the verification cache: a hit replays the memoized
/// episode (including its simulated cost — a pure function of the cell, so
/// downstream virtual-time dynamics are bitwise-unchanged); a miss runs the
/// episode and memoizes it iff it settled on a valid probability.
fn probe_cell_cached(
    cache: Option<&VerificationCache>,
    verifier: &dyn FallibleVerifier,
    policy: &RetryPolicy,
    req: &VerificationRequest<'_>,
    key: u64,
) -> ProbeOutcome {
    let Some(cache) = cache else {
        return probe_cell(verifier, policy, req, key);
    };
    let cache_key = CacheKeyRef::new(verifier.name(), req.question, req.context, req.response);
    if let Some(hit) = cache.get(&cache_key) {
        return hit;
    }
    let out = probe_cell(verifier, policy, req, key);
    cache.insert(&cache_key, out);
    out
}

/// A detection verdict that admits failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Detection ran; the result's `resilience` field reports how degraded
    /// the execution was.
    Scored(DetectionResult),
    /// No model produced a usable score for any sentence. The system
    /// explicitly declines to answer rather than fabricating a score.
    Abstain(ResilienceTelemetry),
}

impl Verdict {
    /// The response-level score, if one was produced.
    pub fn score(&self) -> Option<f64> {
        match self {
            Self::Scored(r) => Some(r.score),
            Self::Abstain(_) => None,
        }
    }

    /// Whether the detector abstained.
    pub fn is_abstain(&self) -> bool {
        matches!(self, Self::Abstain(_))
    }

    /// Execution telemetry (present on both variants).
    pub fn telemetry(&self) -> Option<&ResilienceTelemetry> {
        match self {
            Self::Scored(r) => r.resilience.as_ref(),
            Self::Abstain(t) => Some(t),
        }
    }

    /// The full result, if one was produced.
    pub fn into_result(self) -> Option<DetectionResult> {
        match self {
            Self::Scored(r) => Some(r),
            Self::Abstain(_) => None,
        }
    }
}

/// The fault-tolerant detector: Splitter → M fallible SLMs → Checker, with
/// retries, deadlines, circuit breakers, quarantine, and graceful ensemble
/// degradation.
pub struct ResilientDetector {
    verifiers: Vec<Box<dyn FallibleVerifier>>,
    /// Configuration (same axes as the plain detector).
    pub config: DetectorConfig,
    /// Retry/deadline policy applied to every verification call.
    pub policy: RetryPolicy,
    normalizer: ModelNormalizer,
    breakers: Mutex<Vec<CircuitBreaker>>,
    cache: Option<Arc<VerificationCache>>,
    obs: Obs,
    metrics: DetectorMetrics,
}

impl ResilientDetector {
    /// Build a resilient detector over fallible verifiers with default
    /// retry and breaker policies.
    pub fn try_new(
        verifiers: Vec<Box<dyn FallibleVerifier>>,
        config: DetectorConfig,
    ) -> Result<Self, DetectorError> {
        Self::with_policies(
            verifiers,
            config,
            RetryPolicy::default(),
            BreakerConfig::default(),
        )
    }

    /// Build with explicit retry and breaker tuning.
    pub fn with_policies(
        verifiers: Vec<Box<dyn FallibleVerifier>>,
        config: DetectorConfig,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> Result<Self, DetectorError> {
        if verifiers.is_empty() {
            return Err(DetectorError::NoVerifiers);
        }
        let normalizer = ModelNormalizer::new(verifiers.len());
        let breakers = Mutex::new(
            verifiers
                .iter()
                .map(|_| CircuitBreaker::new(breaker.clone()))
                .collect(),
        );
        Ok(Self {
            verifiers,
            config,
            policy,
            normalizer,
            breakers,
            cache: None,
            obs: Obs::off(),
            metrics: DetectorMetrics::default(),
        })
    }

    /// Attach a verification cache shared with other detectors or the
    /// serving layer. Under the episode-purity contract the cache only saves
    /// wall-clock work — every score, verdict, and telemetry field stays
    /// bitwise-identical to the uncached run (the golden parity suite
    /// asserts this).
    pub fn set_cache(&mut self, cache: Arc<VerificationCache>) {
        self.cache = Some(cache);
    }

    /// Builder-style [`ResilientDetector::set_cache`].
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<VerificationCache>) -> Self {
        self.set_cache(cache);
        self
    }

    /// The attached verification cache, if any.
    pub fn cache(&self) -> Option<&Arc<VerificationCache>> {
        self.cache.as_ref()
    }

    /// Attach an observability sink: per-call telemetry (the
    /// [`ResilienceTelemetry`] facade is unchanged) is additionally flushed
    /// into registry counters, phase 2 records spans, and the decision
    /// trail — per-cell scores, z-inputs, breaker trips, the verdict — goes
    /// to the in-flight flight record. Instrumentation is strictly
    /// observational: scores and verdicts are bitwise-identical with or
    /// without it.
    pub fn set_obs(&mut self, obs: &Obs) {
        let names: Vec<&str> = self.verifiers.iter().map(|v| v.name()).collect();
        self.metrics = DetectorMetrics::register(obs, &names);
        self.obs = obs.clone();
    }

    /// Builder-style [`ResilientDetector::set_obs`].
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// Wrap infallible verifiers in [`Reliable`] adapters — the zero-fault
    /// configuration, which reproduces the plain detector's scores exactly.
    pub fn reliable(
        verifiers: Vec<Box<dyn YesNoVerifier>>,
        config: DetectorConfig,
    ) -> Result<Self, DetectorError> {
        let fallible: Vec<Box<dyn FallibleVerifier>> = verifiers
            .into_iter()
            .map(|v| Box::new(Reliable::new(v)) as Box<dyn FallibleVerifier>)
            .collect();
        Self::try_new(fallible, config)
    }

    /// Model names, in slot order.
    pub fn model_names(&self) -> Vec<&str> {
        self.verifiers.iter().map(|v| v.name()).collect()
    }

    /// Number of ensembled models M.
    pub fn num_models(&self) -> usize {
        self.verifiers.len()
    }

    /// Access the fitted normalizer.
    pub fn normalizer(&self) -> &ModelNormalizer {
        &self.normalizer
    }

    /// Restore previously persisted calibration statistics.
    pub fn try_set_normalizer(&mut self, normalizer: ModelNormalizer) -> Result<(), DetectorError> {
        if normalizer.num_models() != self.verifiers.len() {
            return Err(DetectorError::ModelCountMismatch {
                expected: self.verifiers.len(),
                got: normalizer.num_models(),
            });
        }
        self.normalizer = normalizer;
        Ok(())
    }

    /// Per-model breaker health, in slot order.
    pub fn health(&self) -> Vec<ModelHealth> {
        self.lock_breakers().iter().map(|b| b.health()).collect()
    }

    /// Breaker state survives a panicked holder: the counters inside stay
    /// consistent (every mutation is a single-field update), so poisoning
    /// is recovered rather than propagated as a panic.
    fn lock_breakers(&self) -> MutexGuard<'_, Vec<CircuitBreaker>> {
        self.breakers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Split per the active config; no-split mode scores the response as one
    /// unit (even when empty, matching the plain detector's convention).
    fn split(&self, response: &str) -> Vec<String> {
        if self.config.split {
            SentenceSplitter::new()
                .split(response)
                .into_iter()
                .map(|s| s.text.to_string())
                .collect()
        } else {
            vec![response.to_string()]
        }
    }

    /// Feed one triple into the Eq. 4 statistics. Only valid probabilities
    /// are observed — a faulty model cannot poison calibration. Breaker state
    /// is not consulted or updated here (calibration is a warm-up activity).
    pub fn calibrate(&mut self, question: &str, context: &str, response: &str) {
        for sentence in self.split(response) {
            let req = VerificationRequest::new(question, context, &sentence);
            for (m, v) in self.verifiers.iter().enumerate() {
                let key = call_key(&[v.name(), question, context, &sentence]);
                let cell =
                    probe_cell_cached(self.cache.as_deref(), v.as_ref(), &self.policy, &req, key);
                match cell.score {
                    Some(p) if valid_probability(p) => self.normalizer.observe(m, p),
                    _ => {}
                }
            }
        }
    }

    /// Calibrate on a batch of triples through the batch engine: every
    /// (item, sentence, model) cell is probed (in parallel when
    /// `config.parallel`, warming the cache when one is attached), then each
    /// model's valid probabilities are folded into the Eq. 4 statistics in
    /// **submission order** — item-major, sentence within item — restored
    /// explicitly via [`ModelNormalizer::observe_completions`]. The running
    /// mean/variance fold is order-sensitive in floating point, so this
    /// restoration is what makes the result bitwise-identical to calling
    /// [`ResilientDetector::calibrate`] on each item in turn.
    pub fn calibrate_batch(&mut self, items: &[(&str, &str, &str)]) -> BatchReport {
        let split: Vec<Vec<String>> = items.iter().map(|(_, _, r)| self.split(r)).collect();
        let mut jobs: Vec<BatchJob<'_>> = Vec::new();
        for ((q, c, _), sentences) in items.iter().zip(&split) {
            for sentence in sentences {
                for mi in 0..self.verifiers.len() {
                    jobs.push(BatchJob::new(mi, VerificationRequest::new(q, c, sentence)));
                }
            }
        }
        let (outcomes, report) = self
            .engine(jobs.len())
            .run(&jobs, |job| self.probe_job(job));
        let m = self.verifiers.len();
        let mut per_model: Vec<Vec<(u64, f64)>> = vec![Vec::new(); m];
        for (i, cell) in outcomes.iter().enumerate() {
            if let Some(p) = cell.score {
                if valid_probability(p) {
                    // i / m is the flattened (item, sentence) cell ordinal —
                    // the submission index the fold must respect.
                    per_model[jobs[i].model].push(((i / m) as u64, p));
                }
            }
        }
        for (mi, completions) in per_model.iter_mut().enumerate() {
            self.normalizer.observe_completions(mi, completions);
        }
        report
    }

    /// Combine one sentence's surviving `(model, score)` pairs per the active
    /// config. With every model surviving this performs the identical
    /// floating-point operations as the plain detector's combine step.
    fn combine(&self, survivors: &[(usize, f64)]) -> f64 {
        if !self.config.normalize {
            return survivors.iter().map(|&(_, s)| s).sum::<f64>() / survivors.len() as f64;
        }
        if let Some(margin) = self.config.gate_margin {
            // the gate can only speak for model 0; if that model is among the
            // fallen, every survivor votes
            if let Some(&(0, s0)) = survivors.first() {
                let z0 = self.normalizer.normalize(0, s0);
                if z0.abs() >= margin || survivors.len() == 1 {
                    return squash(z0);
                }
            }
        }
        squash(combine_surviving(&self.normalizer, survivors))
    }

    /// Evaluate one batch job: the cached retry loop for its cell.
    fn probe_job(&self, job: &BatchJob<'_>) -> ProbeOutcome {
        let v = &self.verifiers[job.model];
        let key = call_key(&[
            v.name(),
            job.request.question,
            job.request.context,
            job.request.response,
        ]);
        probe_cell_cached(
            self.cache.as_deref(),
            v.as_ref(),
            &self.policy,
            &job.request,
            key,
        )
    }

    /// Pick an engine for `jobs` pending cells: continuous-batching or
    /// work-partitioned parallel when the config asks for it, inline
    /// otherwise. Worker count and queue discipline shape wall-clock only —
    /// the engine's ordered merge plus episode purity keep outputs
    /// bitwise-identical in all three modes.
    fn engine(&self, jobs: usize) -> BatchEngine {
        if self.config.parallel && jobs > 1 {
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            if self.config.continuous {
                BatchEngine::continuous_batching(workers.min(jobs))
            } else {
                BatchEngine::parallel(workers.min(jobs))
            }
        } else {
            BatchEngine::sequential()
        }
    }

    /// Probe all (sentence, model) cells — phase 1, on the batch engine.
    /// Jobs are submitted sentence-major so the flat result reshapes into
    /// per-sentence rows; duplicate sentences coalesce to one evaluation.
    fn probe_all(
        &self,
        question: &str,
        context: &str,
        sentences: &[String],
    ) -> Vec<Vec<ProbeOutcome>> {
        let m = self.verifiers.len();
        let jobs: Vec<BatchJob<'_>> = sentences
            .iter()
            .flat_map(|sentence| {
                (0..m).map(move |mi| {
                    BatchJob::new(mi, VerificationRequest::new(question, context, sentence))
                })
            })
            .collect();
        let (flat, _report) = self
            .engine(jobs.len())
            .run(&jobs, |job| self.probe_job(job));
        flat.chunks(m).map(<[ProbeOutcome]>::to_vec).collect()
    }

    /// Warm the attached cache with every (item, sentence, model) cell of a
    /// batch of triples, coalescing duplicates across items. No-op without a
    /// cache (the probes would be discarded). Never touches breakers, the
    /// normalizer, or telemetry — prefetching is pure speculation, so a
    /// subsequent [`ResilientDetector::score`] sequence is bitwise-identical
    /// to one that never prefetched.
    pub fn prefetch(&self, items: &[(&str, &str, &str)]) -> BatchReport {
        if self.cache.is_none() {
            return BatchReport::default();
        }
        let split: Vec<Vec<String>> = items.iter().map(|(_, _, r)| self.split(r)).collect();
        let mut jobs: Vec<BatchJob<'_>> = Vec::new();
        for ((q, c, _), sentences) in items.iter().zip(&split) {
            for sentence in sentences {
                for mi in 0..self.verifiers.len() {
                    jobs.push(BatchJob::new(mi, VerificationRequest::new(q, c, sentence)));
                }
            }
        }
        let (_, report) = self
            .engine(jobs.len())
            .run(&jobs, |job| self.probe_job(job));
        report
    }

    /// Score a response through the full resilience policy.
    pub fn score(&self, question: &str, context: &str, response: &str) -> Verdict {
        self.score_within(question, context, response, f64::INFINITY)
    }

    /// Deadline-aware scoring: like [`ResilientDetector::score`], but the
    /// whole call carries a simulated-time budget. Sentences are scored in
    /// response order until the accumulated charged cost reaches
    /// `budget_ms`; the rest are *deadline skips* — dropped without being
    /// attempted (no breaker updates, no charged time), reported in
    /// [`ResilienceTelemetry::deadline_skips`]. A request that can score
    /// only some sentences degrades to `Partial`; one that can score none
    /// degrades to [`Verdict::Abstain`] — it never blows the budget and
    /// never fabricates a score.
    ///
    /// `budget_ms = f64::INFINITY` is exactly `score` (bitwise-identical);
    /// `budget_ms <= 0` abstains immediately on any non-empty response.
    pub fn score_within(
        &self,
        question: &str,
        context: &str,
        response: &str,
        budget_ms: f64,
    ) -> Verdict {
        let _span = self.obs.span("detector.score");
        let sentences = self.split(response);
        if sentences.is_empty() {
            // nothing verifiable was said — the plain detector's score-0
            // convention, not a failure of the ensemble
            let tele = self.empty_telemetry();
            self.metrics.flush(&tele);
            self.obs
                .flight("verdict", &[("outcome", "scored_empty".to_string())]);
            return Verdict::Scored(DetectionResult {
                score: 0.0,
                sentences: Vec::new(),
                resilience: Some(tele),
            });
        }

        let cells = {
            let _probe_span = self.obs.span("detector.probe");
            self.probe_all(question, context, &sentences)
        };

        // Phase 2: canonical-order breaker replay + quarantine + combine.
        let m = self.verifiers.len();
        let mut tele = self.empty_telemetry();
        let mut model_contributed = vec![false; m];
        let mut any_cell_lost = false;
        let mut details: Vec<SentenceDetail> = Vec::new();

        let mut breakers = self.lock_breakers();
        let replay_span = self.obs.span("detector.replay");
        let trips_before: Vec<u64> = breakers.iter().map(|b| b.trips()).collect();
        for (si, (sentence, row)) in sentences.iter().zip(&cells).enumerate() {
            if tele.simulated_ms >= budget_ms {
                // Budget exhausted: the remaining sentences are never
                // attempted, exactly as if the caller had hung up — no
                // breaker updates, no charged time.
                tele.deadline_skips += 1;
                tele.sentences_dropped += 1;
                if self.obs.enabled() {
                    self.obs
                        .flight("deadline_skip", &[("sentence", si.to_string())]);
                }
                continue;
            }
            let mut raw = vec![MISSING_SCORE; m];
            let mut survivors: Vec<(usize, f64)> = Vec::new();
            for (mi, cell) in row.iter().enumerate() {
                if !breakers[mi].preflight() {
                    tele.breaker_skips += 1;
                    self.metrics.model(mi).breaker_skip.inc();
                    any_cell_lost = true;
                    if self.obs.enabled() {
                        self.obs.flight(
                            "breaker_skip",
                            &[
                                ("sentence", si.to_string()),
                                ("model", self.verifiers[mi].name().to_string()),
                            ],
                        );
                    }
                    continue;
                }
                tele.attempts += cell.attempts;
                tele.retries += cell.retries;
                tele.timeouts += cell.timeouts;
                tele.simulated_ms += cell.simulated_ms;
                match cell.score {
                    Some(p) if valid_probability(p) => {
                        breakers[mi].record_success();
                        self.metrics.model(mi).ok.inc();
                        raw[mi] = p;
                        survivors.push((mi, p));
                        model_contributed[mi] = true;
                        if self.obs.enabled() {
                            // z is the Eq. 4 input the combine step will
                            // see — a pure read of the fitted normalizer
                            self.obs.flight(
                                "cell_score",
                                &[
                                    ("sentence", si.to_string()),
                                    ("model", self.verifiers[mi].name().to_string()),
                                    ("raw", p.to_string()),
                                    ("z", self.normalizer.normalize(mi, p).to_string()),
                                    ("attempts", cell.attempts.to_string()),
                                ],
                            );
                        }
                    }
                    Some(garbage) => {
                        tele.quarantined += 1;
                        breakers[mi].record_failure();
                        self.metrics.model(mi).quarantined.inc();
                        any_cell_lost = true;
                        if self.obs.enabled() {
                            self.obs.flight(
                                "cell_quarantined",
                                &[
                                    ("sentence", si.to_string()),
                                    ("model", self.verifiers[mi].name().to_string()),
                                    ("raw", garbage.to_string()),
                                ],
                            );
                        }
                    }
                    None => {
                        breakers[mi].record_failure();
                        self.metrics.model(mi).failed.inc();
                        any_cell_lost = true;
                        if self.obs.enabled() {
                            self.obs.flight(
                                "cell_failed",
                                &[
                                    ("sentence", si.to_string()),
                                    ("model", self.verifiers[mi].name().to_string()),
                                    ("attempts", cell.attempts.to_string()),
                                ],
                            );
                        }
                    }
                }
            }
            if survivors.is_empty() {
                tele.sentences_dropped += 1;
                if self.obs.enabled() {
                    self.obs
                        .flight("sentence_dropped", &[("sentence", si.to_string())]);
                }
            } else {
                let combined = self.combine(&survivors);
                if self.obs.enabled() {
                    self.obs.flight(
                        "sentence_scored",
                        &[
                            ("sentence", si.to_string()),
                            ("combined", combined.to_string()),
                            ("survivors", survivors.len().to_string()),
                        ],
                    );
                }
                details.push(SentenceDetail {
                    sentence: sentence.clone(),
                    raw,
                    combined,
                });
            }
        }
        for (mi, breaker) in breakers.iter().enumerate() {
            let delta = breaker.trips() - trips_before[mi];
            tele.breaker_trips += delta;
            if delta > 0 {
                self.metrics.model(mi).breaker_trips.add(delta);
                if self.obs.enabled() {
                    self.obs.flight(
                        "breaker_trip",
                        &[
                            ("model", self.verifiers[mi].name().to_string()),
                            ("trips", delta.to_string()),
                        ],
                    );
                }
            }
        }
        drop(replay_span);
        drop(breakers);

        for (mi, v) in self.verifiers.iter().enumerate() {
            if model_contributed[mi] {
                tele.models_consulted.push(v.name().to_string());
            } else {
                tele.models_failed.push(v.name().to_string());
            }
        }

        if details.is_empty() {
            tele.degradation = DegradationLevel::Abstained;
            self.metrics.flush(&tele);
            if self.obs.enabled() {
                self.obs.flight(
                    "verdict",
                    &[
                        ("outcome", "abstain".to_string()),
                        ("degradation", tele.degradation.to_string()),
                        ("simulated_ms", tele.simulated_ms.to_string()),
                    ],
                );
            }
            return Verdict::Abstain(tele);
        }
        tele.degradation = if tele.sentences_dropped > 0 {
            DegradationLevel::Partial
        } else if any_cell_lost {
            DegradationLevel::Degraded
        } else {
            DegradationLevel::Full
        };
        let scores: Vec<f64> = details.iter().map(|s| s.combined).collect();
        let score = self.config.mean.aggregate(&scores);
        self.metrics.flush(&tele);
        if self.obs.enabled() {
            self.obs.flight(
                "verdict",
                &[
                    ("outcome", "scored".to_string()),
                    ("score", score.to_string()),
                    ("degradation", tele.degradation.to_string()),
                    ("simulated_ms", tele.simulated_ms.to_string()),
                ],
            );
        }
        Verdict::Scored(DetectionResult {
            score,
            sentences: details,
            resilience: Some(tele),
        })
    }

    /// Score a batch, in input order.
    ///
    /// Unlike the plain detector, batch items are processed sequentially:
    /// breaker state evolves across calls, so item order is semantic.
    /// Within-item sentence scoring still parallelizes via
    /// `config.parallel`.
    pub fn score_batch(&self, items: &[(&str, &str, &str)]) -> Vec<Verdict> {
        items.iter().map(|(q, c, r)| self.score(q, c, r)).collect()
    }

    /// Batch-aware scoring: [`ResilientDetector::prefetch`] all cells
    /// through the batch engine (when a cache is attached), then score each
    /// item in input order.
    ///
    /// Bitwise-identical to [`ResilientDetector::score_batch`]: prefetching
    /// only warms the cache, and cache hits replay exactly what a
    /// recomputation would produce, so breaker replay, z-score state, and
    /// every verdict are unchanged — the batched path merely pays the
    /// expensive probe evaluations once, in parallel.
    pub fn score_all(&self, items: &[(&str, &str, &str)]) -> Vec<Verdict> {
        self.prefetch(items);
        self.score_batch(items)
    }

    fn empty_telemetry(&self) -> ResilienceTelemetry {
        ResilienceTelemetry::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::HallucinationDetector;
    use crate::resilience::BreakerState;
    use slm_runtime::faults::{FaultInjector, FaultProfile};
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop.";
    const Q: &str = "What are the working hours?";
    const CORRECT: &str =
        "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.";
    const PARTIAL: &str =
        "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.";
    const WRONG: &str = "The working hours are 9 AM to 9 PM. You do not need to work on weekends.";
    const CAL: [&str; 5] = [
        CORRECT,
        PARTIAL,
        WRONG,
        "The store is large.",
        "Staff wear uniforms.",
    ];

    fn plain(config: DetectorConfig) -> HallucinationDetector {
        let mut d = HallucinationDetector::new(
            vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())],
            config,
        );
        for r in CAL {
            d.calibrate(Q, CTX, r);
        }
        d
    }

    fn faulty(config: DetectorConfig, profiles: [FaultProfile; 2]) -> ResilientDetector {
        let [p0, p1] = profiles;
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
            Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
        ];
        let mut d = ResilientDetector::try_new(verifiers, config).unwrap();
        for r in CAL {
            d.calibrate(Q, CTX, r);
        }
        d
    }

    fn resilient(config: DetectorConfig) -> ResilientDetector {
        faulty(config, [FaultProfile::none(11), FaultProfile::none(12)])
    }

    #[test]
    fn zero_faults_reproduces_plain_scores_bitwise() {
        for config in [
            DetectorConfig::default(),
            DetectorConfig {
                parallel: true,
                ..Default::default()
            },
            DetectorConfig {
                normalize: false,
                ..Default::default()
            },
            DetectorConfig {
                split: false,
                ..Default::default()
            },
            DetectorConfig {
                gate_margin: Some(0.5),
                ..Default::default()
            },
        ] {
            let p = plain(config.clone());
            let r = resilient(config.clone());
            for resp in [CORRECT, PARTIAL, WRONG, ""] {
                let want = p.score(Q, CTX, resp);
                let got = r
                    .score(Q, CTX, resp)
                    .into_result()
                    .expect("no abstain at 0 faults");
                assert_eq!(
                    want.score.to_bits(),
                    got.score.to_bits(),
                    "{config:?} / {resp:?}"
                );
                assert_eq!(want.sentences.len(), got.sentences.len());
                for (a, b) in want.sentences.iter().zip(&got.sentences) {
                    assert_eq!(a.sentence, b.sentence);
                    assert_eq!(a.raw, b.raw);
                    assert_eq!(a.combined.to_bits(), b.combined.to_bits());
                }
            }
        }
    }

    #[test]
    fn zero_faults_reports_full_degradation_and_all_models() {
        let r = resilient(DetectorConfig::default());
        let v = r.score(Q, CTX, PARTIAL);
        let t = v.telemetry().unwrap();
        assert_eq!(t.degradation, DegradationLevel::Full);
        assert_eq!(t.models_consulted, ["qwen2-1.5b-sim", "minicpm-2b-sim"]);
        assert!(t.models_failed.is_empty());
        assert_eq!(t.retries + t.timeouts + t.quarantined + t.breaker_skips, 0);
        assert_eq!(t.attempts, 4, "2 sentences x 2 models, one attempt each");
        assert!(t.simulated_ms > 0.0);
    }

    #[test]
    fn one_model_down_degrades_to_surviving_model() {
        let r = faulty(
            DetectorConfig::default(),
            [FaultProfile::none(11), FaultProfile::down(12)],
        );
        let v = r.score(Q, CTX, PARTIAL);
        let result = v
            .clone()
            .into_result()
            .expect("one live model must still score");
        let t = v.telemetry().unwrap();
        assert_eq!(t.models_consulted, ["qwen2-1.5b-sim"]);
        assert_eq!(t.models_failed, ["minicpm-2b-sim"]);
        assert_eq!(t.degradation, DegradationLevel::Degraded);
        // the dead model's slots carry the sentinel, the live model's are real
        for s in &result.sentences {
            assert!(valid_probability(s.raw[0]));
            assert_eq!(s.raw[1], MISSING_SCORE);
        }
        // and the verdict equals what a single-model plain detector (same
        // calibration data) would say
        let mut single = HallucinationDetector::new(
            vec![Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>],
            DetectorConfig::default(),
        );
        for resp in CAL {
            single.calibrate(Q, CTX, resp);
        }
        assert_eq!(
            result.score.to_bits(),
            single.score(Q, CTX, PARTIAL).score.to_bits()
        );
    }

    #[test]
    fn all_models_down_abstains_never_fabricates() {
        let r = faulty(
            DetectorConfig::default(),
            [FaultProfile::down(11), FaultProfile::down(12)],
        );
        let v = r.score(Q, CTX, PARTIAL);
        assert!(v.is_abstain());
        assert_eq!(v.score(), None);
        let t = v.telemetry().unwrap();
        assert_eq!(t.degradation, DegradationLevel::Abstained);
        assert_eq!(t.models_consulted, Vec::<String>::new());
        assert_eq!(t.sentences_dropped, 2);
    }

    #[test]
    fn outages_trip_the_breaker_and_later_calls_are_skipped() {
        let r = faulty(
            DetectorConfig::default(),
            [FaultProfile::none(11), FaultProfile::down(12)],
        );
        // default breaker trips after 4 consecutive failures; 2 sentences per
        // call = 2 failures per response for the dead model
        let mut trips = 0;
        let mut skips = 0;
        for _ in 0..4 {
            let v = r.score(Q, CTX, PARTIAL);
            let t = v.telemetry().unwrap();
            trips += t.breaker_trips;
            skips += t.breaker_skips;
        }
        assert!(trips >= 1, "dead model must trip its breaker");
        assert!(skips >= 1, "open breaker must skip calls");
        let health = r.health();
        assert_eq!(health[0].state, BreakerState::Closed);
        assert!(health[0].failures == 0);
        assert!(health[1].failures > 0);
    }

    #[test]
    fn transient_faults_are_retried_and_scores_survive() {
        let r = faulty(
            DetectorConfig::default(),
            [
                FaultProfile {
                    transient_rate: 0.5,
                    ..FaultProfile::none(7)
                },
                FaultProfile::none(12),
            ],
        );
        let mut retries = 0;
        let mut scored = 0;
        for resp in [CORRECT, PARTIAL, WRONG] {
            let v = r.score(Q, CTX, resp);
            if let Some(t) = v.telemetry() {
                retries += t.retries;
            }
            if !v.is_abstain() {
                scored += 1;
            }
        }
        assert!(retries > 0, "50% transient rate must cause retries");
        assert_eq!(scored, 3, "retries should rescue transient failures");
    }

    #[test]
    fn garbage_scores_are_quarantined() {
        let r = faulty(
            DetectorConfig::default(),
            [
                FaultProfile {
                    garbage_rate: 1.0,
                    ..FaultProfile::none(7)
                },
                FaultProfile::none(12),
            ],
        );
        let v = r.score(Q, CTX, PARTIAL);
        let t = v.telemetry().unwrap();
        assert!(t.quarantined > 0);
        // every surviving raw score is a valid probability or the sentinel
        if let Verdict::Scored(result) = &v {
            for s in &result.sentences {
                for &p in &s.raw {
                    assert!(p == MISSING_SCORE || valid_probability(p), "{p}");
                }
            }
        }
    }

    #[test]
    fn stalled_calls_time_out() {
        let r = faulty(
            DetectorConfig::default(),
            [
                FaultProfile {
                    stall_rate: 1.0,
                    ..FaultProfile::none(7)
                },
                FaultProfile::none(12),
            ],
        );
        let v = r.score(Q, CTX, PARTIAL);
        let t = v.telemetry().unwrap();
        assert!(t.timeouts > 0, "a 40x stall must blow the 120ms deadline");
        // model 1 still carries the verdict
        assert!(!v.is_abstain());
    }

    #[test]
    fn parallel_matches_sequential_under_faults() {
        let profiles = || {
            [
                FaultProfile::uniform(31, 0.3),
                FaultProfile {
                    transient_rate: 0.2,
                    ..FaultProfile::none(32)
                },
            ]
        };
        let seq = faulty(DetectorConfig::default(), profiles());
        let par = faulty(
            DetectorConfig {
                parallel: true,
                ..Default::default()
            },
            profiles(),
        );
        for resp in [CORRECT, PARTIAL, WRONG] {
            assert_eq!(seq.score(Q, CTX, resp), par.score(Q, CTX, resp), "{resp:?}");
        }
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let build = || {
            faulty(
                DetectorConfig::default(),
                [FaultProfile::uniform(5, 0.4), FaultProfile::uniform(6, 0.4)],
            )
        };
        let a = build();
        let b = build();
        for resp in [CORRECT, PARTIAL, WRONG] {
            assert_eq!(a.score(Q, CTX, resp), b.score(Q, CTX, resp));
        }
    }

    #[test]
    fn infinite_budget_is_bitwise_identical_to_score() {
        let a = resilient(DetectorConfig::default());
        let b = resilient(DetectorConfig::default());
        for resp in [CORRECT, PARTIAL, WRONG, ""] {
            assert_eq!(
                a.score(Q, CTX, resp),
                b.score_within(Q, CTX, resp, f64::INFINITY),
                "{resp:?}"
            );
        }
    }

    #[test]
    fn zero_budget_abstains_with_deadline_skips() {
        let r = resilient(DetectorConfig::default());
        let v = r.score_within(Q, CTX, PARTIAL, 0.0);
        assert!(v.is_abstain(), "no budget, no fabricated score");
        let t = v.telemetry().unwrap();
        assert_eq!(t.deadline_skips, 2, "both sentences skipped");
        assert_eq!(t.sentences_dropped, 2);
        assert_eq!(t.attempts, 0, "nothing was attempted");
        assert_eq!(t.simulated_ms, 0.0, "nothing was charged");
        assert_eq!(t.degradation, DegradationLevel::Abstained);
    }

    #[test]
    fn tight_budget_scores_a_prefix_and_degrades_partially() {
        // A positive-but-negligible budget admits the first sentence (cost
        // accrues only after an attempt) and expires before the second, so
        // the verdict is a deterministic one-sentence prefix.
        let r = resilient(DetectorConfig::default());
        let v = r.score_within(Q, CTX, PARTIAL, 0.001);
        let t = v.telemetry().unwrap().clone();
        let result = v.into_result().expect("prefix must be scored");
        assert_eq!(result.sentences.len(), 1, "only the first sentence fits");
        assert_eq!(t.deadline_skips, 1);
        assert_eq!(t.degradation, DegradationLevel::Partial);
    }

    #[test]
    fn deadline_scoring_is_deterministic() {
        let run = || {
            let r = faulty(
                DetectorConfig::default(),
                [FaultProfile::uniform(5, 0.3), FaultProfile::uniform(6, 0.3)],
            );
            [40.0, 80.0, 200.0].map(|budget| r.score_within(Q, CTX, PARTIAL, budget))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn breakers_are_untouched_by_deadline_skips() {
        let r = faulty(
            DetectorConfig::default(),
            [FaultProfile::none(11), FaultProfile::down(12)],
        );
        let before = r.health();
        let v = r.score_within(Q, CTX, PARTIAL, 0.0);
        assert!(v.is_abstain());
        assert_eq!(
            r.health(),
            before,
            "skipped sentences must not feed breaker state"
        );
    }

    #[test]
    fn batch_processes_in_order() {
        let r = resilient(DetectorConfig::default());
        let out = r.score_batch(&[(Q, CTX, CORRECT), (Q, CTX, WRONG)]);
        assert_eq!(out.len(), 2);
        assert!(out[0].score().unwrap() > out[1].score().unwrap());
    }

    #[test]
    fn cached_scoring_is_bitwise_identical_under_faults() {
        use slm_runtime::cache::{CacheConfig, VerificationCache};
        let profiles = || {
            [
                FaultProfile::uniform(31, 0.3),
                FaultProfile::uniform(32, 0.2),
            ]
        };
        let plain = faulty(DetectorConfig::default(), profiles());
        let mut cached = faulty(DetectorConfig::default(), profiles());
        let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
        cached.set_cache(Arc::clone(&cache));
        // Score the same responses repeatedly: the second pass is served
        // from cache yet must reproduce every bit, including telemetry.
        for _ in 0..2 {
            for resp in [CORRECT, PARTIAL, WRONG] {
                assert_eq!(
                    plain.score(Q, CTX, resp),
                    cached.score(Q, CTX, resp),
                    "{resp:?}"
                );
            }
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "second pass must hit the cache");
    }

    #[test]
    fn score_all_matches_score_batch_bitwise() {
        use slm_runtime::cache::{CacheConfig, VerificationCache};
        let profiles = || [FaultProfile::uniform(41, 0.3), FaultProfile::none(42)];
        let items: Vec<(&str, &str, &str)> = vec![
            (Q, CTX, CORRECT),
            (Q, CTX, WRONG),
            (Q, CTX, CORRECT), // duplicate item: coalesced by the cache
            (Q, CTX, PARTIAL),
        ];
        let sequential = faulty(DetectorConfig::default(), profiles());
        let mut batched = faulty(
            DetectorConfig {
                parallel: true,
                ..Default::default()
            },
            profiles(),
        );
        let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
        batched.set_cache(Arc::clone(&cache));
        assert_eq!(sequential.score_batch(&items), batched.score_all(&items));
        assert!(cache.stats().hits > 0, "duplicate items must coalesce");
    }

    #[test]
    fn calibrate_batch_matches_sequential_calibration_bitwise() {
        let profiles = || {
            [
                FaultProfile::uniform(51, 0.25),
                FaultProfile::uniform(52, 0.25),
            ]
        };
        let build = || {
            let [p0, p1] = profiles();
            let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
                Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
                Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
            ];
            ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap()
        };
        let mut sequential = build();
        for r in CAL {
            sequential.calibrate(Q, CTX, r);
        }
        let mut batched = build();
        batched.config.parallel = true;
        let items: Vec<(&str, &str, &str)> = CAL.iter().map(|&r| (Q, CTX, r)).collect();
        let report = batched.calibrate_batch(&items);
        assert_eq!(
            batched.normalizer(),
            sequential.normalizer(),
            "z-score state must match bitwise"
        );
        assert!(
            report.jobs >= CAL.len() * 2,
            "at least one sentence x 2 models per item"
        );
        // Identical verdicts afterwards.
        for resp in [CORRECT, PARTIAL, WRONG] {
            assert_eq!(sequential.score(Q, CTX, resp), batched.score(Q, CTX, resp));
        }
    }

    #[test]
    fn prefetch_never_touches_breakers_or_normalizer() {
        use slm_runtime::cache::{CacheConfig, VerificationCache};
        let mut r = faulty(
            DetectorConfig::default(),
            [FaultProfile::uniform(61, 0.4), FaultProfile::down(62)],
        );
        r.set_cache(Arc::new(VerificationCache::new(CacheConfig::default())));
        let health_before = r.health();
        let normalizer_before = r.normalizer().clone();
        let report = r.prefetch(&[(Q, CTX, CORRECT), (Q, CTX, PARTIAL)]);
        assert!(report.jobs > 0);
        assert_eq!(r.health(), health_before);
        assert_eq!(r.normalizer(), &normalizer_before);
    }

    #[test]
    fn empty_verifier_set_is_rejected() {
        let Err(err) = ResilientDetector::try_new(Vec::new(), DetectorConfig::default()) else {
            panic!("empty verifier set must be rejected")
        };
        assert_eq!(err, DetectorError::NoVerifiers);
    }

    #[test]
    fn instrumentation_is_bitwise_neutral() {
        let profiles = || [FaultProfile::uniform(5, 0.4), FaultProfile::uniform(6, 0.4)];
        let bare = faulty(DetectorConfig::default(), profiles());
        let obs = Obs::new();
        let mut instrumented = faulty(DetectorConfig::default(), profiles());
        instrumented.set_obs(&obs);
        obs.begin_flight("neutrality");
        for resp in [CORRECT, PARTIAL, WRONG, ""] {
            assert_eq!(
                bare.score(Q, CTX, resp),
                instrumented.score(Q, CTX, resp),
                "{resp:?}"
            );
            assert_eq!(
                bare.score_within(Q, CTX, resp, 60.0),
                instrumented.score_within(Q, CTX, resp, 60.0),
                "{resp:?} budgeted"
            );
        }
        obs.end_flight("done");
        assert!(
            !obs.flight_records()[0].events.is_empty(),
            "instrumented run must actually record"
        );
    }

    #[test]
    fn totals_equal_summed_telemetry() {
        use crate::obs::ResilienceTotals;
        let obs = Obs::new();
        let mut r = faulty(
            DetectorConfig::default(),
            [FaultProfile::uniform(5, 0.4), FaultProfile::down(12)],
        );
        r.set_obs(&obs);
        let mut want = ResilienceTotals::default();
        for resp in [CORRECT, PARTIAL, WRONG, CORRECT, WRONG] {
            for budget in [f64::INFINITY, 40.0] {
                let v = r.score_within(Q, CTX, resp, budget);
                let t = v.telemetry().expect("telemetry on both variants");
                want.calls += 1;
                want.attempts += t.attempts;
                want.retries += t.retries;
                want.timeouts += t.timeouts;
                want.quarantined += t.quarantined;
                want.breaker_trips += t.breaker_trips;
                want.breaker_skips += t.breaker_skips;
                want.sentences_dropped += t.sentences_dropped;
                want.deadline_skips += t.deadline_skips;
                want.simulated_ms += (t.simulated_ms * 1000.0).round() / 1000.0;
                let slot = match t.degradation {
                    DegradationLevel::Full => 0,
                    DegradationLevel::Degraded => 1,
                    DegradationLevel::Partial => 2,
                    DegradationLevel::Abstained => 3,
                };
                want.by_degradation[slot] += 1;
            }
        }
        let got = ResilienceTotals::from_snapshot(&obs.metrics_snapshot());
        // simulated_ms goes through µs fixed-point on both sides; compare
        // with that quantization applied
        assert!(
            (got.simulated_ms - want.simulated_ms).abs() < 0.002,
            "{} vs {}",
            got.simulated_ms,
            want.simulated_ms
        );
        want.simulated_ms = 0.0;
        let mut got = got;
        got.simulated_ms = 0.0;
        assert_eq!(got, want, "registry view must equal summed facade structs");
    }

    #[test]
    fn normalizer_transplant_respects_model_count() {
        let mut r = resilient(DetectorConfig::default());
        assert!(r.try_set_normalizer(ModelNormalizer::new(3)).is_err());
        assert!(r.try_set_normalizer(ModelNormalizer::new(2)).is_ok());
    }
}
