//! Sentence-level scoring against a set of verifiers (Eq. 2–3).

use slm_runtime::verifier::{VerificationRequest, YesNoVerifier};
use text_engine::sentence::SentenceSplitter;

/// Raw per-model scores for one split sentence `r_{i,j}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SentenceScores {
    /// The sentence text.
    pub sentence: String,
    /// `s_{i,j}^(m)` for each model m, in verifier order.
    pub per_model: Vec<f64>,
}

/// Split a response and score every sentence with every verifier (Eq. 3).
///
/// When `parallel` is set and there is more than one sentence, sentences are
/// scored on scoped threads — the multi-SLM check is embarrassingly parallel
/// and this is the latency the paper's "efficient" claim rests on.
pub fn score_sentences(
    question: &str,
    context: &str,
    response: &str,
    verifiers: &[Box<dyn YesNoVerifier>],
    parallel: bool,
) -> Vec<SentenceScores> {
    let sentences: Vec<String> = SentenceSplitter::new()
        .split(response)
        .into_iter()
        .map(|s| s.text.to_string())
        .collect();
    score_given_sentences(question, context, &sentences, verifiers, parallel)
}

/// Score pre-split sentences (used by the detector and the no-split baseline).
pub fn score_given_sentences(
    question: &str,
    context: &str,
    sentences: &[String],
    verifiers: &[Box<dyn YesNoVerifier>],
    parallel: bool,
) -> Vec<SentenceScores> {
    let score_one = |sentence: &str| -> Vec<f64> {
        let req = VerificationRequest::new(question, context, sentence);
        verifiers.iter().map(|v| v.p_yes(&req)).collect()
    };

    if parallel && sentences.len() > 1 {
        let mut out: Vec<Option<SentenceScores>> = (0..sentences.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(sentences.len());
            for sentence in sentences {
                handles.push(scope.spawn(move || SentenceScores {
                    sentence: sentence.clone(),
                    per_model: score_one(sentence),
                }));
            }
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("verifier thread panicked"));
            }
        });
        out.into_iter().map(|s| s.expect("all slots filled")).collect()
    } else {
        sentences
            .iter()
            .map(|s| SentenceScores { sentence: s.clone(), per_model: score_one(s) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};

    fn verifiers() -> Vec<Box<dyn YesNoVerifier>> {
        vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())]
    }

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
    const Q: &str = "What are the working hours?";
    const RESP: &str = "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.";

    #[test]
    fn one_entry_per_sentence_and_model() {
        let scores = score_sentences(Q, CTX, RESP, &verifiers(), false);
        assert_eq!(scores.len(), 2);
        for s in &scores {
            assert_eq!(s.per_model.len(), 2);
            assert!(s.per_model.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn correct_sentence_outscores_wrong_one() {
        let scores = score_sentences(Q, CTX, RESP, &verifiers(), false);
        // sentence 0 is correct, sentence 1 has the wrong day range
        let avg = |s: &SentenceScores| s.per_model.iter().sum::<f64>() / s.per_model.len() as f64;
        assert!(avg(&scores[0]) > avg(&scores[1]), "{scores:?}");
    }

    #[test]
    fn parallel_equals_sequential() {
        let seq = score_sentences(Q, CTX, RESP, &verifiers(), false);
        let par = score_sentences(Q, CTX, RESP, &verifiers(), true);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_response_yields_no_scores() {
        assert!(score_sentences(Q, CTX, "", &verifiers(), false).is_empty());
    }

    #[test]
    fn single_sentence_no_split_needed() {
        let scores =
            score_sentences(Q, CTX, "The working hours are 9 AM to 5 PM.", &verifiers(), true);
        assert_eq!(scores.len(), 1);
    }

    #[test]
    fn verifier_order_is_preserved() {
        let vs = verifiers();
        let scores = score_sentences(Q, CTX, "The working hours are 9 AM to 5 PM.", &vs, false);
        // recompute directly per verifier to confirm column order
        let req = slm_runtime::verifier::VerificationRequest::new(
            Q,
            CTX,
            "The working hours are 9 AM to 5 PM.",
        );
        assert_eq!(scores[0].per_model[0], vs[0].p_yes(&req));
        assert_eq!(scores[0].per_model[1], vs[1].p_yes(&req));
    }
}
