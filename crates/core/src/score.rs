//! Sentence-level scoring against a set of verifiers (Eq. 2–3).

use slm_runtime::verifier::{VerificationRequest, YesNoVerifier};
use text_engine::sentence::SentenceSplitter;

/// `true` when `p` is a usable probability: finite and inside `[0, 1]`.
///
/// The resilient executor quarantines scores that fail this check instead of
/// letting them reach the z-statistics (Eq. 4), where a single NaN would
/// poison the running mean forever.
pub fn valid_probability(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

/// Last-resort guard on the infallible scoring path: finite out-of-range
/// values are clamped into `[0, 1]`; non-finite values collapse to the
/// neutral 0.5 (the calibration prior's mean). Valid probabilities pass
/// through bitwise-unchanged, so healthy verifiers are unaffected.
pub fn clamp_probability(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.5
    }
}

/// Raw per-model scores for one split sentence `r_{i,j}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SentenceScores {
    /// The sentence text.
    pub sentence: String,
    /// `s_{i,j}^(m)` for each model m, in verifier order.
    pub per_model: Vec<f64>,
}

/// Split a response and score every sentence with every verifier (Eq. 3).
///
/// When `parallel` is set and there is more than one sentence, sentences are
/// scored on scoped threads — the multi-SLM check is embarrassingly parallel
/// and this is the latency the paper's "efficient" claim rests on.
pub fn score_sentences(
    question: &str,
    context: &str,
    response: &str,
    verifiers: &[Box<dyn YesNoVerifier>],
    parallel: bool,
) -> Vec<SentenceScores> {
    let sentences: Vec<String> = SentenceSplitter::new()
        .split(response)
        .into_iter()
        .map(|s| s.text.to_string())
        .collect();
    score_given_sentences(question, context, &sentences, verifiers, parallel)
}

/// Score pre-split sentences (used by the detector and the no-split baseline).
pub fn score_given_sentences(
    question: &str,
    context: &str,
    sentences: &[String],
    verifiers: &[Box<dyn YesNoVerifier>],
    parallel: bool,
) -> Vec<SentenceScores> {
    let score_one = |sentence: &str| -> Vec<f64> {
        let req = VerificationRequest::new(question, context, sentence);
        verifiers
            .iter()
            .map(|v| clamp_probability(v.p_yes(&req)))
            .collect()
    };

    if parallel && sentences.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = sentences
                .iter()
                .map(|sentence| {
                    scope.spawn(move || SentenceScores {
                        sentence: sentence.clone(),
                        per_model: score_one(sentence),
                    })
                })
                .collect();
            // joining in spawn order keeps results in sentence order; a
            // worker's panic payload is propagated, not replaced
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        })
    } else {
        sentences
            .iter()
            .map(|s| SentenceScores {
                sentence: s.clone(),
                per_model: score_one(s),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};

    fn verifiers() -> Vec<Box<dyn YesNoVerifier>> {
        vec![Box::new(qwen2_sim()), Box::new(minicpm_sim())]
    }

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
    const Q: &str = "What are the working hours?";
    const RESP: &str =
        "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.";

    #[test]
    fn one_entry_per_sentence_and_model() {
        let scores = score_sentences(Q, CTX, RESP, &verifiers(), false);
        assert_eq!(scores.len(), 2);
        for s in &scores {
            assert_eq!(s.per_model.len(), 2);
            assert!(s.per_model.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn correct_sentence_outscores_wrong_one() {
        let scores = score_sentences(Q, CTX, RESP, &verifiers(), false);
        // sentence 0 is correct, sentence 1 has the wrong day range
        let avg = |s: &SentenceScores| s.per_model.iter().sum::<f64>() / s.per_model.len() as f64;
        assert!(avg(&scores[0]) > avg(&scores[1]), "{scores:?}");
    }

    #[test]
    fn parallel_equals_sequential() {
        let seq = score_sentences(Q, CTX, RESP, &verifiers(), false);
        let par = score_sentences(Q, CTX, RESP, &verifiers(), true);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_response_yields_no_scores() {
        assert!(score_sentences(Q, CTX, "", &verifiers(), false).is_empty());
    }

    #[test]
    fn single_sentence_no_split_needed() {
        let scores = score_sentences(
            Q,
            CTX,
            "The working hours are 9 AM to 5 PM.",
            &verifiers(),
            true,
        );
        assert_eq!(scores.len(), 1);
    }

    struct Evil(f64);
    impl YesNoVerifier for Evil {
        fn name(&self) -> &str {
            "evil"
        }
        fn p_yes(&self, _request: &VerificationRequest<'_>) -> f64 {
            self.0
        }
    }

    #[test]
    fn garbage_scores_are_clamped_into_unit_interval() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.25, 1.5] {
            let vs: Vec<Box<dyn YesNoVerifier>> = vec![Box::new(Evil(bad))];
            let scores = score_given_sentences(Q, CTX, &["s.".to_string()], &vs, false);
            let p = scores[0].per_model[0];
            assert!((0.0..=1.0).contains(&p), "{bad} -> {p}");
        }
    }

    #[test]
    fn valid_scores_pass_through_bitwise_unchanged() {
        for good in [0.0, 0.3, 0.999, 1.0] {
            assert_eq!(clamp_probability(good).to_bits(), good.to_bits());
        }
    }

    #[test]
    fn probability_validity_classification() {
        assert!(valid_probability(0.0));
        assert!(valid_probability(1.0));
        assert!(valid_probability(0.42));
        assert!(!valid_probability(f64::NAN));
        assert!(!valid_probability(f64::INFINITY));
        assert!(!valid_probability(-0.01));
        assert!(!valid_probability(1.01));
    }

    #[test]
    fn verifier_order_is_preserved() {
        let vs = verifiers();
        let scores = score_sentences(Q, CTX, "The working hours are 9 AM to 5 PM.", &vs, false);
        // recompute directly per verifier to confirm column order
        let req = slm_runtime::verifier::VerificationRequest::new(
            Q,
            CTX,
            "The working hours are 9 AM to 5 PM.",
        );
        assert_eq!(scores[0].per_model[0], vs[0].p_yes(&req));
        assert_eq!(scores[0].per_model[1], vs[1].p_yes(&req));
    }
}
