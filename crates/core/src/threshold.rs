//! Decision-threshold calibration.
//!
//! The paper sweeps thresholds offline and reports the best operating point;
//! a deployed system needs to *pick* one from a labeled development split
//! and hold it fixed. This module fits a threshold under either objective
//! from §V-D: maximize F1, or maximize precision subject to a recall floor
//! (the "answer only what you are confident about" setting).

/// The objective to calibrate for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximize F1 on the dev split (Fig. 3's criterion).
    MaxF1,
    /// Maximize precision subject to recall ≥ the given floor (Fig. 4's
    /// criterion; the paper uses 0.5).
    PrecisionAtRecall(f64),
}

/// A fitted threshold with its dev-split metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedThreshold {
    /// Predict "correct" when `score >= threshold`.
    pub threshold: f64,
    /// Precision on the dev split at this threshold.
    pub precision: f64,
    /// Recall on the dev split at this threshold.
    pub recall: f64,
    /// F1 on the dev split at this threshold.
    pub f1: f64,
}

fn metrics_at(examples: &[(f64, bool)], threshold: f64) -> (f64, f64, f64) {
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for &(score, positive) in examples {
        match (score >= threshold, positive) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

/// Fit a threshold on labeled (score, is_correct) examples.
///
/// Candidate thresholds are the observed scores (every distinct operating
/// point). Returns `None` on empty input or when the recall constraint is
/// unsatisfiable.
pub fn fit(examples: &[(f64, bool)], objective: Objective) -> Option<FittedThreshold> {
    if examples.is_empty() {
        return None;
    }
    let mut candidates: Vec<f64> = examples.iter().map(|&(s, _)| s).collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup();

    let mut best: Option<FittedThreshold> = None;
    for &t in &candidates {
        let (precision, recall, f1) = metrics_at(examples, t);
        let candidate = FittedThreshold {
            threshold: t,
            precision,
            recall,
            f1,
        };
        let better = match objective {
            Objective::MaxF1 => best.is_none_or(|b| candidate.f1 > b.f1),
            Objective::PrecisionAtRecall(floor) => {
                recall >= floor
                    && best.is_none_or(|b| {
                        candidate.precision > b.precision
                            || (candidate.precision == b.precision && candidate.recall > b.recall)
                    })
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev_split() -> Vec<(f64, bool)> {
        vec![
            (0.92, true),
            (0.85, true),
            (0.81, true),
            (0.65, false),
            (0.62, true),
            (0.45, false),
            (0.30, false),
            (0.12, false),
        ]
    }

    #[test]
    fn max_f1_finds_good_threshold() {
        let fitted = fit(&dev_split(), Objective::MaxF1).unwrap();
        assert!(fitted.f1 >= 0.85, "{fitted:?}");
        // the fitted threshold separates most positives from negatives
        assert!(
            fitted.threshold > 0.45 && fitted.threshold <= 0.81,
            "{fitted:?}"
        );
    }

    #[test]
    fn precision_at_recall_respects_floor() {
        let fitted = fit(&dev_split(), Objective::PrecisionAtRecall(0.5)).unwrap();
        assert!(fitted.recall >= 0.5);
        assert_eq!(fitted.precision, 1.0); // threshold above 0.65 excludes all negatives
    }

    #[test]
    fn unsatisfiable_recall_floor_is_none() {
        let all_negative = [(0.5, false), (0.6, false)];
        assert!(fit(&all_negative, Objective::PrecisionAtRecall(0.5)).is_none());
    }

    #[test]
    fn empty_input_is_none() {
        assert!(fit(&[], Objective::MaxF1).is_none());
    }

    #[test]
    fn perfect_separation_gets_f1_one() {
        let examples = [(0.9, true), (0.8, true), (0.2, false)];
        let fitted = fit(&examples, Objective::MaxF1).unwrap();
        assert_eq!(fitted.f1, 1.0);
    }

    #[test]
    fn agrees_with_eval_sweep() {
        // hallu-core's embedded fitter and eval's sweep must pick the same
        // best F1 (they implement the same criterion).
        let examples = dev_split();
        let here = fit(&examples, Objective::MaxF1).unwrap();
        // local re-implementation of the sweep's bound
        for &(t, _) in &examples {
            let (_, _, f1) = metrics_at(&examples, t);
            assert!(here.f1 >= f1 - 1e-12);
        }
    }

    proptest::proptest! {
        #[test]
        fn fitted_f1_dominates_midpoint_thresholds(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 1..30),
        ) {
            if let Some(fitted) = fit(&examples, Objective::MaxF1) {
                for t in [0.25, 0.5, 0.75] {
                    let (_, _, f1) = metrics_at(&examples, t);
                    proptest::prop_assert!(fitted.f1 >= f1 - 1e-12);
                }
            }
        }
    }
}
