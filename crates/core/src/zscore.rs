//! Per-model score normalization (Eq. 4).
//!
//! Different SLMs have different score scales — "varying means and variances
//! for the same set of data" — so each model's raw `P(yes)` is standardized
//! with statistics accumulated over previous responses before scores are
//! combined across models.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn update(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fallback statistics used before enough calibration data exists: raw
/// `P(yes)` values live in [0, 1], so centering at 0.5 with a 0.2 spread is a
/// sane prior.
const PRIOR_MEAN: f64 = 0.5;
const PRIOR_STD: f64 = 0.2;
/// Observations needed before a model's own statistics are trusted.
const MIN_SAMPLES: u64 = 8;
/// Floor on σ so constant-output models don't explode the z-score.
const MIN_STD: f64 = 1e-3;

/// Per-model normalizer: one [`RunningStats`] per SLM.
///
/// Serializable so a calibrated deployment can persist its statistics and
/// restore them at startup instead of re-warming on live traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelNormalizer {
    stats: Vec<RunningStats>,
}

impl ModelNormalizer {
    /// A normalizer for `num_models` models.
    pub fn new(num_models: usize) -> Self {
        Self {
            stats: vec![RunningStats::new(); num_models],
        }
    }

    /// Number of models tracked.
    pub fn num_models(&self) -> usize {
        self.stats.len()
    }

    /// Record a raw score for model `m` (call during calibration and,
    /// optionally, online as Eq. 4's "previous responses" accumulate).
    ///
    /// Non-finite observations are silently dropped: one NaN fed into the
    /// Welford accumulator would poison the running mean (and every future
    /// z-score) permanently, so a faulty verifier must not be able to wreck
    /// calibration.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn observe(&mut self, m: usize, score: f64) {
        if !score.is_finite() {
            return;
        }
        self.stats[m].update(score);
    }

    /// Fold a batch of completed observations for model `m` into the
    /// statistics **in submission order**.
    ///
    /// The Welford fold is order-sensitive in floating point: folding the
    /// same multiset of scores in a different order yields a mean/m2 that
    /// differ in the low bits, which then shift every future z-score. A
    /// batched executor completes probes in whatever order its workers
    /// finish, so each completion carries the submission index it was issued
    /// under; this method sorts by that index before folding, making the
    /// result bitwise-identical to having observed the scores sequentially.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn observe_completions(&mut self, m: usize, completions: &mut [(u64, f64)]) {
        completions.sort_by_key(|&(submitted, _)| submitted);
        for &(_, score) in completions.iter() {
            self.observe(m, score);
        }
    }

    /// Observations recorded for model `m`.
    pub fn observations(&self, m: usize) -> u64 {
        self.stats[m].count()
    }

    /// Eq. 4: `s̃ = (s − μ_m) / σ_m`, with the prior used until the model has
    /// [`MIN_SAMPLES`] observations.
    ///
    /// A non-finite `score` maps to z = 0 (the neutral verdict) rather than
    /// propagating NaN/∞ through the ensemble average; upstream layers
    /// quarantine such scores, this is defense in depth.
    pub fn normalize(&self, m: usize, score: f64) -> f64 {
        if !score.is_finite() {
            return 0.0;
        }
        let s = &self.stats[m];
        let (mean, std) = if s.count() >= MIN_SAMPLES {
            (s.mean(), s.std_dev().max(MIN_STD))
        } else {
            (PRIOR_MEAN, PRIOR_STD)
        };
        (score - mean) / std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.update(x);
        }
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.variance() - 4.0).abs() < 1e-12);
        assert!((rs.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(rs.count(), 8);
    }

    #[test]
    fn empty_and_singleton_stats() {
        let mut rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        rs.update(3.0);
        assert_eq!(rs.mean(), 3.0);
        assert_eq!(rs.variance(), 0.0);
    }

    #[test]
    fn prior_used_before_enough_samples() {
        let mut n = ModelNormalizer::new(1);
        for _ in 0..4 {
            n.observe(0, 0.9);
        }
        // still below MIN_SAMPLES → prior (0.5, 0.2)
        assert!((n.normalize(0, 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn own_stats_used_after_enough_samples() {
        let mut n = ModelNormalizer::new(1);
        // alternate 0.4/0.6: mean 0.5, std 0.1
        for i in 0..20 {
            n.observe(0, if i % 2 == 0 { 0.4 } else { 0.6 });
        }
        let z = n.normalize(0, 0.6);
        assert!((z - 1.0).abs() < 1e-9, "z={z}");
    }

    #[test]
    fn constant_scores_do_not_divide_by_zero() {
        let mut n = ModelNormalizer::new(1);
        for _ in 0..20 {
            n.observe(0, 0.5);
        }
        let z = n.normalize(0, 0.6);
        assert!(z.is_finite());
        assert!(z > 0.0);
    }

    #[test]
    fn models_are_independent() {
        let mut n = ModelNormalizer::new(2);
        for i in 0..20 {
            n.observe(0, 0.8 + 0.01 * (i % 2) as f64); // high-mean model
            n.observe(1, 0.2 + 0.01 * (i % 2) as f64); // low-mean model
        }
        // The same raw score is above model 1's mean but below model 0's.
        assert!(n.normalize(0, 0.5) < 0.0);
        assert!(n.normalize(1, 0.5) > 0.0);
    }

    #[test]
    fn normalization_is_monotone() {
        let mut n = ModelNormalizer::new(1);
        for i in 0..30 {
            n.observe(0, 0.3 + 0.4 * ((i % 10) as f64 / 10.0));
        }
        assert!(n.normalize(0, 0.9) > n.normalize(0, 0.4));
    }

    #[test]
    fn non_finite_observations_cannot_poison_the_stats() {
        let mut n = ModelNormalizer::new(1);
        for i in 0..20 {
            n.observe(0, if i % 2 == 0 { 0.4 } else { 0.6 });
        }
        let before = n.clone();
        n.observe(0, f64::NAN);
        n.observe(0, f64::INFINITY);
        n.observe(0, f64::NEG_INFINITY);
        assert_eq!(n, before, "non-finite observations must be dropped");
        assert!(n.normalize(0, 0.6).is_finite());
    }

    #[test]
    fn non_finite_scores_normalize_to_neutral() {
        let mut n = ModelNormalizer::new(1);
        for i in 0..20 {
            n.observe(0, 0.3 + 0.02 * (i % 7) as f64);
        }
        assert_eq!(n.normalize(0, f64::NAN), 0.0);
        assert_eq!(n.normalize(0, f64::INFINITY), 0.0);
        assert_eq!(n.normalize(0, f64::NEG_INFINITY), 0.0);
    }

    /// Deterministic scores with enough spread that out-of-order Welford
    /// folds actually differ in the low bits.
    fn completion_scores(n: u64) -> Vec<f64> {
        (0..n)
            .map(|i| 0.05 + 0.9 * ((i * 37 % 101) as f64 / 101.0))
            .collect()
    }

    #[test]
    fn shuffled_completions_restore_submission_order_bitwise() {
        let scores = completion_scores(64);
        let mut sequential = ModelNormalizer::new(1);
        for &s in &scores {
            sequential.observe(0, s);
        }

        // A worker-completion order: deterministic pseudo-shuffle.
        let mut shuffled: Vec<(u64, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, s))
            .collect();
        shuffled.sort_by_key(|&(i, _)| (i * 29) % 64);

        // Regression guard: the naive fold over the shuffled order really is
        // different — this is the bug observe_completions exists to prevent.
        let mut naive = ModelNormalizer::new(1);
        for &(_, s) in &shuffled {
            naive.observe(0, s);
        }
        assert_ne!(
            naive.normalize(0, 0.6).to_bits(),
            sequential.normalize(0, 0.6).to_bits(),
            "shuffle must exercise order sensitivity"
        );

        let mut batched = ModelNormalizer::new(1);
        batched.observe_completions(0, &mut shuffled);
        assert_eq!(batched, sequential, "stats must match bitwise");
        assert_eq!(
            batched.normalize(0, 0.6).to_bits(),
            sequential.normalize(0, 0.6).to_bits()
        );
    }

    proptest::proptest! {
        /// Any completion order folds to the same bits as submission order.
        #[test]
        fn observe_completions_is_order_insensitive(
            perm_seed in 0u64..1000,
            n in 2u64..40,
        ) {
            let scores = completion_scores(n);
            let mut sequential = ModelNormalizer::new(1);
            for &s in &scores {
                sequential.observe(0, s);
            }
            let mut completions: Vec<(u64, f64)> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as u64, s))
                .collect();
            completions.sort_by_key(|&(i, _)| (i.wrapping_mul(perm_seed * 2 + 1)) % n);
            let mut batched = ModelNormalizer::new(1);
            batched.observe_completions(0, &mut completions);
            proptest::prop_assert_eq!(batched, sequential);
        }
    }

    #[test]
    fn normalizer_serde_roundtrip() {
        let mut n = ModelNormalizer::new(2);
        for i in 0..20 {
            n.observe(0, 0.3 + 0.02 * (i % 7) as f64);
            n.observe(1, 0.6 + 0.01 * (i % 5) as f64);
        }
        let json = serde_json::to_string(&n).unwrap();
        let back: ModelNormalizer = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
        assert_eq!(n.normalize(0, 0.4), back.normalize(0, 0.4));
    }

    proptest::proptest! {
        #[test]
        fn welford_never_negative_variance(xs in proptest::collection::vec(-100f64..100.0, 0..50)) {
            let mut rs = RunningStats::new();
            for x in &xs {
                rs.update(*x);
            }
            proptest::prop_assert!(rs.variance() >= -1e-9);
        }

        #[test]
        fn normalize_finite(score in 0f64..1.0, obs in proptest::collection::vec(0f64..1.0, 0..40)) {
            let mut n = ModelNormalizer::new(1);
            for o in &obs {
                n.observe(0, *o);
            }
            proptest::prop_assert!(n.normalize(0, score).is_finite());
        }
    }
}
