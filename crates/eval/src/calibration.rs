//! Probability calibration quality.
//!
//! The detector's `s_i` is used as a score, but operators often read it as
//! "probability the answer is correct". Expected Calibration Error (ECE)
//! and reliability diagrams quantify how honest that reading is — an
//! extension metric beyond the paper's threshold sweeps.

/// One bucket of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the score bin.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Mean predicted score of examples in the bin.
    pub mean_score: f64,
    /// Empirical fraction of positives in the bin.
    pub accuracy: f64,
    /// Number of examples in the bin.
    pub count: usize,
}

/// Build a reliability diagram with `bins` equal-width score bins.
/// Empty bins are omitted.
pub fn reliability_diagram(examples: &[(f64, bool)], bins: usize) -> Vec<ReliabilityBin> {
    assert!(bins > 0, "need at least one bin");
    let mut sums = vec![0.0f64; bins];
    let mut hits = vec![0usize; bins];
    let mut counts = vec![0usize; bins];
    for &(score, positive) in examples {
        let clamped = score.clamp(0.0, 1.0);
        let b = ((clamped * bins as f64) as usize).min(bins - 1);
        sums[b] += clamped;
        counts[b] += 1;
        if positive {
            hits[b] += 1;
        }
    }
    let w = 1.0 / bins as f64;
    (0..bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| ReliabilityBin {
            lo: b as f64 * w,
            hi: (b + 1) as f64 * w,
            mean_score: sums[b] / counts[b] as f64,
            accuracy: hits[b] as f64 / counts[b] as f64,
            count: counts[b],
        })
        .collect()
}

/// Expected Calibration Error: the count-weighted mean |accuracy − score|
/// over the reliability bins. 0 = perfectly calibrated.
pub fn expected_calibration_error(examples: &[(f64, bool)], bins: usize) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let total = examples.len() as f64;
    reliability_diagram(examples, bins)
        .iter()
        .map(|b| (b.count as f64 / total) * (b.accuracy - b.mean_score).abs())
        .sum()
}

/// Brier score: mean squared error of the score against the 0/1 outcome.
pub fn brier_score(examples: &[(f64, bool)]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    examples
        .iter()
        .map(|&(score, positive)| {
            let y = if positive { 1.0 } else { 0.0 };
            (score - y) * (score - y)
        })
        .sum::<f64>()
        / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_data_has_zero_ece() {
        // score 0.8 bucket with exactly 80% positives, 0.2 bucket with 20%
        let mut examples = Vec::new();
        for i in 0..10 {
            examples.push((0.8, i < 8));
            examples.push((0.2, i < 2));
        }
        let ece = expected_calibration_error(&examples, 10);
        assert!(ece < 1e-9, "{ece}");
    }

    #[test]
    fn overconfident_scores_have_high_ece() {
        // everything scored 0.95 but only half are positive
        let examples: Vec<(f64, bool)> = (0..20).map(|i| (0.95, i % 2 == 0)).collect();
        let ece = expected_calibration_error(&examples, 10);
        assert!((ece - 0.45).abs() < 1e-9, "{ece}");
    }

    #[test]
    fn diagram_bins_cover_examples() {
        let examples = [(0.1, false), (0.15, false), (0.9, true), (1.0, true)];
        let diagram = reliability_diagram(&examples, 5);
        let total: usize = diagram.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        assert_eq!(diagram.len(), 2); // two occupied bins
        assert!(diagram[0].lo < diagram[1].lo);
    }

    #[test]
    fn score_one_lands_in_last_bin() {
        let diagram = reliability_diagram(&[(1.0, true)], 4);
        assert_eq!(diagram.len(), 1);
        assert!((diagram[0].hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn brier_reference_values() {
        assert_eq!(brier_score(&[(1.0, true), (0.0, false)]), 0.0);
        assert_eq!(brier_score(&[(0.0, true)]), 1.0);
        assert!((brier_score(&[(0.5, true), (0.5, false)]) - 0.25).abs() < 1e-12);
        assert_eq!(brier_score(&[]), 0.0);
    }

    #[test]
    fn empty_input_is_zero_ece() {
        assert_eq!(expected_calibration_error(&[], 10), 0.0);
    }

    proptest::proptest! {
        #[test]
        fn ece_bounded(examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 0..50)) {
            let ece = expected_calibration_error(&examples, 10);
            proptest::prop_assert!((0.0..=1.0).contains(&ece));
        }

        #[test]
        fn brier_bounded(examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 0..50)) {
            let b = brier_score(&examples);
            proptest::prop_assert!((0.0..=1.0).contains(&b));
        }
    }
}
