//! Per-label score histograms (Fig. 6 / Fig. 7).

use std::collections::BTreeMap;

/// A fixed-bin histogram over [0, 1] with one count series per label.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: usize,
    counts: BTreeMap<String, Vec<usize>>,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over [0, 1].
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Self {
            bins,
            counts: BTreeMap::new(),
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Record a score under a label. Scores are clamped into [0, 1].
    pub fn record(&mut self, label: &str, score: f64) {
        let clamped = score.clamp(0.0, 1.0);
        let bin = ((clamped * self.bins as f64) as usize).min(self.bins - 1);
        self.counts
            .entry(label.to_string())
            .or_insert_with(|| vec![0; self.bins])[bin] += 1;
    }

    /// Counts for one label (None if never recorded).
    pub fn series(&self, label: &str) -> Option<&[usize]> {
        self.counts.get(label).map(Vec::as_slice)
    }

    /// All labels in sorted order.
    pub fn labels(&self) -> Vec<&str> {
        self.counts.keys().map(String::as_str).collect()
    }

    /// Total observations for a label.
    pub fn total(&self, label: &str) -> usize {
        self.series(label).map_or(0, |s| s.iter().sum())
    }

    /// The inclusive-exclusive range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = 1.0 / self.bins as f64;
        (i as f64 * w, (i + 1) as f64 * w)
    }

    /// Mean score of a label's observations, approximated by bin centers.
    pub fn approx_mean(&self, label: &str) -> Option<f64> {
        let series = self.series(label)?;
        let total: usize = series.iter().sum();
        if total == 0 {
            return None;
        }
        let w = 1.0 / self.bins as f64;
        let sum: f64 = series
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * w)
            .sum();
        Some(sum / total as f64)
    }

    /// Render an ASCII table: one row per bin, one column per label.
    pub fn render(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        out.push_str("bin        ");
        for l in &labels {
            out.push_str(&format!("{l:>10}"));
        }
        out.push('\n');
        for i in 0..self.bins {
            let (lo, hi) = self.bin_range(i);
            out.push_str(&format!("[{lo:.2},{hi:.2})"));
            for l in &labels {
                let c = self.counts[*l][i];
                out.push_str(&format!("{c:>10}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(10);
        h.record("correct", 0.95);
        h.record("correct", 0.91);
        h.record("wrong", 0.05);
        assert_eq!(h.series("correct").unwrap()[9], 2);
        assert_eq!(h.series("wrong").unwrap()[0], 1);
        assert_eq!(h.total("correct"), 2);
    }

    #[test]
    fn score_one_lands_in_last_bin() {
        let mut h = Histogram::new(4);
        h.record("x", 1.0);
        assert_eq!(h.series("x").unwrap()[3], 1);
    }

    #[test]
    fn out_of_range_scores_are_clamped() {
        let mut h = Histogram::new(4);
        h.record("x", -0.5);
        h.record("x", 1.5);
        assert_eq!(h.series("x").unwrap()[0], 1);
        assert_eq!(h.series("x").unwrap()[3], 1);
    }

    #[test]
    fn bin_ranges_tile_unit_interval() {
        let h = Histogram::new(5);
        assert_eq!(h.bin_range(0), (0.0, 0.2));
        assert_eq!(h.bin_range(4), (0.8, 1.0));
    }

    #[test]
    fn approx_mean_orders_labels() {
        let mut h = Histogram::new(20);
        for s in [0.8, 0.85, 0.9] {
            h.record("correct", s);
        }
        for s in [0.1, 0.2, 0.3] {
            h.record("wrong", s);
        }
        assert!(h.approx_mean("correct").unwrap() > h.approx_mean("wrong").unwrap());
        assert!(h.approx_mean("missing").is_none());
    }

    #[test]
    fn labels_sorted() {
        let mut h = Histogram::new(2);
        h.record("wrong", 0.1);
        h.record("correct", 0.9);
        h.record("partial", 0.5);
        assert_eq!(h.labels(), ["correct", "partial", "wrong"]);
    }

    #[test]
    fn render_contains_all_rows() {
        let mut h = Histogram::new(3);
        h.record("a", 0.5);
        let text = h.render();
        assert_eq!(text.lines().count(), 4); // header + 3 bins
        assert!(text.contains("[0.33,0.67)"));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0);
    }

    proptest::proptest! {
        #[test]
        fn totals_match_records(scores in proptest::collection::vec(0f64..1.0, 0..60)) {
            let mut h = Histogram::new(8);
            for s in &scores {
                h.record("l", *s);
            }
            proptest::prop_assert_eq!(h.total("l"), scores.len());
        }
    }
}
