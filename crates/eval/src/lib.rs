//! # eval
//!
//! Evaluation machinery for the paper's experiments (§V):
//!
//! * [`metrics`] — confusion matrix, precision / recall / F1.
//! * [`sweep`] — threshold sweeps: best-F1 (Fig. 3, Fig. 5) and best
//!   precision subject to recall ≥ 0.5 (Fig. 4).
//! * [`histogram`] — per-label score histograms (Fig. 6, Fig. 7).
//! * [`roc`] — ROC curve and AUC (extension metric).
//! * [`report`] — ASCII bar charts / tables and serializable experiment
//!   records for EXPERIMENTS.md.

pub mod calibration;
pub mod histogram;
pub mod metrics;
pub mod report;
pub mod roc;
pub mod significance;
pub mod stats;
pub mod sweep;

pub use calibration::{brier_score, expected_calibration_error};
pub use histogram::Histogram;
pub use metrics::{f1_score, precision_recall, ConfusionMatrix};
pub use significance::{paired_bootstrap, PairedComparison};
pub use stats::{bootstrap_best_f1, BootstrapEstimate};
pub use sweep::{best_f1, best_precision_with_min_recall, SweepPoint};
