//! Binary classification metrics.
//!
//! Convention throughout the experiments: the *positive* class is "the
//! response is correct" — the paper measures how well each approach detects
//! correct responses against hallucinated (wrong or partial) ones.

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Correct responses accepted.
    pub tp: usize,
    /// Hallucinated responses accepted (the dangerous cell).
    pub fp: usize,
    /// Hallucinated responses rejected.
    pub tn: usize,
    /// Correct responses rejected.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Build from (predicted_positive, actually_positive) pairs.
    pub fn from_predictions<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (bool, bool)>,
    {
        let mut m = Self::default();
        for (pred, actual) in pairs {
            match (pred, actual) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Precision: TP / (TP + FP). 1.0 when nothing was predicted positive
    /// (vacuously precise — standard convention for threshold sweeps).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: TP / (TP + FN). 0.0 when there are no positives at all.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1: harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all four cells.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// Precision and recall from scored examples at a threshold: predict positive
/// when `score >= threshold`.
pub fn precision_recall(examples: &[(f64, bool)], threshold: f64) -> (f64, f64) {
    let m = confusion_at(examples, threshold);
    (m.precision(), m.recall())
}

/// F1 at a fixed threshold.
pub fn f1_score(examples: &[(f64, bool)], threshold: f64) -> f64 {
    confusion_at(examples, threshold).f1()
}

/// Confusion matrix at a threshold.
pub fn confusion_at(examples: &[(f64, bool)], threshold: f64) -> ConfusionMatrix {
    ConfusionMatrix::from_predictions(
        examples
            .iter()
            .map(|&(score, positive)| (score >= threshold, positive)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_matrix() {
        let m = ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 7,
            fn_: 3,
        };
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 11.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 11.0) / (0.8 + 8.0 / 11.0);
        assert!((m.f1() - f1).abs() < 1e-12);
        assert_eq!(m.total(), 20);
    }

    #[test]
    fn from_predictions_counts_cells() {
        let m = ConfusionMatrix::from_predictions([
            (true, true),
            (true, false),
            (false, false),
            (false, true),
            (true, true),
        ]);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
    }

    #[test]
    fn degenerate_conventions() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix {
            tp: 5,
            fp: 0,
            tn: 5,
            fn_: 0,
        };
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn threshold_semantics_are_geq() {
        let examples = [(0.5, true), (0.4, false)];
        let (p, r) = precision_recall(&examples, 0.5);
        assert_eq!((p, r), (1.0, 1.0));
        // raising threshold above 0.5 rejects the positive
        let (_, r2) = precision_recall(&examples, 0.51);
        assert_eq!(r2, 0.0);
    }

    #[test]
    fn f1_at_threshold() {
        let examples = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        // at 0.75: predict {0.9 (tp), 0.8 (fp)}; miss 0.7 (fn)
        let f1 = f1_score(&examples, 0.75);
        let expected = 2.0 * 0.5 * 0.5 / (0.5 + 0.5);
        assert!((f1 - expected).abs() < 1e-12);
    }

    proptest::proptest! {
        #[test]
        fn metrics_bounded(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 0..40),
            threshold in 0f64..1.0,
        ) {
            let m = confusion_at(&examples, threshold);
            for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
                proptest::prop_assert!((0.0..=1.0).contains(&v));
            }
            proptest::prop_assert_eq!(m.total(), examples.len());
        }

        #[test]
        fn recall_monotone_in_threshold(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 1..40),
        ) {
            let (_, r_low) = precision_recall(&examples, 0.2);
            let (_, r_high) = precision_recall(&examples, 0.8);
            proptest::prop_assert!(r_low >= r_high);
        }
    }
}
