//! Experiment records and terminal rendering.
//!
//! Every experiment binary emits (a) a human-readable ASCII chart matching
//! the corresponding paper figure and (b) a serializable record collected
//! into `EXPERIMENTS-results.json`.

use serde::{Deserialize, Serialize};

/// One bar of a bar chart (Fig. 3 / 4 / 5 are bar charts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bar {
    /// Bar label (approach or mean name).
    pub label: String,
    /// Bar value.
    pub value: f64,
}

/// A named experiment result: a set of bars per task panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. "fig3a".
    pub id: String,
    /// Human title, e.g. "Best F1 detecting correct vs wrong".
    pub title: String,
    /// The paper's reported values where stated (label → value).
    pub paper_reference: Vec<Bar>,
    /// Our measured values.
    pub measured: Vec<Bar>,
    /// Free-form annotations attached by the experiment (e.g. exemplar
    /// flight records from the observability layer). Absent in records
    /// written before this field existed, so it defaults to empty and is
    /// omitted from JSON when empty.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub notes: Vec<String>,
}

impl ExperimentRecord {
    /// Create an empty record.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            paper_reference: Vec::new(),
            measured: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a free-form annotation.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Add a measured bar.
    pub fn measure(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.measured.push(Bar {
            label: label.into(),
            value,
        });
        self
    }

    /// Add a paper-reference bar.
    pub fn reference(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.paper_reference.push(Bar {
            label: label.into(),
            value,
        });
        self
    }

    /// The measured value for a label, if present.
    pub fn measured_value(&self, label: &str) -> Option<f64> {
        self.measured
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.value)
    }
}

/// Render a horizontal ASCII bar chart. Values are assumed in [0, 1] (F1,
/// precision, recall); `width` is the full-scale bar width in characters.
pub fn render_bars(title: &str, bars: &[Bar], width: usize) -> String {
    let mut out = format!("{title}\n");
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
    for b in bars {
        let filled = ((b.value.clamp(0.0, 1.0)) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {:label_w$}  {:5.3}  |{}{}|\n",
            b.label,
            b.value,
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Render a two-column comparison table (paper vs measured).
pub fn render_comparison(record: &ExperimentRecord) -> String {
    let mut out = format!("{} — {}\n", record.id, record.title);
    out.push_str(&format!(
        "  {:<22} {:>8} {:>10}\n",
        "label", "paper", "measured"
    ));
    let labels: Vec<&str> = record.measured.iter().map(|b| b.label.as_str()).collect();
    for label in labels {
        let paper = record
            .paper_reference
            .iter()
            .find(|b| b.label == label)
            .map_or("-".to_string(), |b| format!("{:.3}", b.value));
        let measured = record.measured_value(label).unwrap();
        out.push_str(&format!("  {label:<22} {paper:>8} {measured:>10.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExperimentRecord {
        let mut r = ExperimentRecord::new("fig3b", "Best F1, correct vs partial");
        r.reference("proposed", 0.81).reference("chatgpt", 0.73);
        r.measure("proposed", 0.84).measure("chatgpt", 0.70);
        r
    }

    #[test]
    fn record_lookup() {
        let r = record();
        assert_eq!(r.measured_value("proposed"), Some(0.84));
        assert_eq!(r.measured_value("missing"), None);
    }

    #[test]
    fn bars_render_scaled() {
        let bars = vec![
            Bar {
                label: "a".into(),
                value: 1.0,
            },
            Bar {
                label: "b".into(),
                value: 0.5,
            },
        ];
        let text = render_bars("t", &bars, 10);
        assert!(text.contains(&"█".repeat(10)));
        assert!(text.contains(&"█".repeat(5)));
        assert!(text.starts_with("t\n"));
    }

    #[test]
    fn bars_clamp_out_of_range() {
        let bars = vec![Bar {
            label: "x".into(),
            value: 2.0,
        }];
        let text = render_bars("t", &bars, 8);
        assert!(text.contains(&"█".repeat(8)));
    }

    #[test]
    fn comparison_includes_both_columns() {
        let text = render_comparison(&record());
        assert!(text.contains("0.810"));
        assert!(text.contains("0.840"));
        assert!(text.contains("fig3b"));
    }

    #[test]
    fn comparison_handles_missing_reference() {
        let mut r = record();
        r.measure("new-approach", 0.9);
        let text = render_comparison(&r);
        assert!(text.contains("new-approach"));
        assert!(text.contains('-'));
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = record();
        r.note("flight record: {...}");
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn notes_default_empty_for_older_records() {
        let json = r#"{"id":"x","title":"t","paper_reference":[],"measured":[]}"#;
        let r: ExperimentRecord = serde_json::from_str(json).unwrap();
        assert!(r.notes.is_empty());
        assert!(
            !serde_json::to_string(&r).unwrap().contains("notes"),
            "empty notes stay out of the JSON"
        );
    }
}
