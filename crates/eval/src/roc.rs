//! ROC curve and AUC — a threshold-free companion metric to the paper's
//! best-F1 sweeps (extension, not in the paper's figures).

/// One ROC point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
}

/// The ROC curve, from (0,0) to (1,1), by descending threshold.
pub fn roc_curve(examples: &[(f64, bool)]) -> Vec<RocPoint> {
    let pos = examples.iter().filter(|&&(_, p)| p).count();
    let neg = examples.len() - pos;
    if pos == 0 || neg == 0 {
        return vec![
            RocPoint { fpr: 0.0, tpr: 0.0 },
            RocPoint { fpr: 1.0, tpr: 1.0 },
        ];
    }
    let mut sorted: Vec<(f64, bool)> = examples.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0 }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        // process ties as one block so the curve is well-defined
        let score = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal rule). 0.5 for degenerate input
/// (single-class data).
pub fn auc(examples: &[(f64, bool)]) -> f64 {
    let curve = roc_curve(examples);
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let examples = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((auc(&examples) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let examples = [(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!(auc(&examples).abs() < 1e-12);
    }

    #[test]
    fn random_interleaving_is_half() {
        // alternating perfectly: AUC = 0.5
        let examples = [(0.8, true), (0.7, false), (0.6, true), (0.5, false)];
        let a = auc(&examples);
        assert!((a - 0.5).abs() < 0.26, "a={a}");
    }

    #[test]
    fn single_class_degenerates_to_half() {
        assert_eq!(auc(&[(0.5, true), (0.6, true)]), 0.5);
        assert_eq!(auc(&[]), 0.5);
    }

    #[test]
    fn curve_starts_at_origin_and_ends_at_one_one() {
        let examples = [(0.9, true), (0.3, false), (0.5, true)];
        let curve = roc_curve(&examples);
        assert_eq!(curve.first().unwrap(), &RocPoint { fpr: 0.0, tpr: 0.0 });
        let last = curve.last().unwrap();
        assert!((last.fpr - 1.0).abs() < 1e-12 && (last.tpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_handled_as_block() {
        let examples = [(0.5, true), (0.5, false)];
        let curve = roc_curve(&examples);
        // one block step: (0,0) → (1,1)
        assert_eq!(curve.len(), 2);
        assert!((auc(&examples) - 0.5).abs() < 1e-12);
    }

    proptest::proptest! {
        #[test]
        fn auc_bounded_and_monotone_curve(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 2..40),
        ) {
            let a = auc(&examples);
            proptest::prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
            let curve = roc_curve(&examples);
            for w in curve.windows(2) {
                proptest::prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
                proptest::prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
            }
        }
    }
}
