//! Paired significance testing between two approaches.
//!
//! "Proposed beats P(yes) by 0.08 F1" means little without knowing whether
//! that gap survives resampling. This module runs a paired bootstrap over
//! the shared example set (both approaches scored the *same* responses) and
//! reports how often the sign of the F1 difference holds.

use crate::sweep::best_f1;

/// Result of a paired bootstrap comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedComparison {
    /// F1 of approach A on the full set.
    pub f1_a: f64,
    /// F1 of approach B on the full set.
    pub f1_b: f64,
    /// Mean bootstrap difference (A − B).
    pub mean_diff: f64,
    /// Fraction of resamples where A strictly beats B.
    pub win_rate: f64,
    /// Resamples used.
    pub resamples: usize,
}

impl PairedComparison {
    /// Conventional call: A significantly better than B when it wins ≥ 95%
    /// of resamples.
    pub fn significant(&self) -> bool {
        self.win_rate >= 0.95
    }
}

/// Compare two approaches' scores over the same labeled examples.
///
/// `scores_a[i]` and `scores_b[i]` must refer to the same underlying example
/// with label `labels[i]`. Returns `None` on empty or mismatched input.
pub fn paired_bootstrap(
    scores_a: &[f64],
    scores_b: &[f64],
    labels: &[bool],
    resamples: usize,
    seed: u64,
) -> Option<PairedComparison> {
    let n = labels.len();
    if n == 0 || scores_a.len() != n || scores_b.len() != n || resamples == 0 {
        return None;
    }
    let full = |scores: &[f64]| -> Option<f64> {
        let examples: Vec<(f64, bool)> =
            scores.iter().copied().zip(labels.iter().copied()).collect();
        best_f1(&examples).map(|p| p.f1)
    };
    let f1_a = full(scores_a)?;
    let f1_b = full(scores_b)?;

    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next_index = move |n: usize| -> usize {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z % n as u64) as usize
    };

    let mut wins = 0usize;
    let mut diff_sum = 0.0;
    let mut used = 0usize;
    let mut sample_a = Vec::with_capacity(n);
    let mut sample_b = Vec::with_capacity(n);
    for _ in 0..resamples {
        sample_a.clear();
        sample_b.clear();
        for _ in 0..n {
            let i = next_index(n);
            sample_a.push((scores_a[i], labels[i]));
            sample_b.push((scores_b[i], labels[i]));
        }
        let (Some(pa), Some(pb)) = (best_f1(&sample_a), best_f1(&sample_b)) else {
            continue;
        };
        used += 1;
        diff_sum += pa.f1 - pb.f1;
        if pa.f1 > pb.f1 {
            wins += 1;
        }
    }
    if used == 0 {
        return None;
    }
    Some(PairedComparison {
        f1_a,
        f1_b,
        mean_diff: diff_sum / used as f64,
        win_rate: wins as f64 / used as f64,
        resamples: used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clearly better, B noisy: A separates labels well, B is mediocre.
    fn setup(n: usize) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            labels.push(pos);
            a.push(if pos {
                0.8 + 0.01 * (i % 7) as f64
            } else {
                0.2 + 0.01 * (i % 5) as f64
            });
            // B: heavy overlap
            b.push(if pos {
                0.5 + 0.03 * (i % 9) as f64
            } else {
                0.45 + 0.03 * (i % 8) as f64
            });
        }
        (a, b, labels)
    }

    #[test]
    fn clear_gap_is_significant() {
        let (a, b, labels) = setup(60);
        let cmp = paired_bootstrap(&a, &b, &labels, 300, 7).unwrap();
        assert!(cmp.f1_a > cmp.f1_b);
        assert!(cmp.mean_diff > 0.0);
        assert!(cmp.significant(), "win rate {}", cmp.win_rate);
    }

    #[test]
    fn identical_approaches_are_not_significant() {
        let (a, _, labels) = setup(40);
        let cmp = paired_bootstrap(&a, &a, &labels, 200, 3).unwrap();
        assert_eq!(cmp.f1_a, cmp.f1_b);
        assert_eq!(cmp.win_rate, 0.0); // ties never count as wins
        assert!(!cmp.significant());
    }

    #[test]
    fn mismatched_lengths_are_none() {
        assert!(paired_bootstrap(&[0.5], &[0.5, 0.6], &[true], 10, 1).is_none());
        assert!(paired_bootstrap(&[], &[], &[], 10, 1).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, b, labels) = setup(30);
        let x = paired_bootstrap(&a, &b, &labels, 100, 9).unwrap();
        let y = paired_bootstrap(&a, &b, &labels, 100, 9).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn win_rate_bounded() {
        let (a, b, labels) = setup(20);
        let cmp = paired_bootstrap(&a, &b, &labels, 50, 11).unwrap();
        assert!((0.0..=1.0).contains(&cmp.win_rate));
        assert_eq!(cmp.resamples, 50);
    }
}
