//! Resampling statistics: bootstrap confidence intervals for the sweep
//! metrics. The paper reports point estimates on ~120 sets; the robustness
//! extension (`cargo run -p bench --bin robustness`) quantifies how much
//! those estimates move under resampling and fresh dataset seeds.

use crate::sweep::best_f1;

/// A bootstrap estimate with a percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapEstimate {
    /// Point estimate on the full sample.
    pub point: f64,
    /// Lower CI bound.
    pub lower: f64,
    /// Upper CI bound.
    pub upper: f64,
    /// Number of bootstrap resamples used.
    pub resamples: usize,
}

/// Deterministic xorshift-style resampler (no rand dependency in eval).
struct Resampler {
    state: u64,
}

impl Resampler {
    fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
        }
    }

    fn next_index(&mut self, n: usize) -> usize {
        // splitmix64 step
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z % n as u64) as usize
    }
}

/// Bootstrap a statistic over (score, label) examples.
///
/// Resamples the examples with replacement `resamples` times, applies
/// `statistic`, and returns the percentile interval at `confidence`
/// (e.g. 0.95). Returns `None` for empty input or a degenerate statistic.
pub fn bootstrap(
    examples: &[(f64, bool)],
    resamples: usize,
    confidence: f64,
    seed: u64,
    statistic: impl Fn(&[(f64, bool)]) -> Option<f64>,
) -> Option<BootstrapEstimate> {
    if examples.is_empty() || resamples == 0 {
        return None;
    }
    let point = statistic(examples)?;
    let mut rng = Resampler::new(seed);
    let mut values = Vec::with_capacity(resamples);
    let mut sample = Vec::with_capacity(examples.len());
    for _ in 0..resamples {
        sample.clear();
        for _ in 0..examples.len() {
            sample.push(examples[rng.next_index(examples.len())]);
        }
        if let Some(v) = statistic(&sample) {
            values.push(v);
        }
    }
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((values.len() as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((values.len() as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    Some(BootstrapEstimate {
        point,
        lower: values[lo_idx],
        upper: values[hi_idx],
        resamples: values.len(),
    })
}

/// Bootstrap CI of the best-threshold F1 (the figures' headline metric).
pub fn bootstrap_best_f1(
    examples: &[(f64, bool)],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<BootstrapEstimate> {
    bootstrap(examples, resamples, confidence, seed, |sample| {
        best_f1(sample).map(|p| p.f1)
    })
}

/// Mean and (population) standard deviation of a sequence.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Vec<(f64, bool)> {
        (0..n)
            .map(|i| {
                let pos = i % 2 == 0;
                let base = if pos { 0.8 } else { 0.2 };
                (base + (i % 5) as f64 * 0.01, pos)
            })
            .collect()
    }

    #[test]
    fn point_estimate_matches_direct_computation() {
        let ex = separable(40);
        let est = bootstrap_best_f1(&ex, 200, 0.95, 7).unwrap();
        assert_eq!(est.point, best_f1(&ex).unwrap().f1);
        assert_eq!(est.point, 1.0);
    }

    #[test]
    fn interval_brackets_the_point_for_stable_data() {
        let ex = separable(60);
        let est = bootstrap_best_f1(&ex, 300, 0.95, 3).unwrap();
        assert!(est.lower <= est.point + 1e-12);
        assert!(est.upper >= est.point - 1e-12);
        // perfectly separable data stays perfect under resampling
        assert!(est.lower > 0.95, "{est:?}");
    }

    #[test]
    fn noisy_data_gets_wider_interval() {
        // heavily overlapping scores → F1 varies across resamples
        let noisy: Vec<(f64, bool)> = (0..60)
            .map(|i| (((i * 37) % 100) as f64 / 100.0, i % 2 == 0))
            .collect();
        let est = bootstrap_best_f1(&noisy, 300, 0.95, 5).unwrap();
        assert!(est.upper - est.lower > 0.01, "{est:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ex = separable(30);
        let a = bootstrap_best_f1(&ex, 100, 0.9, 11).unwrap();
        let b = bootstrap_best_f1(&ex, 100, 0.9, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(bootstrap_best_f1(&[], 100, 0.95, 1).is_none());
        assert!(bootstrap(&separable(10), 0, 0.95, 1, |_| Some(1.0)).is_none());
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    proptest::proptest! {
        #[test]
        fn bounds_ordered(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 4..40),
            seed in 0u64..20,
        ) {
            if let Some(est) = bootstrap_best_f1(&examples, 50, 0.9, seed) {
                proptest::prop_assert!(est.lower <= est.upper);
                proptest::prop_assert!((0.0..=1.0).contains(&est.lower));
                proptest::prop_assert!((0.0..=1.0).contains(&est.upper));
            }
        }
    }
}
