//! Threshold sweeps.
//!
//! Fig. 3 / Fig. 5 report the F1 at the best threshold; Fig. 4 reports the
//! best precision subject to recall ≥ 0.5 ("a system that answers only those
//! questions it is confident about"). Candidate thresholds are the observed
//! scores themselves (plus one above the maximum), which covers every
//! distinct operating point.

use crate::metrics::confusion_at;

/// One operating point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The threshold (predict positive at `score >= threshold`).
    pub threshold: f64,
    /// Precision at this threshold.
    pub precision: f64,
    /// Recall at this threshold.
    pub recall: f64,
    /// F1 at this threshold.
    pub f1: f64,
}

/// Every distinct operating point, sorted by threshold ascending.
pub fn sweep(examples: &[(f64, bool)]) -> Vec<SweepPoint> {
    if examples.is_empty() {
        return Vec::new();
    }
    let mut thresholds: Vec<f64> = examples.iter().map(|&(s, _)| s).collect();
    thresholds.push(
        examples
            .iter()
            .map(|&(s, _)| s)
            .fold(f64::NEG_INFINITY, f64::max)
            + 1e-9,
    );
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup();
    thresholds
        .into_iter()
        .map(|t| {
            let m = confusion_at(examples, t);
            SweepPoint {
                threshold: t,
                precision: m.precision(),
                recall: m.recall(),
                f1: m.f1(),
            }
        })
        .collect()
}

/// The operating point with the highest F1 (ties: lowest threshold).
///
/// Returns `None` on empty input.
pub fn best_f1(examples: &[(f64, bool)]) -> Option<SweepPoint> {
    sweep(examples)
        .into_iter()
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap_or(std::cmp::Ordering::Equal))
}

/// The highest-precision point whose recall is at least `min_recall`
/// (Fig. 4's constraint, r ≥ 0.5). Ties prefer higher recall.
///
/// Returns `None` when no threshold satisfies the constraint.
pub fn best_precision_with_min_recall(
    examples: &[(f64, bool)],
    min_recall: f64,
) -> Option<SweepPoint> {
    sweep(examples)
        .into_iter()
        .filter(|p| p.recall >= min_recall)
        .max_by(|a, b| {
            a.precision
                .partial_cmp(&b.precision)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.recall
                        .partial_cmp(&b.recall)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Separable data: positives at high scores.
    fn separable() -> Vec<(f64, bool)> {
        vec![
            (0.9, true),
            (0.8, true),
            (0.7, true),
            (0.3, false),
            (0.2, false),
            (0.1, false),
        ]
    }

    /// Overlapping data.
    fn overlapping() -> Vec<(f64, bool)> {
        vec![
            (0.9, true),
            (0.6, false),
            (0.55, true),
            (0.5, true),
            (0.45, false),
            (0.1, false),
        ]
    }

    #[test]
    fn separable_data_reaches_perfect_f1() {
        let best = best_f1(&separable()).unwrap();
        assert_eq!(best.f1, 1.0);
        assert!(best.threshold > 0.3 && best.threshold <= 0.7);
    }

    #[test]
    fn overlapping_data_f1_below_one() {
        let best = best_f1(&overlapping()).unwrap();
        assert!(best.f1 < 1.0);
        assert!(best.f1 > 0.5);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(best_f1(&[]).is_none());
        assert!(best_precision_with_min_recall(&[], 0.5).is_none());
    }

    #[test]
    fn sweep_covers_extremes() {
        let points = sweep(&separable());
        // lowest threshold accepts everything → recall 1
        assert_eq!(points.first().unwrap().recall, 1.0);
        // highest threshold accepts nothing → recall 0, precision 1 (vacuous)
        let last = points.last().unwrap();
        assert_eq!(last.recall, 0.0);
        assert_eq!(last.precision, 1.0);
    }

    #[test]
    fn precision_constraint_respected() {
        let best = best_precision_with_min_recall(&overlapping(), 0.5).unwrap();
        assert!(best.recall >= 0.5);
        // and it's the max precision among those
        for p in sweep(&overlapping()) {
            if p.recall >= 0.5 {
                assert!(best.precision >= p.precision - 1e-12);
            }
        }
    }

    #[test]
    fn unsatisfiable_recall_constraint_is_none() {
        // all negatives: recall is always 0
        let examples = [(0.5, false), (0.6, false)];
        assert!(best_precision_with_min_recall(&examples, 0.5).is_none());
    }

    #[test]
    fn min_recall_zero_picks_max_precision() {
        let best = best_precision_with_min_recall(&overlapping(), 0.0).unwrap();
        assert_eq!(best.precision, 1.0);
    }

    proptest::proptest! {
        #[test]
        fn best_f1_dominates_fixed_thresholds(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 1..30),
        ) {
            let best = best_f1(&examples).unwrap();
            for t in [0.1, 0.3, 0.5, 0.7, 0.9] {
                let f1 = crate::metrics::f1_score(&examples, t);
                proptest::prop_assert!(best.f1 >= f1 - 1e-12);
            }
        }

        #[test]
        fn sweep_thresholds_strictly_increasing(
            examples in proptest::collection::vec((0f64..1.0, proptest::bool::ANY), 1..30),
        ) {
            let points = sweep(&examples);
            for w in points.windows(2) {
                proptest::prop_assert!(w[0].threshold < w[1].threshold);
            }
        }
    }
}
