//! Deterministic dataset generation.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use rag::generate::inject_any;

use crate::schema::{Dataset, LabeledResponse, QaSet, ResponseLabel};
use crate::topics::all_topics;

/// Builds a [`Dataset`] of N sets from a seed.
///
/// Topics rotate round-robin so every topic is evenly represented; fact
/// values are re-sampled per set, so two sets on the same topic still differ.
/// The *partial* response perturbs exactly one answer sentence, the *wrong*
/// response perturbs all of them — matching §V-A's labeled triples.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    /// Master seed.
    pub seed: u64,
    /// Number of (question, context) sets. The paper uses "over 100".
    pub num_sets: usize,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self {
            seed: 0xD5_EED,
            num_sets: 120,
        }
    }
}

impl DatasetBuilder {
    /// Builder with explicit parameters.
    pub fn new(seed: u64, num_sets: usize) -> Self {
        Self { seed, num_sets }
    }

    /// Generate the dataset over the twelve core topics.
    pub fn build(&self) -> Dataset {
        self.build_with_topics(&all_topics())
    }

    /// Generate a dataset over the four held-out topics (out-of-domain
    /// generalization experiments).
    pub fn build_held_out(&self) -> Dataset {
        self.build_with_topics(&crate::topics::held_out_topics())
    }

    /// Generate over an explicit topic roster.
    ///
    /// # Panics
    /// Panics on an empty roster.
    pub fn build_with_topics(
        &self,
        topics: &[fn(&mut StdRng) -> crate::topics::TopicInstance],
    ) -> Dataset {
        assert!(!topics.is_empty(), "need at least one topic");
        let mut sets = Vec::with_capacity(self.num_sets);
        for id in 0..self.num_sets {
            // Independent RNG per set so sets are stable under num_sets changes.
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(id as u64 * 0x9e37));
            let topic_fn = topics[id % topics.len()];
            let inst = topic_fn(&mut rng);

            // Correct: grounded sentences plus the truthful elaboration.
            let mut correct = inst.answer_sentences.clone();
            correct.push(inst.elaboration.clone());

            // Partial: one randomly chosen *grounded* sentence perturbed;
            // the elaboration stays (the response still reads helpfully).
            let mut partial = correct.clone();
            let bad_idx = rng.gen_range(0..inst.answer_sentences.len());
            let (perturbed, partial_op) = inject_any(&partial[bad_idx], &mut rng);
            partial[bad_idx] = perturbed;

            // Wrong: every grounded sentence perturbed; confidently-wrong
            // generations carry no elaboration (mirrors the paper's terse
            // fully-contradicting examples).
            let mut wrong = inst.answer_sentences.clone();
            let mut wrong_idxs = Vec::with_capacity(wrong.len());
            let mut wrong_ops = Vec::with_capacity(wrong.len());
            for (i, s) in wrong.iter_mut().enumerate() {
                let (perturbed, op) = inject_any(s, &mut rng);
                *s = perturbed;
                wrong_idxs.push(i);
                wrong_ops.push(format!("{op:?}"));
            }

            sets.push(QaSet {
                id,
                topic: inst.topic.to_string(),
                question: inst.question,
                context: inst.context,
                responses: vec![
                    LabeledResponse {
                        text: correct.join(" "),
                        label: ResponseLabel::Correct,
                        perturbed_sentences: vec![],
                        ops: vec![],
                    },
                    LabeledResponse {
                        text: partial.join(" "),
                        label: ResponseLabel::Partial,
                        perturbed_sentences: vec![bad_idx],
                        ops: vec![format!("{partial_op:?}")],
                    },
                    LabeledResponse {
                        text: wrong.join(" "),
                        label: ResponseLabel::Wrong,
                        perturbed_sentences: wrong_idxs,
                        ops: wrong_ops,
                    },
                ],
            });
        }
        Dataset {
            seed: self.seed,
            sets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        DatasetBuilder::new(42, 24).build()
    }

    #[test]
    fn builds_requested_number_of_sets() {
        let d = dataset();
        assert_eq!(d.len(), 24);
        assert_eq!(d.seed, 42);
    }

    #[test]
    fn default_matches_paper_scale() {
        let b = DatasetBuilder::default();
        assert!(b.num_sets > 100, "paper uses over 100 sets");
    }

    #[test]
    fn every_set_has_three_distinct_labels() {
        for set in &dataset().sets {
            assert_eq!(set.responses.len(), 3);
            let labels: std::collections::HashSet<_> =
                set.responses.iter().map(|r| r.label).collect();
            assert_eq!(labels.len(), 3);
        }
    }

    #[test]
    fn partial_perturbs_exactly_one_sentence() {
        for set in &dataset().sets {
            let p = set.response(ResponseLabel::Partial);
            assert_eq!(p.perturbed_sentences.len(), 1, "set {}", set.id);
            let c = set.response(ResponseLabel::Correct);
            assert_ne!(p.text, c.text, "set {}", set.id);
        }
    }

    #[test]
    fn wrong_perturbs_every_grounded_sentence() {
        for set in &dataset().sets {
            let w = set.response(ResponseLabel::Wrong);
            // correct = grounded sentences + one elaboration; wrong drops the
            // elaboration and perturbs everything that remains
            let n = text_engine::split_sentences(&set.response(ResponseLabel::Correct).text).len();
            assert_eq!(w.perturbed_sentences.len(), n - 1, "set {}", set.id);
        }
    }

    #[test]
    fn elaboration_present_in_correct_and_partial_only() {
        for set in &dataset().sets {
            let c = text_engine::split_sentences(&set.response(ResponseLabel::Correct).text);
            let p = text_engine::split_sentences(&set.response(ResponseLabel::Partial).text);
            let w = text_engine::split_sentences(&set.response(ResponseLabel::Wrong).text);
            assert_eq!(c.len(), p.len(), "set {}", set.id);
            assert!(w.len() < c.len(), "set {}", set.id);
        }
    }

    #[test]
    fn correct_and_wrong_differ_everywhere() {
        for set in &dataset().sets {
            let c = text_engine::split_sentences(&set.response(ResponseLabel::Correct).text);
            let w = text_engine::split_sentences(&set.response(ResponseLabel::Wrong).text);
            // sentence counts can differ if injection appended a sentence with
            // a period; compare prefixes
            let n = c.len().min(w.len());
            let mut any_diff = 0;
            for i in 0..n {
                if c[i] != w[i] {
                    any_diff += 1;
                }
            }
            assert!(any_diff >= 1, "set {}", set.id);
        }
    }

    #[test]
    fn topics_rotate_evenly() {
        let d = DatasetBuilder::new(1, 24).build();
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for s in &d.sets {
            *counts.entry(s.topic.as_str()).or_default() += 1;
        }
        assert_eq!(counts.len(), 12);
        assert!(counts.values().all(|&c| c == 2));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetBuilder::new(7, 12).build();
        let b = DatasetBuilder::new(7, 12).build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetBuilder::new(1, 12).build();
        let b = DatasetBuilder::new(2, 12).build();
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_stability_under_growth() {
        // Growing the dataset must not change earlier sets (useful for
        // comparing runs at different scales).
        let small = DatasetBuilder::new(3, 6).build();
        let large = DatasetBuilder::new(3, 18).build();
        assert_eq!(&large.sets[..6], &small.sets[..]);
    }

    #[test]
    fn held_out_build_uses_only_held_out_topics() {
        let d = DatasetBuilder::new(9, 16).build_held_out();
        assert_eq!(d.len(), 16);
        let topics: std::collections::HashSet<&str> =
            d.sets.iter().map(|s| s.topic.as_str()).collect();
        assert_eq!(
            topics,
            ["training", "travel", "security", "parking"]
                .into_iter()
                .collect()
        );
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn empty_topic_roster_panics() {
        DatasetBuilder::new(1, 4).build_with_topics(&[]);
    }

    #[test]
    fn same_topic_sets_vary_in_facts() {
        let d = DatasetBuilder::new(5, 48).build();
        let hours_contexts: std::collections::HashSet<&str> = d
            .sets
            .iter()
            .filter(|s| s.topic == "working-hours")
            .map(|s| s.context.as_str())
            .collect();
        assert!(
            hours_contexts.len() >= 2,
            "fact values should vary across sets"
        );
    }
}
