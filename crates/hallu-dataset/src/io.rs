//! Dataset JSON persistence.

use std::io;
use std::path::Path;

use crate::schema::Dataset;

/// Save a dataset as pretty-printed JSON.
///
/// # Errors
/// Returns the underlying I/O or serialization error.
pub fn save(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(dataset)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Load a dataset from JSON.
///
/// # Errors
/// Returns the underlying I/O or parse error.
pub fn load(path: &Path) -> io::Result<Dataset> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    #[test]
    fn roundtrip_through_disk() {
        let d = DatasetBuilder::new(11, 6).build();
        let path = std::env::temp_dir().join(format!("hallu-dataset-{}.json", std::process::id()));
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d, back);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load(Path::new("/nonexistent/dataset.json")).is_err());
    }

    #[test]
    fn load_garbage_errors() {
        let path = std::env::temp_dir().join(format!("hallu-garbage-{}.json", std::process::id()));
        std::fs::write(&path, "not json").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
