//! # hallu-dataset
//!
//! Synthetic HR-handbook evaluation dataset (§V-A of the paper).
//!
//! The paper evaluates on a private dataset built from the Lane Crawford
//! employee handbook: 100+ (question, context) sets, each with three labeled
//! responses — *correct*, *partial* (one wrong fact among correct sentences)
//! and *wrong* (fully contradicting). That dataset is proprietary, so this
//! crate generates an equivalent one (see DESIGN.md §2):
//!
//! * [`topics`] — twelve HR policy topics (working hours, probation, leave,
//!   salary, benefits, uniform, email, media, devices, overtime, expenses,
//!   training) with parameterized context/question/answer templates.
//!   Contexts deliberately contain more information than the question needs,
//!   as the paper notes.
//! * [`schema`] — the dataset types with serde round-tripping.
//! * [`builder`] — deterministic generation of N sets from a seed, with the
//!   *partial*/*wrong* responses produced by `rag`'s typed hallucination
//!   injection.
//! * [`io`] — JSON save/load.

pub mod builder;
pub mod io;
pub mod schema;
pub mod stats;
pub mod topics;

pub use builder::DatasetBuilder;
pub use schema::{Dataset, LabeledResponse, QaSet, ResponseLabel};
