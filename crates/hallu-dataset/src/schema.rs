//! Dataset types.

use serde::{Deserialize, Serialize};

/// Ground-truth label of a generated response (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResponseLabel {
    /// Every sentence is grounded in the context.
    Correct,
    /// At least one sentence is wrong, the rest are correct. The paper notes
    /// labels apply at the response level, not per sentence.
    Partial,
    /// Every sentence contradicts or fabricates.
    Wrong,
}

impl ResponseLabel {
    /// All labels in canonical order.
    pub const ALL: [ResponseLabel; 3] = [
        ResponseLabel::Correct,
        ResponseLabel::Partial,
        ResponseLabel::Wrong,
    ];

    /// Lowercase display name ("correct" / "partial" / "wrong").
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponseLabel::Correct => "correct",
            ResponseLabel::Partial => "partial",
            ResponseLabel::Wrong => "wrong",
        }
    }
}

impl std::fmt::Display for ResponseLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One labeled response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledResponse {
    /// The response text (multiple sentences).
    pub text: String,
    /// Ground-truth label.
    pub label: ResponseLabel,
    /// Indices (into the response's sentence list) that were perturbed.
    /// Empty for correct responses. Recorded for error analysis, not used by
    /// the detector.
    pub perturbed_sentences: Vec<usize>,
    /// The injection operator applied to each perturbed sentence, parallel
    /// to `perturbed_sentences` (e.g. "TimeShift", "Negate"). Metadata for
    /// error analysis only.
    #[serde(default)]
    pub ops: Vec<String>,
}

/// One evaluation set: a question, its context, and three labeled responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QaSet {
    /// Stable id within the dataset.
    pub id: usize,
    /// Policy topic (metadata for slicing results).
    pub topic: String,
    /// The question `q_i`.
    pub question: String,
    /// The context `c_i` (contains more information than the question needs).
    pub context: String,
    /// Exactly one response per label, in [correct, partial, wrong] order.
    pub responses: Vec<LabeledResponse>,
}

impl QaSet {
    /// The response with the given label.
    pub fn response(&self, label: ResponseLabel) -> &LabeledResponse {
        self.responses
            .iter()
            .find(|r| r.label == label)
            .expect("every QaSet carries all three labels")
    }
}

/// The full dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Seed the dataset was generated from (reproducibility record).
    pub seed: u64,
    /// All evaluation sets.
    pub sets: Vec<QaSet>,
}

impl Dataset {
    /// Number of sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterate (question, context, response, label) tuples, flattened.
    pub fn iter_examples(&self) -> impl Iterator<Item = (&QaSet, &LabeledResponse)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.responses.iter().map(move |r| (s, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> QaSet {
        QaSet {
            id: 0,
            topic: "hours".into(),
            question: "q".into(),
            context: "c".into(),
            responses: vec![
                LabeledResponse {
                    text: "good".into(),
                    label: ResponseLabel::Correct,
                    perturbed_sentences: vec![],
                    ops: vec![],
                },
                LabeledResponse {
                    text: "half".into(),
                    label: ResponseLabel::Partial,
                    perturbed_sentences: vec![1],
                    ops: vec!["Negate".into()],
                },
                LabeledResponse {
                    text: "bad".into(),
                    label: ResponseLabel::Wrong,
                    perturbed_sentences: vec![0, 1],
                    ops: vec!["TimeShift".into(), "Negate".into()],
                },
            ],
        }
    }

    #[test]
    fn label_strings() {
        assert_eq!(ResponseLabel::Correct.as_str(), "correct");
        assert_eq!(ResponseLabel::Partial.to_string(), "partial");
        assert_eq!(ResponseLabel::ALL.len(), 3);
    }

    #[test]
    fn response_lookup_by_label() {
        let s = sample_set();
        assert_eq!(s.response(ResponseLabel::Partial).text, "half");
    }

    #[test]
    fn iter_examples_flattens() {
        let d = Dataset {
            seed: 1,
            sets: vec![sample_set(), sample_set()],
        };
        assert_eq!(d.iter_examples().count(), 6);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Dataset {
            seed: 7,
            sets: vec![sample_set()],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
