//! Dataset statistics — the "dataset card".
//!
//! The paper describes its dataset only in prose; a reproducible dataset
//! should describe itself. This module computes the summary a reader needs
//! to judge the benchmark: size, topic balance, sentence counts, context
//! lengths, and how far each hallucinated response deviates from its
//! correct sibling.

use std::collections::BTreeMap;

use text_engine::split_sentences;
use text_engine::token::tokenize_words;

use crate::schema::{Dataset, ResponseLabel};

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of (question, context) sets.
    pub num_sets: usize,
    /// Total labeled responses (3 per set).
    pub num_responses: usize,
    /// Sets per topic.
    pub topic_counts: BTreeMap<String, usize>,
    /// Mean words per context.
    pub mean_context_words: f64,
    /// Mean sentences per correct response.
    pub mean_correct_sentences: f64,
    /// Mean sentences per wrong response.
    pub mean_wrong_sentences: f64,
    /// Mean word-level edit distance between correct and partial siblings,
    /// as a fraction of the correct response's length (how subtle partials are).
    pub mean_partial_divergence: f64,
    /// Same for wrong siblings (should be much larger).
    pub mean_wrong_divergence: f64,
}

/// Fraction of word positions that differ between two texts (prefix-aligned;
/// the length difference counts as differing positions).
fn word_divergence(a: &str, b: &str) -> f64 {
    let wa = tokenize_words(a);
    let wb = tokenize_words(b);
    let max_len = wa.len().max(wb.len());
    if max_len == 0 {
        return 0.0;
    }
    let shared = wa.iter().zip(&wb).filter(|(x, y)| x == y).count();
    (max_len - shared) as f64 / max_len as f64
}

/// Compute the card for a dataset.
pub fn dataset_stats(dataset: &Dataset) -> DatasetStats {
    let mut topic_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut context_words = 0usize;
    let mut correct_sentences = 0usize;
    let mut wrong_sentences = 0usize;
    let mut partial_div = 0.0;
    let mut wrong_div = 0.0;
    for set in &dataset.sets {
        *topic_counts.entry(set.topic.clone()).or_default() += 1;
        context_words += tokenize_words(&set.context).len();
        let correct = set.response(ResponseLabel::Correct);
        let partial = set.response(ResponseLabel::Partial);
        let wrong = set.response(ResponseLabel::Wrong);
        correct_sentences += split_sentences(&correct.text).len();
        wrong_sentences += split_sentences(&wrong.text).len();
        partial_div += word_divergence(&correct.text, &partial.text);
        wrong_div += word_divergence(&correct.text, &wrong.text);
    }
    let n = dataset.len().max(1) as f64;
    DatasetStats {
        num_sets: dataset.len(),
        num_responses: dataset.len() * 3,
        topic_counts,
        mean_context_words: context_words as f64 / n,
        mean_correct_sentences: correct_sentences as f64 / n,
        mean_wrong_sentences: wrong_sentences as f64 / n,
        mean_partial_divergence: partial_div / n,
        mean_wrong_divergence: wrong_div / n,
    }
}

impl DatasetStats {
    /// Render as a plain-text dataset card.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sets: {}   responses: {} (3 per set)\n",
            self.num_sets, self.num_responses
        ));
        out.push_str(&format!(
            "context length: {:.1} words (mean)\n",
            self.mean_context_words
        ));
        out.push_str(&format!(
            "sentences per response: correct {:.2}, wrong {:.2} (mean)\n",
            self.mean_correct_sentences, self.mean_wrong_sentences
        ));
        out.push_str(&format!(
            "divergence from correct sibling: partial {:.1}%, wrong {:.1}% of word positions\n",
            self.mean_partial_divergence * 100.0,
            self.mean_wrong_divergence * 100.0
        ));
        out.push_str("topics:\n");
        for (topic, count) in &self.topic_counts {
            out.push_str(&format!("  {topic:<16} {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    #[test]
    fn card_reflects_construction() {
        let d = DatasetBuilder::new(3, 24).build();
        let stats = dataset_stats(&d);
        assert_eq!(stats.num_sets, 24);
        assert_eq!(stats.num_responses, 72);
        assert_eq!(stats.topic_counts.len(), 12);
        assert!(stats.topic_counts.values().all(|&c| c == 2));
        // contexts carry distractors → decent length
        assert!(stats.mean_context_words > 20.0);
        // correct has the elaboration; wrong drops it
        assert!(stats.mean_correct_sentences > stats.mean_wrong_sentences);
    }

    #[test]
    fn partials_are_subtler_than_wrongs() {
        let d = DatasetBuilder::new(7, 36).build();
        let stats = dataset_stats(&d);
        assert!(
            stats.mean_partial_divergence < stats.mean_wrong_divergence,
            "partial {} vs wrong {}",
            stats.mean_partial_divergence,
            stats.mean_wrong_divergence
        );
        assert!(stats.mean_partial_divergence > 0.0);
    }

    #[test]
    fn divergence_measure_basics() {
        assert_eq!(word_divergence("a b c", "a b c"), 0.0);
        assert_eq!(word_divergence("a b c", "a b d"), 1.0 / 3.0);
        assert_eq!(word_divergence("", ""), 0.0);
        assert_eq!(word_divergence("a", ""), 1.0);
    }

    #[test]
    fn render_is_complete() {
        let d = DatasetBuilder::new(1, 12).build();
        let card = dataset_stats(&d).render();
        assert!(card.contains("sets: 12"));
        assert!(card.contains("working-hours"));
        assert!(card.contains("divergence"));
    }
}
