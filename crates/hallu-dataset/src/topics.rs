//! Twelve parameterized HR-handbook topics.
//!
//! Each topic materializes into a (context, question, correct answer)
//! triple with freshly sampled fact values, mirroring the paper's dataset:
//! Employment (probation, salary, leave, benefits), Policy (uniform, email)
//! and other matters (media requests, personal devices). Contexts contain
//! distractor sentences — "the context may contain more information than is
//! necessary to formulate the question" (§V-A).

use rand::rngs::StdRng;
use rand::Rng;

use rag::generate::{format_time, weekday_name};

/// A materialized topic: everything needed to build one QA set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicInstance {
    /// Topic slug (metadata).
    pub topic: &'static str,
    /// The context paragraph.
    pub context: String,
    /// The question.
    pub question: String,
    /// The grounded multi-sentence answer.
    pub answer_sentences: Vec<String>,
    /// A truthful but context-ungroundable closing sentence, as real LLM
    /// answers carry ("These arrangements keep the shop floor covered.").
    /// Appears in *correct* and *partial* responses; confidently-wrong
    /// generations drop it.
    pub elaboration: String,
}

type TopicFn = fn(&mut StdRng) -> TopicInstance;

/// The twelve core topic generators (the default evaluation rotation).
pub fn all_topics() -> Vec<TopicFn> {
    vec![
        working_hours,
        annual_leave,
        probation,
        sick_leave,
        salary,
        benefits,
        uniform,
        email_policy,
        media_requests,
        personal_devices,
        overtime,
        expenses,
    ]
}

/// Four additional topics held out of the default rotation, for
/// out-of-domain generalization experiments (fit thresholds on the core
/// topics, evaluate on these).
pub fn held_out_topics() -> Vec<TopicFn> {
    vec![training, travel, security, parking]
}

fn pick<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.gen_range(0..options.len())]
}

/// The paper's own running example: store hours.
pub fn working_hours(rng: &mut StdRng) -> TopicInstance {
    let open = pick(rng, &[8, 9, 10]) * 60;
    let close = pick(rng, &[17, 18, 19]) * 60;
    let (d1, d2) = pick(rng, &[(6u8, 5u8), (0, 5), (0, 4)]); // Sun–Sat, Mon–Sat, Mon–Fri
    let staff = pick(rng, &[2u32, 3, 4]);
    TopicInstance {
        topic: "working-hours",
        context: format!(
            "The store operates from {} to {}, from {} to {}. There should be at least {} \
             shopkeepers to run a shop. {}",
            format_time(open),
            format_time(close),
            weekday_name(d1),
            weekday_name(d2),
            staff,
            pick(
                rng,
                &[
                    "Staff lockers are available in the back office.",
                    "The stockroom is cleaned every morning before opening.",
                    "Window displays are refreshed at the start of every season.",
                ]
            ),
        ),
        question: "What are the working hours of the store?".into(),
        answer_sentences: vec![
            format!(
                "The working hours are {} to {}.",
                format_time(open),
                format_time(close)
            ),
            format!(
                "The store is open from {} to {}.",
                weekday_name(d1),
                weekday_name(d2)
            ),
        ],
        elaboration: "These arrangements keep the shop floor properly covered.".to_string(),
    }
}

/// Annual leave entitlement and carry-over.
pub fn annual_leave(rng: &mut StdRng) -> TopicInstance {
    let days = pick(rng, &[12u32, 14, 16, 18]);
    let carry = pick(rng, &[3u32, 6]);
    let notice = pick(rng, &[5u32, 7, 10]);
    TopicInstance {
        topic: "annual-leave",
        context: format!(
            "Full-time employees are entitled to {days} days of annual leave per calendar year. \
             Unused leave can be carried over for {carry} months into the next year. Leave \
             requests must be submitted at least {notice} days in advance through the portal. {}",
            pick(rng, &[
                "Public holidays are governed by a separate schedule.",
                "The HR portal shows the remaining balance in real time.",
                "Team calendars should be kept up to date during peak season.",
            ]),
        ),
        question: "How many days of annual leave do employees receive, and can unused leave be carried over?".into(),
        answer_sentences: vec![
            format!("Employees are entitled to {days} days of annual leave per calendar year."),
            format!("Unused leave can be carried over for {carry} months."),
        ],
        elaboration: "Planning ahead makes approval much smoother.".to_string(),
    }
}

/// Probation period and confirmation.
pub fn probation(rng: &mut StdRng) -> TopicInstance {
    let months = pick(rng, &[3u32, 6]);
    let review_days = pick(rng, &[30u32, 45, 60]);
    TopicInstance {
        topic: "probation",
        context: format!(
            "The probation period for new employees is {months} months from the start date. A \
             performance review is held after {review_days} days to discuss progress. During \
             probation either party can end the employment with 7 days of notice. {}",
            pick(
                rng,
                &[
                    "The staff canteen is open to probationary employees as well.",
                    "Mentors are assigned during the first week on the job.",
                    "Access badges are issued by the facilities desk on arrival.",
                ]
            ),
        ),
        question: "How long is the probation period for new employees?".into(),
        answer_sentences: vec![
            format!("The probation period is {months} months from the start date."),
            format!("A performance review is held after {review_days} days."),
        ],
        elaboration: "New joiners usually find the process straightforward.".to_string(),
    }
}

/// Sick leave and medical certificates.
pub fn sick_leave(rng: &mut StdRng) -> TopicInstance {
    let days = pick(rng, &[10u32, 12, 15]);
    let cert_after = pick(rng, &[2u32, 3]);
    TopicInstance {
        topic: "sick-leave",
        context: format!(
            "Employees receive {days} days of paid sick leave per year. A medical certificate \
             is required for absences longer than {cert_after} days. Sick leave should be \
             reported to the line manager before 10 AM on the first day of absence. {}",
            pick(rng, &[
                "The wellness room on the second floor can be booked at reception.",
                "Flu vaccinations are offered on site every autumn.",
                "An employee assistance hotline is available around the clock.",
            ]),
        ),
        question: "How many days of paid sick leave are provided, and when is a medical certificate required?".into(),
        answer_sentences: vec![
            format!("Employees receive {days} days of paid sick leave per year."),
            format!("A medical certificate is required for absences longer than {cert_after} days."),
        ],
        elaboration: "Taking proper rest helps everyone recover faster.".to_string(),
    }
}

/// Salary payment schedule.
pub fn salary(rng: &mut StdRng) -> TopicInstance {
    let payday = pick(rng, &[25u32, 26, 28]);
    let bonus_pct = pick(rng, &[5u32, 8, 10]);
    TopicInstance {
        topic: "salary",
        context: format!(
            "Salaries are paid on day {payday} of each month by bank transfer. The annual \
             performance bonus can reach {bonus_pct}% of base salary, subject to company \
             results. Payslips are published electronically on the HR portal. {}",
            pick(
                rng,
                &[
                    "Questions about tax withholding should go to the finance helpdesk.",
                    "Banking detail changes take effect from the following cycle.",
                    "Reference letters can be requested through the portal as well.",
                ]
            ),
        ),
        question: "On which day of the month are salaries paid, and how large can the bonus be?"
            .into(),
        answer_sentences: vec![
            format!("Salaries are paid on day {payday} of each month."),
            format!("The annual performance bonus can reach {bonus_pct}% of base salary."),
        ],
        elaboration: "Direct deposits usually clear the same evening.".to_string(),
    }
}

/// Staff benefits: discount and medical coverage.
pub fn benefits(rng: &mut StdRng) -> TopicInstance {
    let discount = pick(rng, &[10u32, 15, 20, 25]);
    let coverage = pick(rng, &[500u32, 800, 1000]);
    TopicInstance {
        topic: "benefits",
        context: format!(
            "Staff enjoy a {discount}% discount on regular-priced merchandise. The medical plan \
             covers outpatient visits up to ${coverage} per year. The discount does not apply \
             during clearance sales. {}",
            pick(rng, &[
                "Dental care is offered through a partner clinic at preferential rates.",
                "Eye examinations are subsidised once per calendar year.",
                "Gym membership deals are negotiated with nearby studios.",
            ]),
        ),
        question: "What staff discount is offered, and how much outpatient coverage does the medical plan provide?".into(),
        answer_sentences: vec![
            format!("Staff receive a {discount}% discount on regular-priced merchandise."),
            format!("The medical plan covers outpatient visits up to ${coverage} per year."),
        ],
        elaboration: "Many colleagues consider this the best perk.".to_string(),
    }
}

/// Uniform policy.
pub fn uniform(rng: &mut StdRng) -> TopicInstance {
    let allowance = pick(rng, &[200u32, 300, 400]);
    let casual: u8 = 4; // Friday
    TopicInstance {
        topic: "uniform",
        context: format!(
            "Uniforms must be worn at all times on the shop floor. A uniform allowance of \
             ${allowance} is provided every year. {} is a casual dress day for office staff \
             only. {}",
            weekday_name(casual),
            pick(
                rng,
                &[
                    "Damaged uniforms are replaced at no cost after inspection.",
                    "Name badges are part of the standard uniform set.",
                    "Fitting appointments can be booked with the wardrobe team.",
                ]
            ),
        ),
        question: "Is a uniform required, and what allowance is provided?".into(),
        answer_sentences: vec![
            "Uniforms must be worn at all times on the shop floor.".to_string(),
            format!("A uniform allowance of ${allowance} is provided every year."),
        ],
        elaboration: "A neat appearance matters a great deal in retail.".to_string(),
    }
}

/// Email and data policy.
pub fn email_policy(rng: &mut StdRng) -> TopicInstance {
    let retention = pick(rng, &[90u32, 180, 365]);
    TopicInstance {
        topic: "email",
        context: format!(
            "Company email is for business use and must not be forwarded to personal accounts. \
             Mailboxes are retained for {retention} days after an employee leaves. Suspicious \
             messages should be reported to the security team immediately. {}",
            pick(rng, &[
                "Large attachments should be shared through the document portal instead.",
                "Mailing lists are reviewed by department heads twice a year.",
                "Out-of-office replies should include an alternate contact.",
            ]),
        ),
        question: "Can company email be forwarded to personal accounts, and how long are mailboxes retained after departure?".into(),
        answer_sentences: vec![
            "Company email must not be forwarded to personal accounts.".to_string(),
            format!("Mailboxes are retained for {retention} days after an employee leaves."),
        ],
        elaboration: "Careful handling protects customers and colleagues alike.".to_string(),
    }
}

/// Media requests.
pub fn media_requests(rng: &mut StdRng) -> TopicInstance {
    let hours = pick(rng, &[24u32, 48]);
    TopicInstance {
        topic: "media",
        context: format!(
            "All media requests must be forwarded to the communications team. Employees must \
             not speak to journalists on behalf of the company. The communications team will \
             respond to media inquiries within {hours} hours. {}",
            pick(
                rng,
                &[
                    "Social media guidelines are published separately on the intranet.",
                    "Press releases are archived on the corporate site.",
                    "Interview training is arranged for designated spokespeople.",
                ]
            ),
        ),
        question: "How should employees handle requests from the media?".into(),
        answer_sentences: vec![
            "Media requests must be forwarded to the communications team.".to_string(),
            "Employees must not speak to journalists on behalf of the company.".to_string(),
            format!("The communications team will respond within {hours} hours."),
        ],
        elaboration: "Staying consistent in public protects the brand.".to_string(),
    }
}

/// Personal devices at work.
pub fn personal_devices(rng: &mut StdRng) -> TopicInstance {
    let guest_limit = pick(rng, &[2u32, 3, 5]);
    TopicInstance {
        topic: "devices",
        context: format!(
            "Personal devices can connect to the guest network only, limited to {guest_limit} \
             devices per employee. Company data must not be stored on personal devices. Phone \
             calls on the shop floor should be taken in the break room. {}",
            pick(rng, &[
                "Chargers are available from the IT desk on deposit.",
                "Lost devices should be reported to security without delay.",
                "Headphones are discouraged while serving customers.",
            ]),
        ),
        question: "Can personal devices be used at work, and can company data be stored on them?".into(),
        answer_sentences: vec![
            format!(
                "Personal devices can connect to the guest network only, limited to {guest_limit} devices."
            ),
            "Company data must not be stored on personal devices.".to_string(),
        ],
        elaboration: "Keeping work and personal matters separate avoids headaches.".to_string(),
    }
}

/// Overtime compensation.
pub fn overtime(rng: &mut StdRng) -> TopicInstance {
    let rate = pick(rng, &["1.5", "2"]);
    let cap = pick(rng, &[20u32, 30, 36]);
    TopicInstance {
        topic: "overtime",
        context: format!(
            "Approved overtime is compensated at {rate} times the hourly rate. Overtime is \
             capped at {cap} hours per month. Requests require written approval from the \
             department head before the work is performed. {}",
            pick(
                rng,
                &[
                    "Time-off in lieu can be chosen instead of payment where rosters allow.",
                    "Rosters are published two weeks ahead of each period.",
                    "Night work follows the safety escort guidelines.",
                ]
            ),
        ),
        question: "How is overtime compensated, and is there a monthly cap?".into(),
        answer_sentences: vec![
            format!("Overtime is compensated at {rate} times the hourly rate."),
            format!("Overtime is capped at {cap} hours per month."),
        ],
        elaboration: "Balancing workload sensibly benefits the whole team.".to_string(),
    }
}

/// Expense claims.
pub fn expenses(rng: &mut StdRng) -> TopicInstance {
    let window = pick(rng, &[14u32, 30]);
    let meal_cap = pick(rng, &[40u32, 60, 80]);
    TopicInstance {
        topic: "expenses",
        context: format!(
            "Expense claims must be submitted within {window} days of the expense date. Meal \
             expenses during business travel are capped at ${meal_cap} per day. Original \
             receipts are required for every claim. {}",
            pick(
                rng,
                &[
                    "Mileage is reimbursed according to the fleet policy table.",
                    "Corporate card statements reconcile at month end.",
                    "Currency conversions use the booking-day exchange rate.",
                ]
            ),
        ),
        question: "How soon must expense claims be submitted, and what is the daily meal cap?"
            .into(),
        answer_sentences: vec![
            format!("Expense claims must be submitted within {window} days."),
            format!("Meal expenses are capped at ${meal_cap} per day."),
        ],
        elaboration: "Tidy paperwork speeds everything along considerably.".to_string(),
    }
}

/// Held-out topic (generalization experiments): training programmes.
pub fn training(rng: &mut StdRng) -> TopicInstance {
    let hours = pick(rng, &[16u32, 24, 40]);
    let budget = pick(rng, &[300u32, 500, 750]);
    TopicInstance {
        topic: "training",
        context: format!(
            "Every employee may spend {hours} hours per year on approved training during work \
             time. The individual training budget is ${budget} per year. Courses must be agreed \
             with the line manager in the development plan. {}",
            pick(
                rng,
                &[
                    "Completion certificates are stored in the HR system.",
                    "E-learning modules are available through the portal.",
                    "Conference attendance counts toward the allowance.",
                ]
            ),
        ),
        question: "How much training time and budget do employees get per year?".into(),
        answer_sentences: vec![
            format!("Employees may spend {hours} hours per year on approved training."),
            format!("The individual training budget is ${budget} per year."),
        ],
        elaboration: "Investing in skills pays off for everyone involved.".to_string(),
    }
}

/// Held-out topic: business travel.
pub fn travel(rng: &mut StdRng) -> TopicInstance {
    let advance = pick(rng, &[7u32, 14]);
    let hotel_cap = pick(rng, &[150u32, 200, 250]);
    TopicInstance {
        topic: "travel",
        context: format!(
            "Business trips must be booked at least {advance} days in advance through the travel \
             desk. Hotel rates are capped at ${hotel_cap} per night in standard cities. Economy \
             class applies to flights under six hours. {}",
            pick(
                rng,
                &[
                    "Travel insurance is arranged automatically with every booking.",
                    "Loyalty points from business trips may be kept privately.",
                    "Visa support letters are issued by the travel desk.",
                ]
            ),
        ),
        question: "How far in advance must trips be booked, and what is the hotel cap?".into(),
        answer_sentences: vec![
            format!("Trips must be booked at least {advance} days in advance."),
            format!("Hotel rates are capped at ${hotel_cap} per night."),
        ],
        elaboration: "Early planning usually gets much better fares.".to_string(),
    }
}

/// Held-out topic: building security.
pub fn security(rng: &mut StdRng) -> TopicInstance {
    let visitor_hours = pick(rng, &[(9u16, 17u16), (10, 18)]);
    let badge_days = pick(rng, &[3u32, 5]);
    TopicInstance {
        topic: "security",
        context: format!(
            "Visitors are admitted from {} to {} and must be escorted at all times. Lost badges \
             must be reported within {badge_days} days or an administration fee applies. Tailgating \
             through secure doors is prohibited. {}",
            format_time(visitor_hours.0 * 60),
            format_time(visitor_hours.1 * 60),
            pick(rng, &[
                "CCTV recordings are retained according to the privacy notice.",
                "Emergency exits are tested by facilities every quarter.",
                "Contractor access is sponsored by the hosting department.",
            ]),
        ),
        question: "When are visitors admitted, and how quickly must lost badges be reported?".into(),
        answer_sentences: vec![
            format!(
                "Visitors are admitted from {} to {}.",
                format_time(visitor_hours.0 * 60),
                format_time(visitor_hours.1 * 60)
            ),
            format!("Lost badges must be reported within {badge_days} days."),
        ],
        elaboration: "Staying alert keeps the whole building safer.".to_string(),
    }
}

/// Held-out topic: parking.
pub fn parking(rng: &mut StdRng) -> TopicInstance {
    let monthly = pick(rng, &[40u32, 60, 80]);
    let ev_spots = pick(rng, &[4u32, 6, 10]);
    TopicInstance {
        topic: "parking",
        context: format!(
            "Staff parking costs ${monthly} per month, deducted from payroll. There are \
             {ev_spots} charging spots for electric vehicles on level two. Motorbikes park free \
             of charge near the loading bay. {}",
            pick(
                rng,
                &[
                    "Weekend parking is free for rostered staff.",
                    "Car-pool vehicles get priority bays near the lifts.",
                    "Bicycle racks and showers are available on level one.",
                ]
            ),
        ),
        question: "How much does staff parking cost, and how many EV charging spots are there?"
            .into(),
        answer_sentences: vec![
            format!("Staff parking costs ${monthly} per month."),
            format!("There are {ev_spots} charging spots for electric vehicles."),
        ],
        elaboration: "Commuting is easier with a guaranteed spot.".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slm_runtime::sim::{entity_verdict, EntityVerdict};
    use text_engine::entities::extract_entities;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn twelve_core_topics_with_unique_slugs() {
        let topics = all_topics();
        assert_eq!(topics.len(), 12);
        let slugs: std::collections::HashSet<&str> =
            topics.iter().map(|t| t(&mut rng(0)).topic).collect();
        assert_eq!(slugs.len(), 12);
    }

    #[test]
    fn held_out_topics_do_not_overlap_core() {
        let core: std::collections::HashSet<&str> =
            all_topics().iter().map(|t| t(&mut rng(0)).topic).collect();
        let held: std::collections::HashSet<&str> = held_out_topics()
            .iter()
            .map(|t| t(&mut rng(0)).topic)
            .collect();
        assert_eq!(held.len(), 4);
        assert!(core.is_disjoint(&held));
    }

    #[test]
    fn every_topic_produces_multi_sentence_answers() {
        for t in all_topics().into_iter().chain(held_out_topics()) {
            let inst = t(&mut rng(1));
            assert!(inst.answer_sentences.len() >= 2, "{}", inst.topic);
            assert!(!inst.question.is_empty());
            assert!(inst.question.ends_with('?'), "{}", inst.question);
        }
    }

    #[test]
    fn contexts_contain_distractors() {
        // Context must have strictly more sentences than the answer uses.
        for t in all_topics().into_iter().chain(held_out_topics()) {
            let inst = t(&mut rng(2));
            let ctx_sentences = text_engine::split_sentences(&inst.context).len();
            // The final answer sentence is an ungrounded elaboration, so the
            // grounded portion is len() - 1; the context must exceed it.
            assert!(
                ctx_sentences > inst.answer_sentences.len() - 1,
                "{}: {} ctx sentences vs {} grounded answer sentences",
                inst.topic,
                ctx_sentences,
                inst.answer_sentences.len() - 1
            );
        }
    }

    #[test]
    fn answers_are_entity_grounded_in_context() {
        // Every entity in every correct answer sentence must be SUPPORTED by
        // the context — otherwise the verifiers would punish correct answers.
        for t in all_topics().into_iter().chain(held_out_topics()) {
            for seed in 0..5 {
                let inst = t(&mut rng(seed));
                let support = format!("{} {}", inst.context, inst.question);
                let ctx_ents = extract_entities(&support);
                for s in &inst.answer_sentences {
                    for e in extract_entities(s) {
                        let v = entity_verdict(&e, &ctx_ents);
                        assert_eq!(
                            v,
                            EntityVerdict::Supported,
                            "{} (seed {seed}): entity {:?} in {:?} is {v:?}",
                            inst.topic,
                            e.kind,
                            s
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parameter_sampling_varies_instances() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..10 {
            seen.insert(working_hours(&mut rng(seed)).context);
        }
        assert!(
            seen.len() >= 3,
            "sampling should vary contexts, got {}",
            seen.len()
        );
    }

    #[test]
    fn materialization_is_deterministic() {
        for t in all_topics().into_iter().chain(held_out_topics()) {
            assert_eq!(t(&mut rng(9)), t(&mut rng(9)));
        }
    }
}
