//! Telemetry federation: merge per-member metric snapshots into one
//! fleet-level view with deterministic label ordering.
//!
//! Each cluster member owns its own sink (so hot-path updates never cross
//! a member boundary); the router periodically — or at end of run —
//! collects [`MetricsSnapshot`]s and merges them here:
//!
//! - **counters** with identical `(name, labels)` sum across members;
//! - **gauges** keep member identity: a `member="<source>"` label is
//!   added, because summing last-written values (queue depths, view bits)
//!   would fabricate a number nobody observed;
//! - **histograms** with identical `(name, labels)` **and** identical
//!   bucket layouts merge bucket-wise (cumulative counts, sums, and totals
//!   add); layout mismatches degrade to member-labeled series rather than
//!   guessing a rebinning.
//!
//! The merged snapshot is sorted by `(family, label set)`, so the
//! Prometheus exposition and the JSON form are bitwise-stable across runs.

use std::collections::BTreeMap;

use crate::metrics::{Label, MetricsSnapshot, SeriesSnapshot};

/// A collection of per-member snapshots awaiting a merge.
#[derive(Debug, Default)]
pub struct FederatedRegistry {
    sources: Vec<(String, MetricsSnapshot)>,
}

/// Sorted `(name, labels)` key identifying one merged series.
fn series_key(s: &SeriesSnapshot) -> (String, Vec<(String, String)>) {
    (
        s.name.clone(),
        s.labels
            .iter()
            .map(|l| (l.name.clone(), l.value.clone()))
            .collect(),
    )
}

/// Insert a `member="<source>"` label at its sorted position.
fn with_member_label(mut labels: Vec<Label>, source: &str) -> Vec<Label> {
    let label = Label {
        name: "member".to_string(),
        value: source.to_string(),
    };
    let at = labels
        .iter()
        .position(|l| (l.name.as_str(), l.value.as_str()) > ("member", source))
        .unwrap_or(labels.len());
    labels.insert(at, label);
    labels
}

/// Whether two histogram series share a bucket layout (same `le` bounds).
fn same_layout(a: &SeriesSnapshot, b: &SeriesSnapshot) -> bool {
    a.buckets.len() == b.buckets.len()
        && a.buckets.iter().zip(&b.buckets).all(|(x, y)| x.le == y.le)
}

impl FederatedRegistry {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one member's snapshot under its source name (e.g. `s3r1`,
    /// `router`). Insertion order is the tiebreak-free merge order, so
    /// callers should add members in a fixed order.
    pub fn add(&mut self, source: &str, snapshot: MetricsSnapshot) {
        self.sources.push((source.to_string(), snapshot));
    }

    /// Number of member snapshots added.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether no snapshots have been added.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Merge every added snapshot into one fleet snapshot.
    pub fn merge(&self) -> MetricsSnapshot {
        type Key = (String, Vec<(String, String)>);
        let mut merged: BTreeMap<Key, SeriesSnapshot> = BTreeMap::new();
        let mut member_kept: Vec<SeriesSnapshot> = Vec::new();
        for (source, snapshot) in &self.sources {
            for series in &snapshot.series {
                match series.kind.as_str() {
                    "gauge" => {
                        let mut kept = series.clone();
                        kept.labels = with_member_label(kept.labels, source);
                        member_kept.push(kept);
                    }
                    "counter" => {
                        merged
                            .entry(series_key(series))
                            .and_modify(|m| m.value += series.value)
                            .or_insert_with(|| series.clone());
                    }
                    _ => {
                        let key = series_key(series);
                        match merged.get_mut(&key) {
                            Some(m) if same_layout(m, series) => {
                                for (mb, sb) in m.buckets.iter_mut().zip(&series.buckets) {
                                    mb.count += sb.count;
                                }
                                m.value += series.value;
                                m.count += series.count;
                            }
                            Some(_) => {
                                // Layout clash: keep this member's series
                                // under its own identity instead of
                                // rebinning.
                                let mut kept = series.clone();
                                kept.labels = with_member_label(kept.labels, source);
                                member_kept.push(kept);
                            }
                            None => {
                                merged.insert(key, series.clone());
                            }
                        }
                    }
                }
            }
        }
        let mut series: Vec<SeriesSnapshot> = merged.into_values().collect();
        series.extend(member_kept);
        series.sort_by(|a, b| {
            a.name.cmp(&b.name).then_with(|| {
                let ka: Vec<_> = a.labels.iter().map(|l| (&l.name, &l.value)).collect();
                let kb: Vec<_> = b.labels.iter().map(|l| (&l.name, &l.value)).collect();
                ka.cmp(&kb)
            })
        });
        MetricsSnapshot { series }
    }

    /// Prometheus-style exposition of the merged fleet snapshot (`# TYPE`
    /// per family; snapshots carry no help text). Label values are escaped
    /// per the Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        let merged = self.merge();
        let mut out = String::new();
        let mut last_family = String::new();
        for series in &merged.series {
            if series.name != last_family {
                out.push_str(&format!("# TYPE {} {}\n", series.name, series.kind));
                last_family.clone_from(&series.name);
            }
            match series.kind.as_str() {
                "histogram" => {
                    for bucket in &series.buckets {
                        let mut labels = series.labels.clone();
                        labels.push(Label {
                            name: "le".to_string(),
                            value: bucket.le.clone(),
                        });
                        labels.sort_by(|a, b| a.name.cmp(&b.name).then(a.value.cmp(&b.value)));
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            series.name,
                            render_labels(&labels),
                            bucket.count
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        series.name,
                        render_labels(&series.labels),
                        series.value
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        series.name,
                        render_labels(&series.labels),
                        series.count
                    ));
                }
                _ => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        series.name,
                        render_labels(&series.labels),
                        series.value
                    ));
                }
            }
        }
        out
    }
}

/// `{k="v",...}` with Prometheus escaping, empty for no labels.
fn render_labels(labels: &[Label]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|l| {
            format!(
                "{}=\"{}\"",
                l.name,
                l.value
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    format!("{{{}}}", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn member(outcomes: u64, depth: f64, lat: &[f64]) -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("hallu_outcomes_total", "o", &[("outcome", "served")])
            .add(outcomes);
        r.gauge("hallu_queue_depth", "d", &[]).set(depth);
        let h = r.histogram("hallu_latency_ms", "l", &[], &[10.0, 100.0]);
        for v in lat {
            h.observe(*v);
        }
        r.snapshot()
    }

    #[test]
    fn counters_sum_gauges_keep_identity_histograms_merge_bucketwise() {
        let mut fed = FederatedRegistry::new();
        fed.add("s0r0", member(3, 2.0, &[5.0, 50.0]));
        fed.add("s1r0", member(4, 7.0, &[5.0, 500.0]));
        let merged = fed.merge();
        assert_eq!(
            merged.value("hallu_outcomes_total", &[("outcome", "served")]),
            Some(7.0),
            "counters sum"
        );
        assert_eq!(
            merged.value("hallu_queue_depth", &[("member", "s0r0")]),
            Some(2.0),
            "gauges keep member identity"
        );
        assert_eq!(
            merged.value("hallu_queue_depth", &[("member", "s1r0")]),
            Some(7.0)
        );
        let hist = merged
            .series
            .iter()
            .find(|s| s.name == "hallu_latency_ms")
            .unwrap();
        assert_eq!(hist.count, 4, "histogram totals add");
        assert_eq!(
            hist.buckets.iter().map(|b| b.count).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "cumulative buckets add pairwise"
        );
    }

    #[test]
    fn merge_order_is_deterministic_and_sorted() {
        let mut fed = FederatedRegistry::new();
        fed.add("s1r0", member(1, 1.0, &[]));
        fed.add("s0r0", member(1, 1.0, &[]));
        let merged = fed.merge();
        let names: Vec<(&str, Vec<(&str, &str)>)> = merged
            .series
            .iter()
            .map(|s| {
                (
                    s.name.as_str(),
                    s.labels
                        .iter()
                        .map(|l| (l.name.as_str(), l.value.as_str()))
                        .collect(),
                )
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "series sorted by (family, labels)");
        let page_a = fed.render_prometheus();
        let page_b = fed.render_prometheus();
        assert_eq!(page_a, page_b);
        assert!(page_a.contains("# TYPE hallu_outcomes_total counter"));
        assert!(page_a.contains("hallu_outcomes_total{outcome=\"served\"} 2"));
        assert!(page_a.contains("hallu_queue_depth{member=\"s0r0\"} 1"));
    }

    #[test]
    fn bucket_layout_mismatch_degrades_to_member_labels() {
        let r0 = MetricsRegistry::new();
        r0.histogram("hallu_h_ms", "h", &[], &[10.0]).observe(1.0);
        let r1 = MetricsRegistry::new();
        r1.histogram("hallu_h_ms", "h", &[], &[20.0]).observe(1.0);
        let mut fed = FederatedRegistry::new();
        fed.add("s0r0", r0.snapshot());
        fed.add("s1r0", r1.snapshot());
        let merged = fed.merge();
        let series: Vec<&SeriesSnapshot> = merged
            .series
            .iter()
            .filter(|s| s.name == "hallu_h_ms")
            .collect();
        assert_eq!(series.len(), 2, "no rebinning guess: {series:?}");
        assert!(series.iter().any(|s| s
            .labels
            .iter()
            .any(|l| l.name == "member" && l.value == "s1r0")));
    }

    #[test]
    fn prometheus_page_escapes_label_values() {
        let r = MetricsRegistry::new();
        r.counter("hallu_esc_total", "e", &[("q", "a\"b\\c\nd")])
            .inc();
        let mut fed = FederatedRegistry::new();
        fed.add("router", r.snapshot());
        let page = fed.render_prometheus();
        assert!(
            page.contains("q=\"a\\\"b\\\\c\\nd\""),
            "escaped backslash, quote, newline: {page}"
        );
        assert_eq!(page.lines().count(), 2, "no raw newline may split a line");
    }
}
