//! Per-request flight recorder.
//!
//! One [`FlightRecord`] captures the full decision trail of a single
//! request — retrieval, per-sentence per-model raw scores, z-score inputs,
//! retry/breaker/hedge events, admission outcome, final verdict — as a
//! bounded ring of typed events. The record answers "why did this request
//! abstain and what did it cost" from a JSON dump, without a debugger.
//!
//! Bounds: at most [`MAX_FLIGHT_EVENTS`] events per record (oldest dropped,
//! with a `dropped_events` count so truncation is visible) and the sink
//! keeps the last [`MAX_FLIGHT_RECORDS`] completed records.

use serde::{Deserialize, Serialize};

/// Per-record event cap; oldest events are dropped beyond this.
pub const MAX_FLIGHT_EVENTS: usize = 256;

/// Completed records retained by the sink; oldest dropped beyond this.
pub const MAX_FLIGHT_RECORDS: usize = 32;

/// One `key=value` annotation on a flight event. Values stay stringly so
/// the vendored serde derive (no generics) can carry anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Annotation key.
    pub key: String,
    /// Annotation value, pre-rendered.
    pub value: String,
}

/// One step in the decision trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// What happened (e.g. `cell_score`, `breaker_trip`, `shed`).
    pub what: String,
    /// Timestamp from the bound [`crate::TimeSource`].
    pub at_ms: f64,
    /// Annotations.
    pub fields: Vec<Field>,
}

/// The full decision trail of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Request identifier (serving request id, or a caller-chosen label).
    pub request: String,
    /// When recording began.
    pub opened_ms: f64,
    /// When the record was sealed.
    pub closed_ms: f64,
    /// Final outcome label (e.g. `served`, `abstained`, `shed:QueueFull`).
    pub outcome: String,
    /// The trail, oldest first (after any drops).
    pub events: Vec<FlightEvent>,
    /// Events discarded because the record hit [`MAX_FLIGHT_EVENTS`].
    pub dropped_events: u64,
}

impl FlightRecord {
    pub(crate) fn open(request: &str, now_ms: f64) -> Self {
        Self {
            request: request.to_string(),
            opened_ms: now_ms,
            closed_ms: now_ms,
            outcome: String::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    pub(crate) fn push(&mut self, what: &str, now_ms: f64, fields: &[(&str, String)]) {
        if self.events.len() >= MAX_FLIGHT_EVENTS {
            self.events.remove(0);
            self.dropped_events += 1;
        }
        self.events.push(FlightEvent {
            what: what.to_string(),
            at_ms: now_ms,
            fields: fields
                .iter()
                .map(|(k, v)| Field {
                    key: k.to_string(),
                    value: v.clone(),
                })
                .collect(),
        });
    }

    /// Events whose `what` equals `name`.
    pub fn events_named(&self, name: &str) -> Vec<&FlightEvent> {
        self.events.iter().filter(|e| e.what == name).collect()
    }

    /// The value of `key` on the first event named `what`, if present.
    pub fn field(&self, what: &str, key: &str) -> Option<&str> {
        self.events
            .iter()
            .find(|e| e.what == what)?
            .fields
            .iter()
            .find(|f| f.key == key)
            .map(|f| f.value.as_str())
    }
}

/// Flight storage inside a sink: one in-progress record (the serving loop
/// is sequential, so a single current slot suffices) plus a bounded list
/// of completed records.
#[derive(Debug, Default)]
pub(crate) struct FlightStore {
    pub(crate) current: Option<FlightRecord>,
    completed: Vec<FlightRecord>,
}

impl FlightStore {
    /// Begin recording `request`. An unfinished previous record is sealed
    /// with outcome `interrupted` rather than lost.
    pub(crate) fn begin(&mut self, request: &str, now_ms: f64) {
        if let Some(mut stale) = self.current.take() {
            stale.outcome = "interrupted".to_string();
            stale.closed_ms = now_ms;
            self.push_completed(stale);
        }
        self.current = Some(FlightRecord::open(request, now_ms));
    }

    pub(crate) fn push(&mut self, what: &str, now_ms: f64, fields: &[(&str, String)]) {
        if let Some(record) = self.current.as_mut() {
            record.push(what, now_ms, fields);
        }
    }

    /// Seal the current record with its final `outcome`.
    pub(crate) fn end(&mut self, outcome: &str, now_ms: f64) {
        if let Some(mut record) = self.current.take() {
            record.outcome = outcome.to_string();
            record.closed_ms = now_ms;
            self.push_completed(record);
        }
    }

    fn push_completed(&mut self, record: FlightRecord) {
        if self.completed.len() >= MAX_FLIGHT_RECORDS {
            self.completed.remove(0);
        }
        self.completed.push(record);
    }

    pub(crate) fn completed(&self) -> Vec<FlightRecord> {
        self.completed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_capture_the_trail() {
        let mut store = FlightStore::default();
        store.begin("req-1", 10.0);
        store.push("admission", 10.0, &[("queue_depth", "3".to_string())]);
        store.push("cell_score", 12.0, &[("model", "m0".to_string())]);
        store.end("served", 20.0);

        let done = store.completed();
        assert_eq!(done.len(), 1);
        let r = &done[0];
        assert_eq!(r.request, "req-1");
        assert_eq!(r.outcome, "served");
        assert_eq!((r.opened_ms, r.closed_ms), (10.0, 20.0));
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.field("admission", "queue_depth"), Some("3"));
        assert_eq!(r.events_named("cell_score").len(), 1);
        assert_eq!(r.dropped_events, 0);
    }

    #[test]
    fn push_without_begin_is_a_noop() {
        let mut store = FlightStore::default();
        store.push("stray", 0.0, &[]);
        store.end("x", 0.0);
        assert!(store.completed().is_empty());
    }

    #[test]
    fn event_ring_drops_oldest_and_counts() {
        let mut store = FlightStore::default();
        store.begin("big", 0.0);
        for i in 0..(MAX_FLIGHT_EVENTS + 5) {
            store.push("tick", i as f64, &[]);
        }
        store.end("served", 999.0);
        let r = &store.completed()[0];
        assert_eq!(r.events.len(), MAX_FLIGHT_EVENTS);
        assert_eq!(r.dropped_events, 5);
        assert_eq!(r.events[0].at_ms, 5.0, "oldest events were dropped");
    }

    #[test]
    fn begin_seals_unfinished_record_as_interrupted() {
        let mut store = FlightStore::default();
        store.begin("a", 0.0);
        store.begin("b", 1.0);
        store.end("served", 2.0);
        let done = store.completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].request, "a");
        assert_eq!(done[0].outcome, "interrupted");
        assert_eq!(done[1].request, "b");
    }

    #[test]
    fn completed_list_is_bounded() {
        let mut store = FlightStore::default();
        for i in 0..(MAX_FLIGHT_RECORDS + 3) {
            store.begin(&format!("r{i}"), i as f64);
            store.end("served", i as f64);
        }
        let done = store.completed();
        assert_eq!(done.len(), MAX_FLIGHT_RECORDS);
        assert_eq!(done[0].request, "r3");
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut store = FlightStore::default();
        store.begin("req-9", 1.0);
        store.push("verdict", 2.0, &[("score", "0.41".to_string())]);
        store.end("abstained", 3.0);
        let record = store.completed().remove(0);
        let text = serde_json::to_string_pretty(&record).expect("serialize");
        let back: FlightRecord = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, record);
    }
}
