//! # hallu-obs — unified observability for the detection + serving stack
//!
//! Three complementary views of one run, all behind a single cheap-clone
//! [`Obs`] handle:
//!
//! - **Metrics** ([`metrics`]): a lock-cheap registry of counters, gauges,
//!   and fixed-bucket histograms with label sets, rendered as a
//!   Prometheus-style text page or a deterministic JSON snapshot. Answers
//!   "how often / how much, in aggregate".
//! - **Spans** ([`span`]): structured begin/end regions with nested
//!   parentage and point-in-time events, timestamped by a host-bound
//!   [`TimeSource`] so virtual-clock runs stay deterministic. Answers
//!   "where did the time go on this path".
//! - **Flight recorder** ([`flight`]): a bounded per-request ring of typed
//!   events capturing the full decision trail — per-sentence per-model
//!   scores, z-score inputs, retries, breaker trips, hedges, admission and
//!   shed decisions — sealed with the final outcome and dumpable as JSON.
//!   Answers "why did *this* request abstain and what did it cost".
//!
//! Three cluster-scale planes build on those primitives:
//!
//! - **Tracing** ([`trace`]): deterministic [`TraceContext`]s propagated
//!   across member boundaries, a stitcher assembling per-member span
//!   fragments into one causal tree per request, and a critical-path
//!   extractor decomposing request latency into named segments.
//! - **Federation** ([`federate`]): merge per-member metric snapshots
//!   into one fleet-level Prometheus page / JSON snapshot.
//! - **SLOs** ([`slo`]): availability/latency objectives with
//!   multi-window burn-rate alerting on the virtual clock, emitting
//!   golden-testable alert timelines.
//!
//! ## Contract
//!
//! 1. **Zero overhead off**: `Obs::off()` makes every call a branch on a
//!    `None`; nothing allocates, nothing locks.
//! 2. **Bitwise neutral**: instrumentation never influences scores or
//!    verdicts; instrumented and uninstrumented runs are bit-identical.
//! 3. **Deterministic**: under a virtual clock, two identical runs produce
//!    identical exposition pages, snapshots, span trees, and flight
//!    records. Hot-path metric updates commute (integer atomics,
//!    fixed-point histogram sums); spans and flight events are only
//!    recorded on sequential code paths.
//!
//! There is no process-global sink — hosts thread an [`Obs`] handle through
//! `with_obs` builders, which is what keeps concurrent tests isolated.

pub mod federate;
pub mod flight;
pub mod metrics;
pub mod sink;
pub mod slo;
pub mod span;
pub mod time;
pub mod trace;

pub use federate::FederatedRegistry;
pub use flight::{Field, FlightEvent, FlightRecord, MAX_FLIGHT_EVENTS, MAX_FLIGHT_RECORDS};
pub use metrics::{
    BucketCount, Counter, DecayedWindow, Gauge, Histogram, Label, MetricKind, MetricsRegistry,
    MetricsSnapshot, SeriesSnapshot, DEFAULT_LATENCY_BUCKETS_MS, SCORE_BUCKETS,
};
pub use sink::{Obs, ObsSink, SpanGuard};
pub use slo::{AlertEvent, AlertKind, AlertSeverity, BurnWindow, SloConfig, SloEngine, SloKind};
pub use span::{span_tree, EventRecord, SpanRecord, MAX_SPANS};
pub use time::{TimeSource, ZeroTime};
pub use trace::{
    critical_path, render_trace_tree, stitch, CriticalPath, Segment, SegmentKind, SpanNode,
    TraceContext, TraceTree,
};
