//! Lock-cheap metrics registry: counters, gauges, and fixed-bucket
//! histograms with typed keys and label sets.
//!
//! Registration takes a lock (once, at component construction); the hot
//! path — [`Counter::add`], [`Gauge::set`], [`Histogram::observe`] — is a
//! handful of relaxed atomic operations on a pre-resolved cell, or a no-op
//! when the handle is disconnected (the disabled-sink case).
//!
//! # Determinism
//!
//! Every mutation commutes: counters and histogram bucket/count cells are
//! integer adds, and the histogram *sum* is accumulated in fixed-point
//! micro-units (an integer add) rather than floating point, so two runs
//! that perform the same multiset of operations — regardless of thread
//! interleaving — produce bitwise-identical snapshots. Gauges are
//! last-writer-wins and belong on sequential paths only.
//!
//! # Naming scheme
//!
//! `hallu_<subsystem>_<what>[_total|_ms]` with snake-case label keys; see
//! DESIGN.md §9 for the full convention.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

/// Default latency buckets (simulated milliseconds) shared by every `_ms`
/// histogram in the workspace, so exposition pages line up across
/// subsystems.
pub const DEFAULT_LATENCY_BUCKETS_MS: [f64; 11] = [
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
];

/// Buckets for scores in (0, 1).
pub const SCORE_BUCKETS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Fixed-point scale for histogram sums: 1 unit = 1/1000 of the observed
/// value. Integer accumulation keeps parallel observation deterministic.
const SUM_SCALE: f64 = 1000.0;

/// What a metric family is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-written value.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// A sorted `(key, value)` label set identifying one series in a family.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LabelSet(Vec<(String, String)>);

impl LabelSet {
    /// Build from pairs; keys are sorted so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` name the same series.
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        Self(v)
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Prometheus-style `{k="v",...}` suffix, empty for the empty set.
    fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| {
                format!(
                    "{k}=\"{}\"",
                    v.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                )
            })
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// Interior cell of a histogram series.
#[derive(Debug)]
struct HistCell {
    /// Upper bounds of the finite buckets, ascending. An implicit `+Inf`
    /// bucket follows.
    bounds: Vec<f64>,
    /// One count per finite bound, plus the `+Inf` bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Fixed-point sum (units of 1/1000) so parallel adds commute exactly.
    sum_milli: AtomicU64,
}

impl HistCell {
    fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|x| x.is_finite()).collect();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum_milli: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let milli = (v.abs() * SUM_SCALE).round() as u64;
        self.sum_milli.fetch_add(milli, Ordering::Relaxed);
    }

    fn sum(&self) -> f64 {
        self.sum_milli.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }
}

#[derive(Debug)]
enum Cell {
    Counter(AtomicU64),
    /// f64 bits of the last written value.
    Gauge(AtomicU64),
    Histogram(HistCell),
}

/// A live, incrementable counter handle. `Counter::default()` is
/// disconnected: every operation is a no-op. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<Cell>>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            if let Cell::Counter(c) = cell.as_ref() {
                c.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Current value (0 when disconnected).
    pub fn get(&self) -> u64 {
        match &self.0 {
            Some(cell) => match cell.as_ref() {
                Cell::Counter(c) => c.load(Ordering::Relaxed),
                _ => 0,
            },
            None => 0,
        }
    }
}

/// A live gauge handle; disconnected by default, like [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<Cell>>);

impl Gauge {
    /// Set the value (non-finite writes are ignored).
    pub fn set(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if let Some(cell) = &self.0 {
            if let Cell::Gauge(g) = cell.as_ref() {
                g.store(v.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// Add `delta` to the current value (may be negative). Non-finite
    /// deltas are ignored, as are updates that would make the gauge
    /// non-finite. Useful for occupancy gauges maintained by +1/-1 deltas
    /// (e.g. pages of a KV pool) where recomputing the absolute value per
    /// event would need extra locking.
    pub fn add(&self, delta: f64) {
        if !delta.is_finite() {
            return;
        }
        if let Some(cell) = &self.0 {
            if let Cell::Gauge(g) = cell.as_ref() {
                let mut current = g.load(Ordering::Relaxed);
                loop {
                    let next = f64::from_bits(current) + delta;
                    if !next.is_finite() {
                        return;
                    }
                    match g.compare_exchange_weak(
                        current,
                        next.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(actual) => current = actual,
                    }
                }
            }
        }
    }

    /// Current value (0.0 when disconnected).
    pub fn get(&self) -> f64 {
        match &self.0 {
            Some(cell) => match cell.as_ref() {
                Cell::Gauge(g) => f64::from_bits(g.load(Ordering::Relaxed)),
                _ => 0.0,
            },
            None => 0.0,
        }
    }
}

/// A live fixed-bucket histogram handle; disconnected by default.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Cell>>);

impl Histogram {
    /// Record one observation. NaN and infinities are dropped (a
    /// non-finite latency is a bug upstream, not a tail sample).
    pub fn observe(&self, v: f64) {
        if let Some(cell) = &self.0 {
            if let Cell::Histogram(h) = cell.as_ref() {
                h.observe(v);
            }
        }
    }

    /// Sum of observations so far (0 when disconnected). Together with
    /// [`count`](Self::count) this gives a live mean — e.g. the cluster
    /// router reads a member's service-time series to spot slow shards
    /// without waiting for a snapshot.
    pub fn sum(&self) -> f64 {
        match &self.0 {
            Some(cell) => match cell.as_ref() {
                Cell::Histogram(h) => h.sum(),
                _ => 0.0,
            },
            None => 0.0,
        }
    }

    /// Observations so far (0 when disconnected).
    pub fn count(&self) -> u64 {
        match &self.0 {
            Some(cell) => match cell.as_ref() {
                Cell::Histogram(h) => h.count.load(Ordering::Relaxed),
                _ => 0,
            },
            None => 0,
        }
    }

    /// Finite bucket upper bounds, ascending (empty when disconnected).
    pub fn bucket_bounds(&self) -> Vec<f64> {
        match &self.0 {
            Some(cell) => match cell.as_ref() {
                Cell::Histogram(h) => h.bounds.clone(),
                _ => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Per-bucket (non-cumulative) observation counts, one per finite
    /// bound plus the trailing `+Inf` bucket (empty when disconnected).
    pub fn bucket_counts(&self) -> Vec<u64> {
        match &self.0 {
            Some(cell) => match cell.as_ref() {
                Cell::Histogram(h) => h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                _ => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Estimate the `q`-quantile of all observations so far from the
    /// bucket counts, interpolating linearly inside the crossing bucket.
    /// Observations in the `+Inf` bucket clamp to the last finite bound.
    /// Returns 0.0 when disconnected, empty, or `q` is not in `[0, 1]`.
    pub fn quantile_estimate(&self, q: f64) -> f64 {
        let counts: Vec<f64> = self.bucket_counts().iter().map(|&c| c as f64).collect();
        quantile_from_buckets(&self.bucket_bounds(), &counts, q)
    }
}

/// Shared quantile math over per-bucket masses (integer counts or decayed
/// weights). `bounds` are the finite upper bounds; `mass` has one entry per
/// bound plus the `+Inf` bucket.
fn quantile_from_buckets(bounds: &[f64], mass: &[f64], q: f64) -> f64 {
    if !(0.0..=1.0).contains(&q) || mass.len() != bounds.len() + 1 {
        return 0.0;
    }
    let total: f64 = mass.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let target = q * total;
    let mut cumulative = 0.0;
    for (i, &m) in mass.iter().enumerate() {
        let next = cumulative + m;
        if next >= target && m > 0.0 {
            // The crossing bucket: interpolate between its bounds. The
            // first bucket's lower bound is 0 (latencies are non-negative);
            // the +Inf bucket clamps to the last finite bound.
            let Some(&upper) = bounds.get(i) else {
                return bounds.last().copied().unwrap_or(0.0);
            };
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let fraction = ((target - cumulative) / m).clamp(0.0, 1.0);
            return lower + (upper - lower) * fraction;
        }
        cumulative = next;
    }
    bounds.last().copied().unwrap_or(0.0)
}

/// A recency-weighted window over a [`Histogram`]: each
/// [`refresh`](Self::refresh) multiplies the accumulated per-bucket mass by
/// `decay` and adds the observations that arrived since the previous
/// refresh. Old samples therefore fade geometrically instead of dragging
/// the signal forever — a shard that *was* slow stops looking slow a few
/// refreshes after it recovers, which is exactly what lifetime sums get
/// wrong.
///
/// The window is a plain value (no atomics): the caller decides the refresh
/// cadence, and under a virtual clock a fixed cadence makes every readout a
/// deterministic function of the run.
#[derive(Debug, Clone)]
pub struct DecayedWindow {
    hist: Histogram,
    decay: f64,
    prev: Vec<u64>,
    mass: Vec<f64>,
}

impl DecayedWindow {
    /// Wrap `hist`, retaining `decay` (clamped to `[0, 1)`) of the
    /// accumulated mass per refresh.
    pub fn new(hist: Histogram, decay: f64) -> Self {
        let buckets = hist.bucket_counts().len();
        Self {
            hist,
            decay: if decay.is_finite() {
                decay.clamp(0.0, 0.999_999)
            } else {
                0.0
            },
            prev: vec![0; buckets],
            mass: vec![0.0; buckets],
        }
    }

    /// Decay the window and fold in observations recorded since the last
    /// refresh.
    pub fn refresh(&mut self) {
        let now = self.hist.bucket_counts();
        if now.len() != self.prev.len() {
            // Disconnected handle or rebound series; restart cleanly.
            self.prev = vec![0; now.len()];
            self.mass = vec![0.0; now.len()];
        }
        for (i, (&n, p)) in now.iter().zip(self.prev.iter_mut()).enumerate() {
            let delta = n.saturating_sub(*p) as f64;
            self.mass[i] = self.mass[i] * self.decay + delta;
            *p = n;
        }
    }

    /// Total decayed mass currently in the window (an "effective
    /// observation count" for minimum-sample gates).
    pub fn mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Estimate the `q`-quantile of the decayed window, interpolated the
    /// same way as [`Histogram::quantile_estimate`]. 0.0 on an empty
    /// window.
    pub fn quantile_estimate(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.hist.bucket_bounds(), &self.mass, q)
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<LabelSet, Arc<Cell>>,
}

/// The registry: families keyed by name, series keyed by label set.
///
/// Registration is idempotent — asking for the same `(name, labels)` twice
/// returns handles to the same cell. Re-registering a name under a
/// different kind is a programming error; the registry stays consistent by
/// returning a disconnected handle rather than panicking.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// One label in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Label {
    /// Label key.
    pub name: String,
    /// Label value.
    pub value: String,
}

/// One histogram bucket in a snapshot. `le` is the Prometheus upper bound
/// (`"+Inf"` for the overflow bucket); `count` is cumulative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Upper bound, rendered as Prometheus renders it.
    pub le: String,
    /// Cumulative observations at or under `le`.
    pub count: u64,
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Family name.
    pub name: String,
    /// `counter` / `gauge` / `histogram`.
    pub kind: String,
    /// Sorted labels.
    pub labels: Vec<Label>,
    /// Counter or gauge value; for histograms, the sum.
    pub value: f64,
    /// Histogram buckets (empty for counters/gauges).
    pub buckets: Vec<BucketCount>,
    /// Histogram observation count (0 for counters/gauges).
    pub count: u64,
}

/// A point-in-time copy of every series, in deterministic (sorted) order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Every series, sorted by family name then label set.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// The value of `name` with exactly `labels` (order-insensitive), if
    /// that series exists.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let want = LabelSet::new(labels);
        self.series
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == want.0.len()
                    && s.labels
                        .iter()
                        .zip(want.pairs())
                        .all(|(l, (k, v))| &l.name == k && &l.value == v)
            })
            .map(|s| s.value)
    }

    /// Sum of `name` across all label sets (counter/gauge values, histogram
    /// sums).
    pub fn total(&self, name: &str) -> f64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        bounds: Option<&[f64]>,
    ) -> Option<Arc<Cell>> {
        let mut families = self.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            // kind clash: refuse the handle, keep the registry consistent
            return None;
        }
        let cell = family
            .series
            .entry(LabelSet::new(labels))
            .or_insert_with(|| {
                Arc::new(match kind {
                    MetricKind::Counter => Cell::Counter(AtomicU64::new(0)),
                    MetricKind::Gauge => Cell::Gauge(AtomicU64::new(0.0f64.to_bits())),
                    MetricKind::Histogram => Cell::Histogram(HistCell::new(
                        bounds.unwrap_or(&DEFAULT_LATENCY_BUCKETS_MS),
                    )),
                })
            });
        Some(Arc::clone(cell))
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.register(name, help, labels, MetricKind::Counter, None))
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.register(name, help, labels, MetricKind::Gauge, None))
    }

    /// Register (or look up) a histogram series with the given finite
    /// bucket bounds (an implicit `+Inf` bucket is appended).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        Histogram(self.register(name, help, labels, MetricKind::Histogram, Some(bounds)))
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` per family,
    /// one line per series, deterministic order.
    pub fn render_prometheus(&self) -> String {
        let families = self.lock();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, cell) in &family.series {
                match cell.as_ref() {
                    Cell::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            labels.render(),
                            c.load(Ordering::Relaxed)
                        ));
                    }
                    Cell::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            labels.render(),
                            f64::from_bits(g.load(Ordering::Relaxed))
                        ));
                    }
                    Cell::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bucket) in h.buckets.iter().enumerate() {
                            cumulative += bucket.load(Ordering::Relaxed);
                            let le = h
                                .bounds
                                .get(i)
                                .map_or_else(|| "+Inf".to_string(), f64::to_string);
                            let mut with_le = labels.clone();
                            with_le.0.push(("le".to_string(), le));
                            with_le.0.sort();
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                with_le.render()
                            ));
                        }
                        out.push_str(&format!("{name}_sum{} {}\n", labels.render(), h.sum()));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            labels.render(),
                            h.count.load(Ordering::Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }

    /// Deterministic point-in-time snapshot of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.lock();
        let mut series = Vec::new();
        for (name, family) in families.iter() {
            for (labels, cell) in &family.series {
                let labels: Vec<Label> = labels
                    .pairs()
                    .iter()
                    .map(|(k, v)| Label {
                        name: k.clone(),
                        value: v.clone(),
                    })
                    .collect();
                let (value, buckets, count) = match cell.as_ref() {
                    Cell::Counter(c) => (c.load(Ordering::Relaxed) as f64, Vec::new(), 0),
                    Cell::Gauge(g) => (f64::from_bits(g.load(Ordering::Relaxed)), Vec::new(), 0),
                    Cell::Histogram(h) => {
                        let mut cumulative = 0u64;
                        let buckets = h
                            .buckets
                            .iter()
                            .enumerate()
                            .map(|(i, b)| {
                                cumulative += b.load(Ordering::Relaxed);
                                BucketCount {
                                    le: h
                                        .bounds
                                        .get(i)
                                        .map_or_else(|| "+Inf".to_string(), f64::to_string),
                                    count: cumulative,
                                }
                            })
                            .collect();
                        (h.sum(), buckets, h.count.load(Ordering::Relaxed))
                    }
                };
                series.push(SeriesSnapshot {
                    name: name.clone(),
                    kind: family.kind.as_str().to_string(),
                    labels,
                    value,
                    buckets,
                    count,
                });
            }
        }
        MetricsSnapshot { series }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disconnected_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn gauge_add_applies_signed_deltas() {
        let r = MetricsRegistry::new();
        let g = r.gauge("hallu_pool_pages", "pages", &[]);
        g.add(3.0);
        g.add(2.0);
        g.add(-4.0);
        assert_eq!(g.get(), 1.0);
        g.add(f64::NAN);
        g.add(f64::INFINITY);
        assert_eq!(g.get(), 1.0, "non-finite deltas are ignored");
        let disconnected = Gauge::default();
        disconnected.add(5.0);
        assert_eq!(disconnected.get(), 0.0);
    }

    #[test]
    fn counters_accumulate_and_share_cells() {
        let r = MetricsRegistry::new();
        let a = r.counter("hallu_x_total", "x", &[("model", "m0")]);
        let b = r.counter("hallu_x_total", "x", &[("model", "m0")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3, "same (name, labels) shares one cell");
        let other = r.counter("hallu_x_total", "x", &[("model", "m1")]);
        other.inc();
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("hallu_y_total", "y", &[("a", "1"), ("b", "2")]);
        let b = r.counter("hallu_y_total", "y", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn kind_clash_yields_disconnected_handle() {
        let r = MetricsRegistry::new();
        let c = r.counter("hallu_z", "z", &[]);
        c.inc();
        let g = r.gauge("hallu_z", "z", &[]);
        g.set(7.0);
        assert_eq!(g.get(), 0.0, "clashing kind must not corrupt the family");
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_fixed_point_sum() {
        let r = MetricsRegistry::new();
        let h = r.histogram("hallu_lat_ms", "lat", &[], &[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 0.25] {
            h.observe(v);
        }
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 4, "non-finite observations are dropped");
        let snap = r.snapshot();
        let s = &snap.series[0];
        assert_eq!(s.kind, "histogram");
        assert_eq!(
            s.buckets,
            vec![
                BucketCount {
                    le: "1".to_string(),
                    count: 2
                },
                BucketCount {
                    le: "10".to_string(),
                    count: 3
                },
                BucketCount {
                    le: "+Inf".to_string(),
                    count: 4
                },
            ]
        );
        assert_eq!(s.value, 55.75, "fixed-point sum is exact for 1/1000 units");
        assert_eq!(s.count, 4);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter("hallu_a_total", "counts a", &[("m", "x")]).add(3);
        r.gauge("hallu_depth", "queue depth", &[]).set(2.0);
        r.histogram("hallu_t_ms", "time", &[], &[5.0]).observe(3.0);
        let page = r.render_prometheus();
        assert!(page.contains("# HELP hallu_a_total counts a"));
        assert!(page.contains("# TYPE hallu_a_total counter"));
        assert!(page.contains("hallu_a_total{m=\"x\"} 3"));
        assert!(page.contains("# TYPE hallu_depth gauge"));
        assert!(page.contains("hallu_depth 2"));
        assert!(page.contains("hallu_t_ms_bucket{le=\"5\"} 1"));
        assert!(page.contains("hallu_t_ms_bucket{le=\"+Inf\"} 1"));
        assert!(page.contains("hallu_t_ms_sum 3"));
        assert!(page.contains("hallu_t_ms_count 1"));
        assert!(!page.contains("NaN"), "exposition must never carry NaN");
    }

    #[test]
    fn snapshot_is_deterministic_under_parallel_updates() {
        let run = || {
            let r = MetricsRegistry::new();
            let c = r.counter("hallu_par_total", "p", &[]);
            let h = r.histogram("hallu_par_ms", "p", &[], &DEFAULT_LATENCY_BUCKETS_MS);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let c = c.clone();
                    let h = h.clone();
                    scope.spawn(move || {
                        for i in 0..250 {
                            c.inc();
                            h.observe(f64::from(i % 97) + 0.125 * f64::from(t));
                        }
                    });
                }
            });
            r.snapshot()
        };
        assert_eq!(run(), run(), "commuting updates make snapshots bitwise");
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = MetricsRegistry::new();
        r.counter("hallu_k_total", "k", &[("m", "a")]).add(2);
        r.counter("hallu_k_total", "k", &[("m", "b")]).add(5);
        let snap = r.snapshot();
        assert_eq!(snap.value("hallu_k_total", &[("m", "a")]), Some(2.0));
        assert_eq!(snap.value("hallu_k_total", &[("m", "c")]), None);
        assert_eq!(snap.total("hallu_k_total"), 7.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = MetricsRegistry::new();
        r.counter("hallu_j_total", "j", &[("m", "a")]).add(4);
        r.histogram("hallu_j_ms", "j", &[], &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let text = serde_json::to_string_pretty(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn quantile_estimate_interpolates_within_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("hallu_q_ms", "q", &[], &[10.0, 100.0, 1000.0]);
        assert_eq!(h.quantile_estimate(0.5), 0.0, "empty histogram");
        for _ in 0..50 {
            h.observe(5.0); // bucket (0, 10]
        }
        for _ in 0..50 {
            h.observe(500.0); // bucket (100, 1000]
        }
        // Median sits exactly at the end of the first bucket.
        assert_eq!(h.quantile_estimate(0.5), 10.0);
        // p75 is halfway through the (100, 1000] bucket's mass.
        assert_eq!(h.quantile_estimate(0.75), 550.0);
        // p100 clamps to the last finite bound.
        assert_eq!(h.quantile_estimate(1.0), 1000.0);
        assert_eq!(h.quantile_estimate(-0.1), 0.0, "out-of-range q");
        // +Inf-bucket observations clamp to the last finite bound.
        h.observe(5000.0);
        assert_eq!(h.quantile_estimate(1.0), 1000.0);
        assert_eq!(Histogram::default().quantile_estimate(0.5), 0.0);
    }

    #[test]
    fn decayed_window_forgets_old_latency_regimes() {
        let r = MetricsRegistry::new();
        let h = r.histogram("hallu_w_ms", "w", &[], &[10.0, 100.0, 1000.0]);
        let mut w = DecayedWindow::new(h.clone(), 0.5);
        // Slow regime: every observation lands in (100, 1000].
        for _ in 0..64 {
            h.observe(800.0);
        }
        w.refresh();
        assert!(w.quantile_estimate(0.9) > 100.0, "slow regime visible");
        // Recovery: fast observations each refresh while the old mass
        // halves away. Lifetime quantiles stay poisoned by history; the
        // window converges to the new regime.
        for _ in 0..8 {
            for _ in 0..16 {
                h.observe(2.0);
            }
            w.refresh();
        }
        assert!(
            w.quantile_estimate(0.9) <= 10.0,
            "window must forget the slow regime: p90={}",
            w.quantile_estimate(0.9)
        );
        assert!(
            h.quantile_estimate(0.9) > 100.0,
            "lifetime quantile stays dominated by the slow burst"
        );
        assert!(w.mass() > 0.0);
        // Refresh with no new observations keeps decaying the mass.
        let before = w.mass();
        w.refresh();
        assert!(w.mass() < before);
    }

    #[test]
    fn quantile_estimate_single_sample_and_extreme_q() {
        let r = MetricsRegistry::new();
        let h = r.histogram("hallu_q1_ms", "q", &[], &[10.0, 100.0]);
        h.observe(5.0);
        // One sample in (0, 10]: q interpolates across that bucket alone.
        assert_eq!(
            h.quantile_estimate(0.0),
            0.0,
            "q=0 is the bucket's lower bound"
        );
        assert_eq!(h.quantile_estimate(0.5), 5.0);
        assert_eq!(
            h.quantile_estimate(1.0),
            10.0,
            "q=1 is the bucket's upper bound"
        );
        assert_eq!(h.quantile_estimate(1.1), 0.0, "q out of range");
    }

    #[test]
    fn quantile_estimate_with_only_overflow_mass_clamps() {
        let r = MetricsRegistry::new();
        let h = r.histogram("hallu_q2_ms", "q", &[], &[10.0, 100.0]);
        for _ in 0..5 {
            h.observe(5_000.0); // all mass in +Inf
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(
                h.quantile_estimate(q),
                100.0,
                "overflow-only mass clamps to the last finite bound at q={q}"
            );
        }
    }

    #[test]
    fn decayed_window_edge_cases() {
        // Empty window: no mass, quantiles are 0 at every q.
        let r = MetricsRegistry::new();
        let h = r.histogram("hallu_w2_ms", "w", &[], &[10.0, 100.0]);
        let mut w = DecayedWindow::new(h.clone(), 0.5);
        assert_eq!(w.mass(), 0.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(w.quantile_estimate(q), 0.0, "empty window at q={q}");
        }
        w.refresh();
        assert_eq!(w.mass(), 0.0, "refreshing an idle window adds nothing");

        // Single sample: behaves like the histogram's single-sample case.
        h.observe(5.0);
        w.refresh();
        assert_eq!(w.mass(), 1.0);
        assert_eq!(w.quantile_estimate(0.0), 0.0);
        assert_eq!(w.quantile_estimate(0.5), 5.0);
        assert_eq!(w.quantile_estimate(1.0), 10.0);

        // Overflow-bucket sample: clamps to the last finite bound.
        h.observe(9_999.0);
        w.refresh();
        assert_eq!(w.quantile_estimate(1.0), 100.0);

        // Disconnected handle: a window over it stays inert.
        let mut dw = DecayedWindow::new(Histogram::default(), 0.9);
        dw.refresh();
        assert_eq!(dw.mass(), 0.0);
        assert_eq!(dw.quantile_estimate(0.5), 0.0);
    }

    #[test]
    fn exposition_escapes_label_values() {
        let r = MetricsRegistry::new();
        r.counter("hallu_esc_total", "e", &[("q", "say \"hi\"\\path\nnext")])
            .inc();
        let page = r.render_prometheus();
        assert!(
            page.contains(r#"q="say \"hi\"\\path\nnext""#),
            "backslash, quote, and newline must be escaped: {page}"
        );
        assert_eq!(
            page.lines().count(),
            3,
            "a raw newline in a label value must not split the series line: {page}"
        );
    }

    #[test]
    fn label_sets_serialize_in_one_canonical_order() {
        let page_of = |pairs: &[(&str, &str)]| {
            let r = MetricsRegistry::new();
            r.counter("hallu_ord_total", "o", pairs).inc();
            r.render_prometheus()
        };
        let a = page_of(&[("zeta", "1"), ("alpha", "2"), ("mid", "3")]);
        let b = page_of(&[("mid", "3"), ("zeta", "1"), ("alpha", "2")]);
        assert_eq!(a, b, "registration order must not leak into the page");
        assert!(
            a.contains("hallu_ord_total{alpha=\"2\",mid=\"3\",zeta=\"1\"} 1"),
            "labels render sorted by key: {a}"
        );
        // Snapshots agree with the exposition's canonical order.
        let r = MetricsRegistry::new();
        r.counter("hallu_ord_total", "o", &[("zeta", "1"), ("alpha", "2")])
            .inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.series[0]
            .labels
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
