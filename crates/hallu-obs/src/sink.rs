//! The observability sink and the cheap-clone [`Obs`] handle.
//!
//! [`Obs`] is what instrumented components hold. It is either *off*
//! (`Obs::off()`, the default everywhere) — in which case every call is a
//! single branch on a `None` and allocates nothing — or connected to an
//! [`ObsSink`] that owns the metrics registry, span store, flight store,
//! and the bound [`TimeSource`].
//!
//! There is deliberately no process-global sink: tests and benchmarks
//! construct their own, so concurrent tests cannot cross-contaminate and
//! two virtual-clock runs compare bitwise.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use crate::flight::{FlightRecord, FlightStore};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::span::{SpanRecord, SpanStore};
use crate::time::{TimeSource, ZeroTime};
use crate::trace::TraceContext;

/// The sink: one registry + span store + flight store + time source.
#[derive(Debug)]
pub struct ObsSink {
    registry: MetricsRegistry,
    spans: Mutex<SpanStore>,
    flights: Mutex<FlightStore>,
    time: RwLock<Arc<dyn TimeSource>>,
}

impl std::fmt::Debug for dyn TimeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TimeSource")
    }
}

impl Default for ObsSink {
    fn default() -> Self {
        Self {
            registry: MetricsRegistry::new(),
            spans: Mutex::new(SpanStore::default()),
            flights: Mutex::new(FlightStore::default()),
            time: RwLock::new(Arc::new(ZeroTime)),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ObsSink {
    /// A fresh sink stamped by [`ZeroTime`] until a clock is bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn now_ms(&self) -> f64 {
        match self.time.read() {
            Ok(t) => t.now_ms(),
            Err(poisoned) => poisoned.into_inner().now_ms(),
        }
    }
}

/// Cheap-clone observability handle. `Obs::off()` (also `Obs::default()`)
/// is disconnected: every operation is a branch-and-return.
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<ObsSink>>);

/// RAII guard returned by [`Obs::span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sink) = &self.obs.0 {
            let now = sink.now_ms();
            lock(&sink.spans).close(self.id, now);
        }
    }
}

impl Obs {
    /// The disabled handle: zero-overhead, records nothing.
    pub fn off() -> Self {
        Self(None)
    }

    /// A handle connected to a fresh sink.
    pub fn new() -> Self {
        Self(Some(Arc::new(ObsSink::new())))
    }

    /// A fresh sink whose spans are stamped with a source identity (e.g.
    /// `s3r1` for shard 3 replica 1, `router`) — the member identity the
    /// trace stitcher reports.
    pub fn new_with_source(source: &str) -> Self {
        let obs = Self::new();
        if let Some(sink) = &obs.0 {
            lock(&sink.spans).source = source.to_string();
        }
        obs
    }

    /// Connect to an existing sink.
    pub fn with_sink(sink: Arc<ObsSink>) -> Self {
        Self(Some(sink))
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Bind the time source used to stamp spans, events, and flight
    /// records. No-op when disabled.
    pub fn bind_time(&self, time: Arc<dyn TimeSource>) {
        if let Some(sink) = &self.0 {
            match sink.time.write() {
                Ok(mut slot) => *slot = time,
                Err(poisoned) => *poisoned.into_inner() = time,
            }
        }
    }

    /// Current time from the bound source (0.0 when disabled).
    pub fn now_ms(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |s| s.now_ms())
    }

    // --- metrics ---

    /// Register (or look up) a counter series. Returns a disconnected
    /// handle when disabled.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.0
            .as_ref()
            .map_or_else(Counter::default, |s| s.registry.counter(name, help, labels))
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.0
            .as_ref()
            .map_or_else(Gauge::default, |s| s.registry.gauge(name, help, labels))
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        self.0.as_ref().map_or_else(Histogram::default, |s| {
            s.registry.histogram(name, help, labels, bounds)
        })
    }

    /// Prometheus-style exposition page (empty when disabled).
    pub fn render_prometheus(&self) -> String {
        self.0
            .as_ref()
            .map_or_else(String::new, |s| s.registry.render_prometheus())
    }

    /// Deterministic metrics snapshot (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.0
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |s| s.registry.snapshot())
    }

    // --- spans ---

    /// Open a span; it closes when the guard drops. Spans must only be
    /// opened on sequential code paths (see module docs in [`crate::span`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        let id = match &self.0 {
            Some(sink) => {
                let now = sink.now_ms();
                lock(&sink.spans).open(name, now)
            }
            None => 0,
        };
        SpanGuard {
            obs: self.clone(),
            id,
        }
    }

    /// Record a point-in-time event on the innermost open span.
    pub fn event(&self, name: &str, fields: &[(&str, String)]) {
        if let Some(sink) = &self.0 {
            let now = sink.now_ms();
            lock(&sink.spans).event(name, now, fields);
        }
    }

    /// Set the ambient trace context: stack-rooted spans opened while it
    /// is set join that trace under its span id. Returns the previous
    /// ambient so nested scopes can restore it.
    pub fn set_trace(&self, ctx: TraceContext) -> Option<TraceContext> {
        self.0
            .as_ref()
            .and_then(|s| lock(&s.spans).ambient.replace(ctx))
    }

    /// Clear (or restore) the ambient trace context.
    pub fn restore_trace(&self, prev: Option<TraceContext>) {
        if let Some(sink) = &self.0 {
            lock(&sink.spans).ambient = prev;
        }
    }

    /// Record a pre-built span with explicit ids and timestamps — the
    /// cross-member tracing path, where ids come from a [`TraceContext`]
    /// derivation instead of this sink's allocator. The span's `source`
    /// defaults to the sink's source when empty.
    pub fn record_span(&self, span: SpanRecord) {
        if let Some(sink) = &self.0 {
            lock(&sink.spans).record(span);
        }
    }

    /// All finished spans, oldest first.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |s| lock(&s.spans).finished())
    }

    /// Indented rendering of the finished-span forest.
    pub fn span_tree(&self) -> String {
        crate::span::span_tree(&self.finished_spans())
    }

    // --- flight recorder ---

    /// Begin a flight record for `request`.
    pub fn begin_flight(&self, request: &str) {
        if let Some(sink) = &self.0 {
            let now = sink.now_ms();
            lock(&sink.flights).begin(request, now);
        }
    }

    /// Append an event to the in-progress flight record (no-op if none).
    pub fn flight(&self, what: &str, fields: &[(&str, String)]) {
        if let Some(sink) = &self.0 {
            let now = sink.now_ms();
            lock(&sink.flights).push(what, now, fields);
        }
    }

    /// Seal the in-progress flight record with its final outcome.
    pub fn end_flight(&self, outcome: &str) {
        if let Some(sink) = &self.0 {
            let now = sink.now_ms();
            lock(&sink.flights).end(outcome, now);
        }
    }

    /// Completed flight records, oldest first.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |s| lock(&s.flights).completed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct StepTime(AtomicU64);

    impl TimeSource for StepTime {
        fn now_ms(&self) -> f64 {
            self.0.fetch_add(1, Ordering::Relaxed) as f64
        }
    }

    #[test]
    fn off_handle_records_nothing() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        obs.counter("hallu_c_total", "c", &[]).inc();
        let _span = obs.span("s");
        obs.event("e", &[]);
        obs.begin_flight("r");
        obs.flight("x", &[]);
        obs.end_flight("served");
        assert!(obs.render_prometheus().is_empty());
        assert!(obs.metrics_snapshot().series.is_empty());
        assert!(obs.finished_spans().is_empty());
        assert!(obs.flight_records().is_empty());
        assert_eq!(obs.now_ms(), 0.0);
    }

    #[test]
    fn clones_share_one_sink() {
        let obs = Obs::new();
        let other = obs.clone();
        obs.counter("hallu_shared_total", "s", &[]).add(2);
        other.counter("hallu_shared_total", "s", &[]).inc();
        assert_eq!(obs.metrics_snapshot().total("hallu_shared_total"), 3.0);
    }

    #[test]
    fn spans_use_bound_time_source() {
        let obs = Obs::new();
        obs.bind_time(Arc::new(StepTime(AtomicU64::new(10))));
        {
            let _request = obs.span("request");
            obs.event("mid", &[("k", "v".to_string())]);
        }
        let spans = obs.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ms, 10.0);
        assert_eq!(spans[0].events[0].at_ms, 11.0);
        assert_eq!(spans[0].end_ms, 12.0);
    }

    #[test]
    fn flight_records_flow_through_handle() {
        let obs = Obs::new();
        obs.begin_flight("req-1");
        obs.flight("admission", &[("queue_depth", "0".to_string())]);
        obs.end_flight("served");
        let records = obs.flight_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].outcome, "served");
        assert_eq!(records[0].field("admission", "queue_depth"), Some("0"));
    }

    #[test]
    fn unbound_sink_stamps_zero() {
        let obs = Obs::new();
        let _s = obs.span("s");
        drop(_s);
        assert_eq!(obs.finished_spans()[0].start_ms, 0.0);
    }
}
