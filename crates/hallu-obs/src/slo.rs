//! Deterministic SLO engine: availability and latency objectives with
//! multi-window burn-rate alerting, evaluated on the host's virtual clock.
//!
//! The classic SRE rule: an alert fires only when the error budget burns
//! too fast over **both** a fast window (catches sharp regressions, sets
//! the reaction time) and a slow window (suppresses blips), and recovers
//! when the fast window cools down. Burn rate is
//! `(bad / total) / (1 - objective)` — 1.0 means the budget is consumed
//! exactly at the sustainable rate.
//!
//! ## Determinism
//!
//! The engine never reads a wall clock: hosts feed it `(at_ms, ok,
//! latency)` samples stamped by their own `VirtualClock` and call
//! [`SloEngine::tick`] at event boundaries. Alert timestamps therefore
//! snap to event times, and two runs from the same `(seed, config)`
//! produce bitwise-identical timelines — which is what makes them
//! golden-testable by the chaos suites.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// What the SLO measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloKind {
    /// Fraction of requests that complete with a decided disposition.
    Availability,
    /// Fraction of *completed* requests at or under
    /// [`SloConfig::threshold_ms`].
    Latency,
}

/// One burn-rate window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnWindow {
    /// Lookback width in milliseconds.
    pub window_ms: f64,
    /// Burn rate at or above which this window votes to fire.
    pub max_burn: f64,
}

/// How urgent a fired alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Page a human now.
    Page,
    /// File for business hours.
    Ticket,
}

impl AlertSeverity {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Page => "page",
            Self::Ticket => "ticket",
        }
    }
}

/// Alert-state transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// Both windows exceeded their burn thresholds.
    Fired,
    /// The fast window cooled below its threshold.
    Recovered,
}

impl AlertKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Fired => "fired",
            Self::Recovered => "recovered",
        }
    }
}

/// One typed, reproducible alert-state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Virtual-clock time of the transition.
    pub at_ms: f64,
    /// Name of the SLO that transitioned.
    pub slo: String,
    /// Severity from the SLO config.
    pub severity: AlertSeverity,
    /// Fired or recovered.
    pub kind: AlertKind,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// One objective plus its two burn windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Name used in alert events (e.g. `availability`).
    pub name: String,
    /// Target success fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
    /// What counts as bad.
    pub kind: SloKind,
    /// For [`SloKind::Latency`]: a completed request slower than this is
    /// an SLO miss. Ignored for availability.
    pub threshold_ms: f64,
    /// Fast window: reaction time.
    pub fast: BurnWindow,
    /// Slow window: blip suppression.
    pub slow: BurnWindow,
    /// Severity stamped on emitted events.
    pub severity: AlertSeverity,
}

impl SloConfig {
    /// A paging availability SLO with fast/slow windows sized for the
    /// simulated cluster's second-scale chaos episodes.
    pub fn availability(objective: f64) -> Self {
        Self {
            name: "availability".to_string(),
            objective,
            kind: SloKind::Availability,
            threshold_ms: 0.0,
            fast: BurnWindow {
                window_ms: 400.0,
                max_burn: 6.0,
            },
            slow: BurnWindow {
                window_ms: 1_200.0,
                max_burn: 1.5,
            },
            severity: AlertSeverity::Page,
        }
    }

    /// A ticketing latency SLO over completed requests.
    pub fn latency(objective: f64, threshold_ms: f64) -> Self {
        Self {
            name: "latency".to_string(),
            objective,
            kind: SloKind::Latency,
            threshold_ms,
            fast: BurnWindow {
                window_ms: 400.0,
                max_burn: 6.0,
            },
            slow: BurnWindow {
                window_ms: 1_200.0,
                max_burn: 1.5,
            },
            severity: AlertSeverity::Ticket,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    at_ms: f64,
    ok: bool,
    latency_ms: Option<f64>,
}

/// Multi-window burn-rate evaluator over a set of SLOs.
#[derive(Debug)]
pub struct SloEngine {
    configs: Vec<SloConfig>,
    active: Vec<bool>,
    samples: VecDeque<Sample>,
    /// Widest slow window across configs — samples older than this are
    /// pruned on tick.
    horizon_ms: f64,
    timeline: Vec<AlertEvent>,
}

impl SloEngine {
    /// An engine evaluating `configs`; empty configs make it inert.
    pub fn new(configs: Vec<SloConfig>) -> Self {
        let horizon_ms = configs
            .iter()
            .flat_map(|c| [c.fast.window_ms, c.slow.window_ms])
            .fold(0.0f64, f64::max);
        let active = vec![false; configs.len()];
        Self {
            configs,
            active,
            samples: VecDeque::new(),
            horizon_ms,
            timeline: Vec::new(),
        }
    }

    /// Feed one request outcome. `latency_ms` is `Some` only for
    /// completed requests; samples must arrive in non-decreasing time.
    pub fn record(&mut self, at_ms: f64, ok: bool, latency_ms: Option<f64>) {
        self.samples.push_back(Sample {
            at_ms,
            ok,
            latency_ms,
        });
    }

    /// Burn rate of `config` over a lookback `window` ending at `now_ms`;
    /// 0.0 when the window holds no eligible samples.
    fn burn(&self, config: &SloConfig, window: BurnWindow, now_ms: f64) -> f64 {
        let from = now_ms - window.window_ms;
        let (mut bad, mut total) = (0u64, 0u64);
        for s in self.samples.iter().filter(|s| s.at_ms > from) {
            match config.kind {
                SloKind::Availability => {
                    total += 1;
                    bad += u64::from(!s.ok);
                }
                SloKind::Latency => {
                    if let Some(lat) = s.latency_ms {
                        total += 1;
                        bad += u64::from(lat > config.threshold_ms);
                    }
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - config.objective).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    /// Evaluate every SLO at `now_ms`, emitting fire/recover transitions.
    /// Call at event boundaries; alert timestamps snap to those times.
    pub fn tick(&mut self, now_ms: f64) {
        let cutoff = now_ms - self.horizon_ms;
        while self.samples.front().is_some_and(|s| s.at_ms <= cutoff) {
            self.samples.pop_front();
        }
        for i in 0..self.configs.len() {
            let config = self.configs[i].clone();
            let fast = self.burn(&config, config.fast, now_ms);
            let slow = self.burn(&config, config.slow, now_ms);
            let firing = fast >= config.fast.max_burn && slow >= config.slow.max_burn;
            let transition = if !self.active[i] && firing {
                Some(AlertKind::Fired)
            } else if self.active[i] && fast < config.fast.max_burn {
                Some(AlertKind::Recovered)
            } else {
                None
            };
            if let Some(kind) = transition {
                self.active[i] = kind == AlertKind::Fired;
                self.timeline.push(AlertEvent {
                    at_ms: now_ms,
                    slo: config.name.clone(),
                    severity: config.severity,
                    kind,
                    fast_burn: fast,
                    slow_burn: slow,
                });
            }
        }
    }

    /// Every transition so far, in emission order.
    pub fn timeline(&self) -> &[AlertEvent] {
        &self.timeline
    }

    /// Whether the named SLO is currently firing.
    pub fn is_firing(&self, name: &str) -> bool {
        self.configs
            .iter()
            .zip(&self.active)
            .any(|(c, a)| c.name == name && *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SloEngine {
        SloEngine::new(vec![SloConfig::availability(0.9)])
    }

    #[test]
    fn quiet_traffic_never_alerts() {
        let mut e = engine();
        for i in 0..100 {
            e.record(f64::from(i) * 10.0, true, Some(5.0));
            e.tick(f64::from(i) * 10.0);
        }
        assert!(e.timeline().is_empty());
        assert!(!e.is_firing("availability"));
    }

    #[test]
    fn sustained_burn_fires_then_recovers_and_timestamps_snap_to_ticks() {
        let mut e = engine();
        // Healthy baseline fills the slow window…
        for i in 0..50 {
            e.record(f64::from(i) * 10.0, true, Some(5.0));
        }
        e.tick(500.0);
        assert!(e.timeline().is_empty());
        // …then a hard outage: everything fails for 600 ms.
        for i in 0..60 {
            let t = 500.0 + f64::from(i) * 10.0;
            e.record(t, false, None);
            e.tick(t);
        }
        assert!(e.is_firing("availability"));
        let fired: Vec<&AlertEvent> = e
            .timeline()
            .iter()
            .filter(|a| a.kind == AlertKind::Fired)
            .collect();
        assert_eq!(fired.len(), 1, "one transition, not one event per tick");
        assert!(fired[0].fast_burn >= 6.0 && fired[0].slow_burn >= 1.5);
        // Recovery: healthy again long enough for the fast window to cool.
        for i in 0..120 {
            let t = 1_100.0 + f64::from(i) * 10.0;
            e.record(t, true, Some(5.0));
            e.tick(t);
        }
        assert!(!e.is_firing("availability"));
        let last = e.timeline().last().unwrap();
        assert_eq!(last.kind, AlertKind::Recovered);
        assert_eq!(
            last.at_ms % 10.0,
            0.0,
            "alert times snap to tick times: {last:?}"
        );
    }

    #[test]
    fn short_blip_does_not_trip_the_slow_window() {
        let mut e = engine();
        // A long healthy history…
        for i in 0..200 {
            e.record(f64::from(i) * 10.0, true, Some(5.0));
        }
        // …then a 30 ms blip of failures.
        for i in 0..3 {
            let t = 2_000.0 + f64::from(i) * 10.0;
            e.record(t, false, None);
            e.tick(t);
        }
        assert!(
            e.timeline().is_empty(),
            "fast window alone must not page: {:?}",
            e.timeline()
        );
    }

    #[test]
    fn latency_slo_only_counts_completed_requests() {
        let mut e = SloEngine::new(vec![SloConfig::latency(0.9, 100.0)]);
        for i in 0..50 {
            let t = f64::from(i) * 10.0;
            // Abstentions carry no latency sample and must not count.
            e.record(t, false, None);
            e.tick(t);
        }
        assert!(e.timeline().is_empty(), "no completed traffic, no burn");
        for i in 0..60 {
            let t = 500.0 + f64::from(i) * 10.0;
            e.record(t, true, Some(500.0));
            e.tick(t);
        }
        assert!(e.is_firing("latency"), "slow completions burn the budget");
    }

    #[test]
    fn identical_feeds_produce_identical_timelines() {
        let feed = |e: &mut SloEngine| {
            for i in 0..300 {
                let t = f64::from(i) * 7.0;
                let ok = !(100..160).contains(&i);
                e.record(t, ok, ok.then_some(40.0));
                e.tick(t);
            }
        };
        let mut a = engine();
        let mut b = engine();
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.timeline(), b.timeline());
        assert!(!a.timeline().is_empty(), "the outage must trip the alert");
    }
}
