//! Structured tracing spans without external dependencies.
//!
//! A span is a named region of work with a start/end timestamp, a parent,
//! and point-in-time events. Spans are recorded through an [`crate::Obs`]
//! handle; when the sink is disabled, opening a span costs one branch and
//! allocates nothing.
//!
//! The store is deliberately simple: a bounded vector of finished
//! [`SpanRecord`]s plus a stack of open spans. That shape assumes spans are
//! opened and closed on *sequential* code paths (the canonical replay
//! phase, the serving loop) — the parallel probe phase must not open
//! spans, or parent attribution would race. Counters are the right tool
//! there; this is enforced by convention and by the determinism tests.

use serde::{Deserialize, Serialize};

use crate::trace::TraceContext;

/// Cap on retained finished spans; oldest are dropped first.
pub const MAX_SPANS: usize = 4096;

/// A point-in-time event attached to a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Event name (static in practice).
    pub name: String,
    /// Timestamp from the bound [`crate::TimeSource`].
    pub at_ms: f64,
    /// Free-form `key=value` annotations.
    pub fields: Vec<(String, String)>,
}

/// A finished span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span id, unique within one sink (1-based, allocation order).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Start timestamp.
    pub start_ms: f64,
    /// End timestamp.
    pub end_ms: f64,
    /// Events observed while this span was the innermost open span.
    pub events: Vec<EventRecord>,
    /// Trace id this span belongs to (0 = untraced; see [`crate::trace`]).
    #[serde(default)]
    pub trace_id: u64,
    /// Identity of the member/sink that recorded this span (e.g. `s3r1`,
    /// `router`); empty for single-process sinks.
    #[serde(default)]
    pub source: String,
}

/// Span storage inside a sink: open stack + bounded finished list.
#[derive(Debug, Default)]
pub(crate) struct SpanStore {
    next_id: u64,
    /// Identity stamped onto every span this store finishes.
    pub(crate) source: String,
    /// Ambient trace context: stack-rooted spans opened while this is set
    /// inherit its trace id and attach under its span id, which is how
    /// detector spans opened deep in the pipeline join a cluster trace.
    pub(crate) ambient: Option<TraceContext>,
    /// Open spans, innermost last.
    open: Vec<SpanRecord>,
    /// Finished spans in completion order, bounded by [`MAX_SPANS`].
    finished: Vec<SpanRecord>,
    /// Finished spans discarded due to the bound.
    pub(crate) dropped: u64,
}

impl SpanStore {
    pub(crate) fn open(&mut self, name: &str, now_ms: f64) -> u64 {
        self.next_id += 1;
        let (parent, trace_id) = match self.open.last() {
            Some(top) => (top.id, top.trace_id),
            None => self
                .ambient
                .map_or((0, 0), |ctx| (ctx.span_id, ctx.trace_id)),
        };
        self.open.push(SpanRecord {
            id: self.next_id,
            parent,
            name: name.to_string(),
            start_ms: now_ms,
            end_ms: now_ms,
            events: Vec::new(),
            trace_id,
            source: String::new(),
        });
        self.next_id
    }

    /// Close the span with `id`. Open-span ids are strictly increasing
    /// toward the top of the stack, so inner spans still open above `id`
    /// are closed too (same timestamp) — a leaked guard cannot wedge the
    /// stack.
    pub(crate) fn close(&mut self, id: u64, now_ms: f64) {
        while self.open.last().is_some_and(|s| s.id >= id) {
            if let Some(mut span) = self.open.pop() {
                span.end_ms = now_ms;
                self.push_finished(span);
            }
        }
    }

    pub(crate) fn event(&mut self, name: &str, now_ms: f64, fields: &[(&str, String)]) {
        let record = EventRecord {
            name: name.to_string(),
            at_ms: now_ms,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        if let Some(span) = self.open.last_mut() {
            span.events.push(record);
        } else {
            // eventless-root fallback: synthesize a zero-length span so the
            // event is not silently lost
            self.next_id += 1;
            let (parent, trace_id) = self
                .ambient
                .map_or((0, 0), |ctx| (ctx.span_id, ctx.trace_id));
            self.push_finished(SpanRecord {
                id: self.next_id,
                parent,
                name: "orphan".to_string(),
                start_ms: now_ms,
                end_ms: now_ms,
                events: vec![record],
                trace_id,
                source: String::new(),
            });
        }
    }

    /// Record a pre-built span directly (explicit ids and timestamps,
    /// bypassing the open stack) — the cross-member tracing path, where
    /// ids are derived from the trace context rather than allocated here.
    pub(crate) fn record(&mut self, span: SpanRecord) {
        self.push_finished(span);
    }

    fn push_finished(&mut self, mut span: SpanRecord) {
        if span.source.is_empty() {
            span.source.clone_from(&self.source);
        }
        if self.finished.len() >= MAX_SPANS {
            self.finished.remove(0);
            self.dropped += 1;
        }
        self.finished.push(span);
    }

    pub(crate) fn finished(&self) -> Vec<SpanRecord> {
        self.finished.clone()
    }
}

/// Render finished spans as an indented tree, one line per span:
/// `name [start..end] (events)` — deterministic given a deterministic run.
pub fn span_tree(spans: &[SpanRecord]) -> String {
    fn walk(spans: &[SpanRecord], parent: u64, depth: usize, out: &mut String) {
        for span in spans.iter().filter(|s| s.parent == parent) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} [{}..{}ms]",
                span.name, span.start_ms, span.end_ms
            ));
            for event in &span.events {
                out.push_str(&format!(" !{}", event.name));
            }
            out.push('\n');
            walk(spans, span.id, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(spans, 0, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_attribute_events() {
        let mut store = SpanStore::default();
        let outer = store.open("request", 1.0);
        let inner = store.open("score", 2.0);
        store.event("cell", 3.0, &[("model", "m0".to_string())]);
        store.close(inner, 4.0);
        store.event("verdict", 5.0, &[]);
        store.close(outer, 6.0);

        let finished = store.finished();
        assert_eq!(finished.len(), 2);
        assert_eq!(finished[0].name, "score");
        assert_eq!(finished[0].parent, outer);
        assert_eq!(finished[0].events.len(), 1);
        assert_eq!(finished[0].events[0].fields[0].1, "m0");
        assert_eq!(finished[1].name, "request");
        assert_eq!(finished[1].parent, 0);
        assert_eq!(finished[1].events[0].name, "verdict");
    }

    #[test]
    fn closing_outer_span_closes_leaked_inner_spans() {
        let mut store = SpanStore::default();
        let outer = store.open("outer", 0.0);
        let _leaked = store.open("leaked", 1.0);
        store.close(outer, 2.0);
        let finished = store.finished();
        assert_eq!(finished.len(), 2);
        assert!(finished.iter().all(|s| s.end_ms == 2.0));
    }

    #[test]
    fn orphan_events_are_not_lost() {
        let mut store = SpanStore::default();
        store.event("stray", 7.0, &[]);
        let finished = store.finished();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].name, "orphan");
        assert_eq!(finished[0].events[0].name, "stray");
    }

    #[test]
    fn finished_list_is_bounded() {
        let mut store = SpanStore::default();
        for i in 0..(MAX_SPANS + 10) {
            let id = store.open("s", i as f64);
            store.close(id, i as f64);
        }
        assert_eq!(store.finished.len(), MAX_SPANS);
        assert_eq!(store.dropped, 10);
    }

    #[test]
    fn ambient_context_links_stack_spans_into_a_trace() {
        let mut store = SpanStore {
            source: "s2r1".to_string(),
            ..SpanStore::default()
        };
        let ctx = TraceContext::root(0x7ACE, 5);
        store.ambient = Some(ctx.child("scoring", 0));
        let id = store.open("detector.score", 1.0);
        let inner = store.open("detector.probe", 2.0);
        store.close(inner, 3.0);
        store.close(id, 4.0);
        store.ambient = None;
        let late = store.open("untraced", 5.0);
        store.close(late, 6.0);

        let finished = store.finished();
        assert_eq!(finished[1].name, "detector.score");
        assert_eq!(finished[1].trace_id, ctx.trace_id);
        assert_eq!(finished[1].parent, ctx.child_id("scoring", 0));
        assert_eq!(finished[1].source, "s2r1");
        assert_eq!(
            finished[0].trace_id, ctx.trace_id,
            "nested spans inherit the trace through the stack"
        );
        assert_eq!(
            finished[2].trace_id, 0,
            "clearing the ambient stops inheritance"
        );
    }

    #[test]
    fn explicit_records_keep_their_ids_and_get_the_store_source() {
        let mut store = SpanStore {
            source: "router".to_string(),
            ..SpanStore::default()
        };
        let ctx = TraceContext::root(0x7ACE, 9);
        store.record(SpanRecord {
            id: ctx.span_id,
            parent: 0,
            name: "request".to_string(),
            start_ms: 10.0,
            end_ms: 90.0,
            events: Vec::new(),
            trace_id: ctx.trace_id,
            source: String::new(),
        });
        let finished = store.finished();
        assert_eq!(finished[0].id, ctx.span_id);
        assert_eq!(finished[0].source, "router");
    }

    #[test]
    fn tree_renders_nesting() {
        let mut store = SpanStore::default();
        let outer = store.open("request", 0.0);
        let inner = store.open("score", 1.0);
        store.event("combine", 2.0, &[]);
        store.close(inner, 3.0);
        store.close(outer, 4.0);
        let tree = span_tree(&store.finished());
        assert_eq!(tree, "request [0..4ms]\n  score [1..3ms] !combine\n");
    }
}
