//! Time sources for observability timestamps.
//!
//! The sink never reads the wall clock on its own: every timestamp comes
//! from a [`TimeSource`] the host binds ([`crate::Obs::bind_time`]).
//! `slm-runtime` implements this trait for its `VirtualClock` and
//! `WallClock`, so virtual-clock runs produce deterministic span and
//! flight-record timestamps while real deployments get honest elapsed time.
//! The default source is [`ZeroTime`], which stamps everything `0.0` — an
//! unbound sink is still deterministic, just without a timeline.

/// A source of monotonically non-decreasing milliseconds for timestamps.
///
/// Deliberately a subset of `slm_runtime::Clock`: observability only reads
/// time, it never advances it.
pub trait TimeSource: Send + Sync {
    /// Milliseconds since this source's epoch.
    fn now_ms(&self) -> f64;
}

/// The do-nothing time source: always `0.0`. Default until a clock is
/// bound, and the right choice when only counters matter.
#[derive(Debug, Default, Clone, Copy)]
pub struct ZeroTime;

impl TimeSource for ZeroTime {
    fn now_ms(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_time_is_always_zero() {
        assert_eq!(ZeroTime.now_ms(), 0.0);
        assert_eq!(ZeroTime.now_ms(), 0.0);
    }
}
