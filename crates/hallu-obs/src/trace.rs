//! Distributed tracing across the cluster: deterministic trace contexts,
//! a stitcher that reassembles per-member span fragments into one causal
//! tree per request, and a critical-path extractor that decomposes a
//! request's wall time into named segments.
//!
//! ## Determinism
//!
//! Trace and span ids are **pure functions of the seeded request**, never
//! of wall clocks or allocation order across sinks:
//!
//! - [`TraceContext::root`] derives the trace id and the root span id from
//!   `(trace_seed, request_id)` via the splitmix64 finalizer.
//! - [`TraceContext::child_id`] derives each synthesized span's id from
//!   `(trace_id, parent span id, span name, ordinal)`.
//!
//! Derived ids always carry the high bit, while store-allocated span ids
//! (the open-stack path in [`crate::span`]) are small sequential integers —
//! the two id spaces cannot collide, so a stitched tree mixing explicit
//! cross-member spans with stack-opened detector spans is well-formed.
//! Two runs from the same `(seed, config)` therefore stitch into
//! bitwise-identical trees.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::flight::FlightRecord;
use crate::span::SpanRecord;

/// Derived span ids carry this bit so they can never collide with the
/// store-allocated sequential ids used by stack-opened spans.
const DERIVED_BIT: u64 = 1 << 63;

/// SplitMix64 finalizer — the repo-wide standard for seeded derivations.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a span name, so sibling spans with different names get
/// different derived ids.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The propagated trace context: which trace a unit of work belongs to and
/// which span is its parent. `Copy`, 16 bytes — cheap to thread through
/// queues and route tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace id shared by every span of one request (never 0).
    pub trace_id: u64,
    /// The span id new children should attach under.
    pub span_id: u64,
}

impl TraceContext {
    /// Root context for a request: ids derived from `(seed, request_id)`
    /// alone, so any component can re-derive the same context from the
    /// request id without carrying state.
    pub fn root(seed: u64, request_id: u64) -> Self {
        let trace_id = splitmix64(seed ^ splitmix64(request_id.wrapping_add(1))).max(1);
        let span_id = splitmix64(trace_id ^ fnv1a("request")) | DERIVED_BIT;
        Self { trace_id, span_id }
    }

    /// Deterministic id for a child span named `name`; `ordinal`
    /// disambiguates same-named siblings (e.g. probe hops per replica).
    pub fn child_id(&self, name: &str, ordinal: u64) -> u64 {
        splitmix64(
            self.trace_id
                ^ self.span_id.rotate_left(17)
                ^ fnv1a(name)
                ^ splitmix64(ordinal.wrapping_add(0x5EED)),
        ) | DERIVED_BIT
    }

    /// The child context: same trace, parent advanced to the child span.
    pub fn child(&self, name: &str, ordinal: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: self.child_id(name, ordinal),
        }
    }
}

/// One span plus its children, sorted by `(start_ms, source, id)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// The span itself.
    pub span: SpanRecord,
    /// Child spans in deterministic order.
    pub children: Vec<SpanNode>,
}

/// One stitched causal tree for a single traced request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTree {
    /// The trace id all member spans share.
    pub trace_id: u64,
    /// Root node (the router's `request` span when intact).
    pub root: SpanNode,
    /// True when the tree is known incomplete: no proper root survived,
    /// orphaned spans had to be re-parented, or a correlated flight
    /// record wrapped its ring and dropped events.
    pub truncated: bool,
    /// Flight-recorder events dropped by ring wrap across all flight
    /// records correlated with this trace.
    pub dropped_events: u64,
}

/// Assemble per-member span fragments into one [`TraceTree`] per trace id,
/// ordered by trace id. Spans with `trace_id == 0` (untraced) are ignored.
///
/// Flight records are correlated through span events named `flight` whose
/// `request` field names the flight; their `dropped_events` counts surface
/// on the tree and mark it truncated, so a ring wrap during a failover hop
/// cannot silently pass for a complete causal story.
pub fn stitch(spans: &[SpanRecord], flights: &[FlightRecord]) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for span in spans.iter().filter(|s| s.trace_id != 0) {
        by_trace
            .entry(span.trace_id)
            .or_default()
            .push(span.clone());
    }
    let mut trees = Vec::with_capacity(by_trace.len());
    for (trace_id, mut members) in by_trace {
        members.sort_by(|a, b| {
            a.start_ms
                .total_cmp(&b.start_ms)
                .then_with(|| a.source.cmp(&b.source))
                .then_with(|| a.id.cmp(&b.id))
        });
        let ids: BTreeSet<u64> = members.iter().map(|s| s.id).collect();
        let mut truncated = false;

        // The root is the span without a parent; when it was dropped (ring
        // wrap) the earliest surviving span stands in and the tree is
        // marked truncated.
        let root_pos = members.iter().position(|s| s.parent == 0).unwrap_or(0);
        let root_span = members.remove(root_pos);
        truncated |= root_span.parent != 0;
        let root_id = root_span.id;

        // Orphans (parent missing from this trace) re-parent under the
        // root; extra parentless spans count as orphans too.
        let mut children: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        for span in members {
            let parent = if span.parent != 0 && ids.contains(&span.parent) {
                span.parent
            } else {
                truncated = true;
                root_id
            };
            children.entry(parent).or_default().push(span);
        }

        let mut dropped_events = 0u64;
        let mut root = build_node(root_span, &mut children);
        collect_flight_drops(&root, flights, &mut dropped_events);
        truncated |= dropped_events > 0;
        annotate_truncation(&mut root, truncated, dropped_events);
        trees.push(TraceTree {
            trace_id,
            root,
            truncated,
            dropped_events,
        });
    }
    trees
}

fn build_node(span: SpanRecord, children: &mut BTreeMap<u64, Vec<SpanRecord>>) -> SpanNode {
    let kids = children.remove(&span.id).unwrap_or_default();
    SpanNode {
        span,
        children: kids.into_iter().map(|c| build_node(c, children)).collect(),
    }
}

/// Sum `dropped_events` of every flight record named by a `flight` event
/// anywhere in the tree.
fn collect_flight_drops(node: &SpanNode, flights: &[FlightRecord], dropped: &mut u64) {
    for event in node.span.events.iter().filter(|e| e.name == "flight") {
        for (key, value) in &event.fields {
            if key == "request" {
                *dropped += flights
                    .iter()
                    .filter(|f| &f.request == value)
                    .map(|f| f.dropped_events)
                    .sum::<u64>();
            }
        }
    }
    for child in &node.children {
        collect_flight_drops(child, flights, dropped);
    }
}

/// Surface truncation on the root span so serialized trees carry the flag
/// even through span-only consumers.
fn annotate_truncation(root: &mut SpanNode, truncated: bool, dropped_events: u64) {
    if truncated {
        root.span.events.push(crate::span::EventRecord {
            name: "truncated".to_string(),
            at_ms: root.span.end_ms,
            fields: vec![("dropped_events".to_string(), dropped_events.to_string())],
        });
    }
}

/// What a slice of a request's wall time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Waiting in a member's admission queue.
    Queue,
    /// Verification work: per-sentence scoring, detector probes, hedges.
    Scoring,
    /// Router slot-table routing (a route-time decision, zero-width).
    Route,
    /// A failover hop to a non-primary replica.
    Failover,
    /// A data-path liveness probe against a dead/partitioned member.
    Probe,
    /// Cache replication lookups (journal/anti-entropy warmed entries).
    Replication,
    /// Wall time no named span covers.
    Unattributed,
}

impl SegmentKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Queue => "queue",
            Self::Scoring => "scoring",
            Self::Route => "route",
            Self::Failover => "failover",
            Self::Probe => "probe",
            Self::Replication => "replication",
            Self::Unattributed => "unattributed",
        }
    }
}

/// Span name → segment kind; `None` inherits the parent's kind, so
/// `detector.*` spans nested under `scoring` stay scoring even when a new
/// detector span name appears.
fn kind_for(name: &str) -> Option<SegmentKind> {
    if name.starts_with("detector.") || name == "scoring" || name == "hedge" {
        return Some(SegmentKind::Scoring);
    }
    match name {
        "queue" => Some(SegmentKind::Queue),
        "route" | "spill" => Some(SegmentKind::Route),
        "failover" => Some(SegmentKind::Failover),
        "probe" => Some(SegmentKind::Probe),
        "replication" => Some(SegmentKind::Replication),
        _ => None,
    }
}

/// One merged critical-path segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// What this slice of wall time was spent on.
    pub kind: SegmentKind,
    /// Segment start.
    pub start_ms: f64,
    /// Segment end.
    pub end_ms: f64,
}

impl Segment {
    /// Segment width in milliseconds.
    pub fn width_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// A request's latency decomposed into named segments over the root span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Root span width (the request's wall time).
    pub total_ms: f64,
    /// Merged segments covering the root interval in order.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Wall time covered by named (non-[`SegmentKind::Unattributed`])
    /// segments.
    pub fn attributed_ms(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind != SegmentKind::Unattributed)
            .map(Segment::width_ms)
            .sum()
    }

    /// Fraction of the request's wall time attributed to named segments
    /// (1.0 for zero-width requests — nothing left to explain).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_ms <= 0.0 {
            return 1.0;
        }
        self.attributed_ms() / self.total_ms
    }

    /// Total width of every segment of `kind`.
    pub fn ms_in(&self, kind: SegmentKind) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == kind)
            .map(Segment::width_ms)
            .sum()
    }
}

/// Decompose the root span's wall time: an elementary-interval sweep picks
/// the deepest covering span for every slice (spans inherit their parent's
/// kind when unnamed), adjacent same-kind slices merge, and anything only
/// the root covers is [`SegmentKind::Unattributed`].
pub fn critical_path(tree: &TraceTree) -> CriticalPath {
    struct Flat {
        start_ms: f64,
        end_ms: f64,
        depth: usize,
        seq: usize,
        kind: Option<SegmentKind>,
    }
    fn flatten(
        node: &SpanNode,
        depth: usize,
        inherited: Option<SegmentKind>,
        seq: &mut usize,
        out: &mut Vec<Flat>,
    ) {
        let kind = kind_for(&node.span.name).or(inherited);
        *seq += 1;
        out.push(Flat {
            start_ms: node.span.start_ms,
            end_ms: node.span.end_ms,
            depth,
            seq: *seq,
            kind,
        });
        for child in &node.children {
            flatten(child, depth + 1, kind, seq, out);
        }
    }

    let root = &tree.root.span;
    let total_ms = (root.end_ms - root.start_ms).max(0.0);
    let mut flat = Vec::new();
    let mut seq = 0usize;
    flatten(&tree.root, 0, None, &mut seq, &mut flat);

    let mut bounds: Vec<f64> = flat
        .iter()
        .flat_map(|f| [f.start_ms, f.end_ms])
        .filter(|t| *t >= root.start_ms && *t <= root.end_ms)
        .collect();
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();

    let mut segments: Vec<Segment> = Vec::new();
    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b <= a {
            continue;
        }
        let kind = flat
            .iter()
            .filter(|f| f.start_ms <= a && f.end_ms >= b)
            .max_by_key(|f| (f.depth, f.seq))
            .and_then(|f| f.kind)
            .unwrap_or(SegmentKind::Unattributed);
        match segments.last_mut() {
            Some(last) if last.kind == kind && last.end_ms == a => last.end_ms = b,
            _ => segments.push(Segment {
                kind,
                start_ms: a,
                end_ms: b,
            }),
        }
    }
    CriticalPath { total_ms, segments }
}

/// Render a stitched tree as an indented, bitwise-stable text block:
/// one line per span — `name [start..end ms] @source`, events as `!name`.
pub fn render_trace_tree(tree: &TraceTree) -> String {
    fn walk(node: &SpanNode, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [{}..{}ms] @{}",
            node.span.name,
            node.span.start_ms,
            node.span.end_ms,
            if node.span.source.is_empty() {
                "?"
            } else {
                &node.span.source
            }
        ));
        for event in &node.span.events {
            out.push_str(&format!(" !{}", event.name));
        }
        out.push('\n');
        for child in &node.children {
            walk(child, depth + 1, out);
        }
    }
    let mut out = format!(
        "trace {:016x}{}\n",
        tree.trace_id,
        if tree.truncated {
            format!(" (truncated, dropped_events={})", tree.dropped_events)
        } else {
            String::new()
        }
    );
    walk(&tree.root, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::EventRecord;

    fn span(
        id: u64,
        parent: u64,
        trace_id: u64,
        name: &str,
        start: f64,
        end: f64,
        source: &str,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ms: start,
            end_ms: end,
            events: Vec::new(),
            trace_id,
            source: source.to_string(),
        }
    }

    #[test]
    fn trace_ids_are_pure_functions_of_seed_and_request() {
        let a = TraceContext::root(7, 42);
        let b = TraceContext::root(7, 42);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceContext::root(7, 43).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(8, 42).trace_id);
        assert_ne!(a.trace_id, 0, "0 is the untraced marker");
        assert_ne!(
            a.child_id("queue", 0),
            a.child_id("scoring", 0),
            "sibling names must not collide"
        );
        assert_ne!(
            a.child_id("probe", 0),
            a.child_id("probe", 1),
            "ordinals must not collide"
        );
        assert!(
            a.span_id & DERIVED_BIT != 0 && a.child_id("queue", 0) & DERIVED_BIT != 0,
            "derived ids live above the store-allocated id space"
        );
    }

    #[test]
    fn stitch_assembles_cross_member_fragments_into_one_tree() {
        let ctx = TraceContext::root(1, 1);
        let t = ctx.trace_id;
        let root = span(ctx.span_id, 0, t, "request", 0.0, 50.0, "router");
        let queue = span(
            ctx.child_id("queue", 0),
            ctx.span_id,
            t,
            "queue",
            0.0,
            10.0,
            "s0r0",
        );
        let scoring = span(
            ctx.child_id("scoring", 0),
            ctx.span_id,
            t,
            "scoring",
            10.0,
            50.0,
            "s0r0",
        );
        // A stack-opened detector span under the scoring context.
        let detector = span(
            3,
            ctx.child_id("scoring", 0),
            t,
            "detector.score",
            12.0,
            40.0,
            "s0r0",
        );
        let trees = stitch(&[scoring, root, detector, queue], &[]);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert!(!tree.truncated);
        assert_eq!(tree.root.span.name, "request");
        assert_eq!(tree.root.children.len(), 2);
        assert_eq!(tree.root.children[0].span.name, "queue");
        assert_eq!(tree.root.children[1].span.name, "scoring");
        assert_eq!(
            tree.root.children[1].children[0].span.name,
            "detector.score"
        );
    }

    #[test]
    fn orphaned_spans_reparent_under_root_and_mark_truncation() {
        let ctx = TraceContext::root(2, 9);
        let t = ctx.trace_id;
        let root = span(ctx.span_id, 0, t, "request", 0.0, 20.0, "router");
        // Parent id that no longer exists (dropped from the span ring).
        let stray = span(5, 0xDEAD_BEEF | DERIVED_BIT, t, "queue", 1.0, 4.0, "s1r0");
        let trees = stitch(&[root, stray], &[]);
        assert!(trees[0].truncated);
        assert_eq!(trees[0].root.children[0].span.name, "queue");
        assert!(
            trees[0]
                .root
                .span
                .events
                .iter()
                .any(|e| e.name == "truncated"),
            "truncation must be visible on the serialized root"
        );
    }

    #[test]
    fn missing_root_falls_back_to_earliest_span_truncated() {
        let ctx = TraceContext::root(3, 4);
        let t = ctx.trace_id;
        let queue = span(
            ctx.child_id("queue", 0),
            ctx.span_id,
            t,
            "queue",
            2.0,
            6.0,
            "s2r1",
        );
        let scoring = span(
            ctx.child_id("scoring", 0),
            ctx.span_id,
            t,
            "scoring",
            6.0,
            9.0,
            "s2r1",
        );
        let trees = stitch(&[scoring, queue], &[]);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].truncated);
        assert_eq!(trees[0].root.span.name, "queue", "earliest span stands in");
    }

    /// Satellite: flight-recorder ring wrap during a failover hop — the
    /// stitcher still produces a tree, marked truncated, with the dropped
    /// event count surfaced.
    #[test]
    fn flight_ring_wrap_surfaces_dropped_events_on_the_tree() {
        let ctx = TraceContext::root(4, 11);
        let t = ctx.trace_id;
        let root = span(ctx.span_id, 0, t, "request", 0.0, 30.0, "router");
        let hop = span(
            ctx.child_id("failover", 1),
            ctx.span_id,
            t,
            "failover",
            5.0,
            5.0,
            "router",
        );
        let mut scoring = span(
            ctx.child_id("scoring", 0),
            ctx.span_id,
            t,
            "scoring",
            5.0,
            30.0,
            "s3r1",
        );
        scoring.events.push(EventRecord {
            name: "flight".to_string(),
            at_ms: 5.0,
            fields: vec![("request".to_string(), "req-s3r1-11".to_string())],
        });
        let flight = FlightRecord {
            request: "req-s3r1-11".to_string(),
            opened_ms: 5.0,
            closed_ms: 30.0,
            outcome: "served".to_string(),
            events: Vec::new(),
            dropped_events: 17,
        };
        let trees = stitch(&[root, hop, scoring], &[flight]);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].truncated);
        assert_eq!(trees[0].dropped_events, 17);
        let rendered = render_trace_tree(&trees[0]);
        assert!(rendered.contains("dropped_events=17"), "{rendered}");
        assert!(rendered.contains("failover"), "{rendered}");
    }

    #[test]
    fn critical_path_attributes_queue_and_scoring_fully() {
        let ctx = TraceContext::root(5, 2);
        let t = ctx.trace_id;
        let root = span(ctx.span_id, 0, t, "request", 0.0, 100.0, "router");
        let queue = span(
            ctx.child_id("queue", 0),
            ctx.span_id,
            t,
            "queue",
            0.0,
            30.0,
            "s0r0",
        );
        let scoring = span(
            ctx.child_id("scoring", 0),
            ctx.span_id,
            t,
            "scoring",
            30.0,
            100.0,
            "s0r0",
        );
        // Unknown-named child inherits scoring.
        let inner = span(
            7,
            ctx.child_id("scoring", 0),
            t,
            "combine",
            40.0,
            60.0,
            "s0r0",
        );
        let trees = stitch(&[root, queue, scoring, inner], &[]);
        let path = critical_path(&trees[0]);
        assert_eq!(path.total_ms, 100.0);
        assert_eq!(path.attributed_ms(), 100.0);
        assert_eq!(path.attributed_fraction(), 1.0);
        assert_eq!(path.ms_in(SegmentKind::Queue), 30.0);
        assert_eq!(path.ms_in(SegmentKind::Scoring), 70.0);
        assert_eq!(
            path.segments.len(),
            2,
            "same-kind slices merge: {:?}",
            path.segments
        );
    }

    #[test]
    fn critical_path_reports_uncovered_time_as_unattributed() {
        let ctx = TraceContext::root(6, 3);
        let t = ctx.trace_id;
        let root = span(ctx.span_id, 0, t, "request", 0.0, 10.0, "router");
        let queue = span(
            ctx.child_id("queue", 0),
            ctx.span_id,
            t,
            "queue",
            0.0,
            4.0,
            "s0r0",
        );
        let trees = stitch(&[root, queue], &[]);
        let path = critical_path(&trees[0]);
        assert_eq!(path.ms_in(SegmentKind::Queue), 4.0);
        assert_eq!(path.ms_in(SegmentKind::Unattributed), 6.0);
        assert!((path.attributed_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stitching_is_input_order_insensitive() {
        let ctx = TraceContext::root(9, 8);
        let t = ctx.trace_id;
        let spans = vec![
            span(ctx.span_id, 0, t, "request", 0.0, 9.0, "router"),
            span(
                ctx.child_id("queue", 0),
                ctx.span_id,
                t,
                "queue",
                0.0,
                3.0,
                "s1r1",
            ),
            span(
                ctx.child_id("scoring", 0),
                ctx.span_id,
                t,
                "scoring",
                3.0,
                9.0,
                "s1r1",
            ),
        ];
        let mut reversed = spans.clone();
        reversed.reverse();
        assert_eq!(stitch(&spans, &[]), stitch(&reversed, &[]));
    }
}
