//! Sentence-aware document chunking.
//!
//! Handbook sections are chunked before ingestion so retrieval returns
//! focused contexts. Chunks pack whole sentences up to a word budget, with a
//! configurable sentence overlap between consecutive chunks so facts
//! straddling a boundary stay retrievable.

use text_engine::sentence::SentenceSplitter;
use text_engine::token::tokenize_words;

/// Chunking parameters.
#[derive(Debug, Clone)]
pub struct ChunkConfig {
    /// Maximum words per chunk.
    pub max_words: usize,
    /// Number of trailing sentences repeated at the start of the next chunk.
    pub overlap_sentences: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self {
            max_words: 80,
            overlap_sentences: 1,
        }
    }
}

/// Split `text` into chunks of whole sentences.
///
/// A single sentence longer than `max_words` becomes its own chunk (never
/// split mid-sentence). Empty input yields no chunks.
pub fn chunk_text(text: &str, cfg: &ChunkConfig) -> Vec<String> {
    let sentences: Vec<String> = SentenceSplitter::new()
        .split(text)
        .into_iter()
        .map(|s| s.text.to_string())
        .collect();
    if sentences.is_empty() {
        return Vec::new();
    }
    let word_counts: Vec<usize> = sentences.iter().map(|s| tokenize_words(s).len()).collect();

    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < sentences.len() {
        let mut end = start;
        let mut words = 0usize;
        while end < sentences.len() {
            let w = word_counts[end];
            if end > start && words + w > cfg.max_words {
                break;
            }
            words += w;
            end += 1;
        }
        chunks.push(sentences[start..end].join(" "));
        if end >= sentences.len() {
            break;
        }
        // Step forward, keeping `overlap_sentences` of trailing context, but
        // always make progress.
        let next = end.saturating_sub(cfg.overlap_sentences).max(start + 1);
        start = next;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sentence of exactly `words` alphabetic tokens, labelled by `n`.
    fn sentence(n: usize, words: usize) -> String {
        let label = (b'A' + (n % 26) as u8) as char;
        let mut s = format!("Sent{label}");
        for w in 0..words.saturating_sub(1) {
            let c = (b'a' + (w % 26) as u8) as char;
            s.push_str(&format!(" w{c}"));
        }
        s.push('.');
        s
    }

    fn label(n: usize) -> String {
        format!("Sent{}", (b'A' + (n % 26) as u8) as char)
    }

    #[test]
    fn short_text_is_one_chunk() {
        let chunks = chunk_text("One. Two. Three.", &ChunkConfig::default());
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], "One. Two. Three.");
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(chunk_text("", &ChunkConfig::default()).is_empty());
        assert!(chunk_text("   ", &ChunkConfig::default()).is_empty());
    }

    #[test]
    fn respects_word_budget() {
        let text: Vec<String> = (0..10).map(|i| sentence(i, 10)).collect();
        let text = text.join(" ");
        let cfg = ChunkConfig {
            max_words: 25,
            overlap_sentences: 0,
        };
        let chunks = chunk_text(&text, &cfg);
        assert!(chunks.len() >= 4, "{chunks:?}");
        for c in &chunks {
            assert!(tokenize_words(c).len() <= 25, "chunk too big: {c}");
        }
    }

    #[test]
    fn oversized_sentence_is_own_chunk() {
        let big = sentence(0, 50);
        let cfg = ChunkConfig {
            max_words: 10,
            overlap_sentences: 0,
        };
        let chunks = chunk_text(&big, &cfg);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn overlap_repeats_sentences() {
        let text = format!(
            "{} {} {} {}",
            sentence(0, 8),
            sentence(1, 8),
            sentence(2, 8),
            sentence(3, 8)
        );
        let cfg = ChunkConfig {
            max_words: 16,
            overlap_sentences: 1,
        };
        let chunks = chunk_text(&text, &cfg);
        assert!(chunks.len() >= 2);
        // the last sentence of chunk 0 opens chunk 1
        let last_of_first = chunks[0].split(". ").last().unwrap().trim_end_matches('.');
        assert!(chunks[1].contains(last_of_first.split(' ').next().unwrap()));
    }

    #[test]
    fn all_sentences_covered() {
        let text: Vec<String> = (0..8).map(|i| sentence(i, 6)).collect();
        let text = text.join(" ");
        let cfg = ChunkConfig {
            max_words: 14,
            overlap_sentences: 1,
        };
        let joined = chunk_text(&text, &cfg).join(" ");
        for i in 0..8 {
            assert!(joined.contains(&label(i)), "missing sentence {i}");
        }
    }

    proptest::proptest! {
        #[test]
        fn always_terminates_and_makes_progress(
            n_sentences in 1usize..15,
            words_per in 1usize..12,
            max_words in 1usize..30,
            overlap in 0usize..4,
        ) {
            let text: Vec<String> = (0..n_sentences).map(|i| sentence(i, words_per)).collect();
            let cfg = ChunkConfig { max_words, overlap_sentences: overlap };
            let chunks = chunk_text(&text.join(" "), &cfg);
            proptest::prop_assert!(!chunks.is_empty());
            proptest::prop_assert!(chunks.len() <= n_sentences * 2 + 1);
        }
    }
}
