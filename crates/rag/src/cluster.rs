//! Sharded verification cluster: consistent-hash routing, replica
//! failover, partition tolerance, and reproducible chaos.
//!
//! A single [`ServingRuntime`] is one node. This module scales the serving
//! path "to millions of users" (ROADMAP) by running N replica groups —
//! each a primary plus R replica [`ServingRuntime`]s around their own
//! [`ResilientVerifiedPipeline`] — behind a router:
//!
//! * **Routing** — request keys (the question; retrieval derives the
//!   context from it deterministically) map onto shards through the
//!   [`HashRing`] slot table, so repeated questions land on the same
//!   shard and its prefix / verification caches stay warm. Shard
//!   add/remove moves a bounded slice of the keyspace (≤ ⌈K/N⌉, asserted
//!   via [`RebalanceReport::within_bound`]); unrelated keys never move.
//! * **Failover** — the router probes every member each
//!   `probe_interval_ms`. A probe into a crashed or partitioned member
//!   times out after `probe_timeout_ms`, at which point the member is
//!   marked down and the member's traffic fails over to the next replica
//!   in its group. A delivery that hits a dead member the router still
//!   believed in fails on the spot (data-path detection): the member is
//!   marked down immediately and the next replica is tried. A reachable
//!   probe marks a member back up at the probe tick.
//! * **Spill** — optionally ([`ClusterConfig::spill`]), the router reads
//!   each member's `hallu_serving_service_ms` histogram (live handles on
//!   the shared registry) plus its queue depth and, when the home shard
//!   looks overloaded or slow, spills the request one node forward on the
//!   ring ([`HashRing::spill_target`]). Off by default: spilling trades
//!   cache locality for load, and with it off, chaos on one shard cannot
//!   perturb any other shard's stream (the kill-one-shard guarantee).
//! * **Chaos** — a [`ChaosPlan`] schedules crashes, restarts, slow
//!   members, replica flaps, and router↔shard partitions at virtual
//!   times. Plans are data (or derived from a seed by pure arithmetic, the
//!   `FaultInjector` discipline), the cluster runs on one shared
//!   [`VirtualClock`], and every event at an equal timestamp is applied in
//!   a fixed order — so each chaos scenario is bit-reproducible: same
//!   plan, same outcomes, same metric snapshot, same flight records, same
//!   membership timeline.
//!
//! ## Self-healing
//!
//! Three layers (this PR) turn "fails over" into "heals itself":
//!
//! * **Pluggable failure detection** — the router's member view comes from
//!   a [`FailureDetector`] chosen by [`ClusterConfig::detector`]: the
//!   central prober above (the parity baseline) or SWIM-style gossip
//!   ([`slm_runtime::gossip`]), where members probe seeded-random peers,
//!   retry through proxies, and spread membership facts epidemically —
//!   which, unlike central probing, can tell a dead member from a dead
//!   router link. Every routing-view transition lands in a membership
//!   timeline ([`ClusterRuntime::membership_timeline`]) that reproduces
//!   bitwise for a given `(seed, config, plan)`.
//! * **Cache replication** — with [`ClusterConfig::replication`] set, every
//!   member gets a [`VerificationCache`] and the router drives periodic
//!   replication rounds: journal deltas between replica-group peers (and
//!   optionally to the ring-successor shard), anti-entropy page walks when
//!   a cursor falls behind, all under a per-round byte budget. A failover
//!   target then serves warm hits it never computed. The no-poisoning gate
//!   re-applies on arrival, and since probe episodes are pure functions of
//!   their cell, replication can never change a verdict.
//! * **Hysteresis** — raw detector signals pass through a flap damper
//!   ([`ClusterConfig::hysteresis`]): distinct up/down thresholds, minimum
//!   dwell before readmission, exponential penalty for flapping members.
//!   The spill policy gets the same treatment — its slow-shard signal is a
//!   decayed-window latency quantile held through a dwell window — so
//!   intermittent faults stop whipsawing routing and spill decisions.
//!
//! **Every submitted request gets exactly one typed [`ClusterOutcome`]** —
//! the PR-2 serving invariant extended to cluster scope. The case split:
//! a routed request is owned by exactly one member, whose own one-outcome
//! invariant delivers it (partitioned members keep working — the
//! partition, as documented, cuts the *admission* path, not the response
//! path for already-accepted work); a crashed member's queued and
//! in-flight requests are aborted into [`AbstainCause::ShardCrashed`]
//! outcomes at crash time; a request that cannot be placed at all is
//! refused on the spot with [`AbstainCause::Partitioned`] or
//! [`AbstainCause::ShardUnavailable`]. Nothing hangs; abstention is
//! explicit and typed, in the HALT-RAG spirit of principled abstention.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hallu_obs::{
    stitch, AlertEvent, DecayedWindow, EventRecord, FederatedRegistry, Histogram, MetricsSnapshot,
    Obs, SloConfig, SloEngine, SpanRecord, TraceContext, TraceTree, DEFAULT_LATENCY_BUCKETS_MS,
};
use slm_runtime::gossip::{
    CentralDetector, FailureDetector, GossipConfig, HysteresisConfig, LinkOracle, MemberId,
    SwimDetector, ViewEvent,
};
use slm_runtime::ring::RingOp;
use slm_runtime::{
    CacheConfig, Clock, HashRing, RebalanceReport, RingError, VerificationCache, VirtualClock,
};
use vectordb::index::VectorIndex;

use crate::serving::{
    disposition_label, priority_label, shed_reason_label, Disposition, Priority, ServingConfig,
    ServingRuntime, ShardIdentity, ShedReason,
};
use crate::verified::{ResilientAnswer, ResilientVerifiedPipeline};

/// SplitMix64 — scrambles chaos-plan draws so every episode parameter is a
/// pure function of `(seed, episode index)`, never of call order.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// Kill a member: its queued and in-flight work aborts to
    /// [`AbstainCause::ShardCrashed`] outcomes at crash time.
    Crash {
        /// Target shard.
        shard: u32,
        /// Target replica within the shard (0 = primary).
        replica: u32,
    },
    /// Bring a crashed member back (warm process restart: pipeline and
    /// calibration state survive). The router notices at the next probe.
    Restart {
        /// Target shard.
        shard: u32,
        /// Target replica within the shard (0 = primary).
        replica: u32,
    },
    /// Stretch a member's charged service time by `factor` (1.0 restores
    /// normal speed). Verdicts are unaffected — the node is slow, not
    /// wrong — but its latency histogram inflates, which is what the
    /// spill policy watches.
    Slow {
        /// Target shard.
        shard: u32,
        /// Target replica within the shard (0 = primary).
        replica: u32,
        /// Service-time multiplier.
        factor: f64,
    },
    /// Cut the router↔shard link: probes and new deliveries fail for every
    /// member of the shard, while already-accepted work keeps running to
    /// completion (the admission path is cut, not the members).
    Partition {
        /// Target shard.
        shard: u32,
    },
    /// Heal a partition. The router re-learns the shard at the next probe.
    Heal {
        /// Target shard.
        shard: u32,
    },
}

/// A scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Virtual time the failure fires.
    pub at_ms: f64,
    /// What happens.
    pub kind: ChaosKind,
}

/// A deterministic failure schedule. Events are applied in `at_ms` order,
/// ties broken by insertion order; the plan is plain data, so two runs of
/// the same plan inject byte-identical fault sequences.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Schedule one event.
    #[must_use]
    pub fn with(mut self, at_ms: f64, kind: ChaosKind) -> Self {
        self.events.push(ChaosEvent { at_ms, kind });
        self
    }

    /// Crash a member at `at_ms` and restart it at `until_ms`
    /// (no restart if `until_ms` is infinite).
    #[must_use]
    pub fn crash(mut self, shard: u32, replica: u32, at_ms: f64, until_ms: f64) -> Self {
        self.events.push(ChaosEvent {
            at_ms,
            kind: ChaosKind::Crash { shard, replica },
        });
        if until_ms.is_finite() {
            self.events.push(ChaosEvent {
                at_ms: until_ms,
                kind: ChaosKind::Restart { shard, replica },
            });
        }
        self
    }

    /// Slow a member by `factor` over `[at_ms, until_ms)`.
    #[must_use]
    pub fn slow(
        mut self,
        shard: u32,
        replica: u32,
        factor: f64,
        at_ms: f64,
        until_ms: f64,
    ) -> Self {
        self.events.push(ChaosEvent {
            at_ms,
            kind: ChaosKind::Slow {
                shard,
                replica,
                factor,
            },
        });
        if until_ms.is_finite() {
            self.events.push(ChaosEvent {
                at_ms: until_ms,
                kind: ChaosKind::Slow {
                    shard,
                    replica,
                    factor: 1.0,
                },
            });
        }
        self
    }

    /// Partition a whole shard from the router over `[at_ms, until_ms)`.
    #[must_use]
    pub fn partition(mut self, shard: u32, at_ms: f64, until_ms: f64) -> Self {
        self.events.push(ChaosEvent {
            at_ms,
            kind: ChaosKind::Partition { shard },
        });
        if until_ms.is_finite() {
            self.events.push(ChaosEvent {
                at_ms: until_ms,
                kind: ChaosKind::Heal { shard },
            });
        }
        self
    }

    /// Replica flap: `cycles` crash/restart pairs on one member, one pair
    /// per `period_ms`, each down for half the period.
    #[must_use]
    pub fn flap(
        mut self,
        shard: u32,
        replica: u32,
        start_ms: f64,
        period_ms: f64,
        cycles: usize,
    ) -> Self {
        for c in 0..cycles {
            let down = start_ms + period_ms * c as f64;
            self = self.crash(shard, replica, down, down + period_ms / 2.0);
        }
        self
    }

    /// A seeded plan in the `FaultInjector` discipline: every episode's
    /// kind, target, start, and duration are pure functions of
    /// `(seed, episode index)`. `episodes` failure episodes are spread over
    /// `[0, horizon_ms)` across `shards` shards × `replicas + 1` members.
    pub fn seeded(seed: u64, shards: u32, replicas: u32, horizon_ms: f64, episodes: usize) -> Self {
        let mut plan = Self::none();
        for i in 0..episodes {
            let r = splitmix64(seed ^ splitmix64(0x00C1_05EE_D000 + i as u64));
            let shard = (r % u64::from(shards.max(1))) as u32;
            let replica = ((r >> 16) % (u64::from(replicas) + 1)) as u32;
            let start_frac = ((r >> 24) & 0xFFFF) as f64 / 65536.0;
            let dur_frac = 0.05 + 0.15 * (((r >> 40) & 0xFFFF) as f64 / 65536.0);
            let start = horizon_ms * 0.8 * start_frac;
            let end = (start + horizon_ms * dur_frac).min(horizon_ms);
            plan = match (r >> 8) % 4 {
                0 => plan.crash(shard, replica, start, end),
                1 => {
                    let factor = 2.0 + 6.0 * (((r >> 32) & 0xFF) as f64 / 256.0);
                    plan.slow(shard, replica, factor, start, end)
                }
                2 => plan.partition(shard, start, end),
                _ => plan.flap(shard, replica, start, (end - start).max(1.0) / 2.0, 2),
            };
        }
        plan
    }
}

/// Why the cluster abstained on a request instead of serving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstainCause {
    /// A router↔shard partition cut the request off from its shard.
    Partitioned,
    /// Every member of the key's shard was down (total shard loss).
    ShardUnavailable,
    /// The member holding the request (queued or in flight) crashed.
    ShardCrashed,
}

/// Stable label for an abstain cause (metric labels and events).
pub(crate) fn abstain_cause_label(c: AbstainCause) -> &'static str {
    match c {
        AbstainCause::Partitioned => "partitioned",
        AbstainCause::ShardUnavailable => "shard_unavailable",
        AbstainCause::ShardCrashed => "shard_crashed",
    }
}

/// The cluster-level disposition: a member's serving disposition, or a
/// typed cluster abstention when no member could (or was allowed to)
/// decide one.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterDisposition {
    /// A member ran verification; the pipeline's verdict is inside.
    Completed(Box<ResilientAnswer>),
    /// A member's admission control or deadline enforcement shed it.
    Shed(ShedReason),
    /// The cluster degraded to an explicit abstention — the paper's
    /// `Verdict::Abstain` at serving scope — rather than hanging.
    Abstained(AbstainCause),
    /// Retrieval failed on the serving member.
    Failed(String),
}

/// How the router placed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Served by its home shard's primary.
    Primary,
    /// Failed over to a replica of the home shard.
    Failover {
        /// Replica index that took the request.
        replica: u32,
    },
    /// Spilled off an overloaded home shard to its ring successor.
    Spill {
        /// The shard that absorbed the spill.
        to: u32,
    },
    /// Never placed on any member (the cluster abstained at routing time).
    Unrouted,
}

impl RouteKind {
    /// Stable metric/trace label for this route kind.
    pub fn label(&self) -> &'static str {
        match self {
            RouteKind::Primary => "primary",
            RouteKind::Failover { .. } => "failover",
            RouteKind::Spill { .. } => "spill",
            RouteKind::Unrouted => "unrouted",
        }
    }
}

/// One request's complete cluster record. Exactly one is produced per
/// [`ClusterRuntime::submit_at`] call — never zero, never two.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Ticket returned by `submit_at`.
    pub id: u64,
    /// The submitted question (also the routing key).
    pub question: String,
    /// The submitted priority class.
    pub priority: Priority,
    /// Virtual arrival time at the router.
    pub submitted_at_ms: f64,
    /// Virtual time the disposition was decided.
    pub finished_at_ms: f64,
    /// The key's home shard on the ring.
    pub home_shard: u32,
    /// How the router placed the request.
    pub route: RouteKind,
    /// The member that decided the outcome; `None` when the router
    /// abstained or the member died before finishing.
    pub served_by: Option<ShardIdentity>,
    /// What happened.
    pub disposition: ClusterDisposition,
}

impl ClusterOutcome {
    /// Whether an answer actually reached the user.
    pub fn is_served(&self) -> bool {
        matches!(&self.disposition, ClusterDisposition::Completed(a) if a.is_served())
    }

    /// Stable label for the disposition.
    pub fn label(&self) -> &'static str {
        match &self.disposition {
            ClusterDisposition::Completed(a) => match a.as_ref() {
                ResilientAnswer::Served { .. } => "served",
                ResilientAnswer::Blocked { .. } => "blocked",
                ResilientAnswer::Unverified { .. } => "unverified",
                ResilientAnswer::Abstained { .. } => "abstained",
            },
            ClusterDisposition::Shed(_) => "shed",
            ClusterDisposition::Abstained(_) => "cluster_abstained",
            ClusterDisposition::Failed(_) => "failed",
        }
    }
}

/// Aggregate view of a batch of cluster outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterStats {
    /// Total outcomes summarized.
    pub total: usize,
    /// Verified and served.
    pub served: usize,
    /// Verified and blocked as hallucinated.
    pub blocked: usize,
    /// Verification abstained; the member's failure policy decided.
    pub unverified: usize,
    /// Pipeline-level abstentions surfaced by a member.
    pub abstained: usize,
    /// Shed by a member's admission control or deadline enforcement.
    pub shed: usize,
    /// Retrieval failures.
    pub failed: usize,
    /// Cluster-level abstentions (partition, shard loss, crash).
    pub cluster_abstained: usize,
    /// Requests that failed over to a replica.
    pub failovers: usize,
    /// Requests spilled off their home shard.
    pub spills: usize,
}

impl ClusterStats {
    /// Tally dispositions and routes over `outcomes`.
    pub fn from_outcomes(outcomes: &[ClusterOutcome]) -> Self {
        let mut s = Self {
            total: outcomes.len(),
            ..Self::default()
        };
        for o in outcomes {
            match &o.disposition {
                ClusterDisposition::Completed(a) => match a.as_ref() {
                    ResilientAnswer::Served { .. } => s.served += 1,
                    ResilientAnswer::Blocked { .. } => s.blocked += 1,
                    ResilientAnswer::Unverified { .. } => s.unverified += 1,
                    ResilientAnswer::Abstained { .. } => s.abstained += 1,
                },
                ClusterDisposition::Shed(_) => s.shed += 1,
                ClusterDisposition::Abstained(_) => s.cluster_abstained += 1,
                ClusterDisposition::Failed(_) => s.failed += 1,
            }
            match o.route {
                RouteKind::Failover { .. } => s.failovers += 1,
                RouteKind::Spill { .. } => s.spills += 1,
                RouteKind::Primary | RouteKind::Unrouted => {}
            }
        }
        s
    }
}

/// When the router spills load off a shard.
///
/// Two signals with deliberately different latencies. Queue depth is read
/// *live* at route time — an overload burst must divert immediately. The
/// slow-shard signal is a decayed-window latency quantile
/// ([`DecayedWindow`], refreshed on the probe cadence) passed through a
/// minimum dwell: a shard flips between fast and slow at most once per
/// `min_dwell_ms`, so spill targets stop oscillating under intermittent
/// slowness, and — the PR 6 staleness fix — a shard that *recovers* sheds
/// its slow reputation as the window decays, where lifetime histogram
/// means never forgot a past slow regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillPolicy {
    /// Spill when the chosen member's queue is at least this deep (live).
    pub queue_depth: usize,
    /// ... or while the shard's windowed service-latency quantile is at
    /// least this high (hysteretic slow-state).
    pub slow_service_ms: f64,
    /// Which quantile of the decayed window to compare (0.9 = p90).
    pub latency_quantile: f64,
    /// Minimum decayed observation mass in the window before the quantile
    /// is trusted.
    pub min_observations: f64,
    /// Per-refresh decay of the latency window: 0 keeps only the last
    /// refresh interval, values near 1 remember long histories.
    pub window_decay: f64,
    /// Minimum time between slow-state flips per shard.
    pub min_dwell_ms: f64,
}

impl Default for SpillPolicy {
    fn default() -> Self {
        Self {
            queue_depth: 4,
            slow_service_ms: 250.0,
            latency_quantile: 0.9,
            min_observations: 4.0,
            window_decay: 0.5,
            min_dwell_ms: 100.0,
        }
    }
}

/// One transition of a shard's hysteretic spill slow-state, for the
/// flap-damping regression suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillTransition {
    /// Virtual time of the flip.
    pub at_ms: f64,
    /// The shard whose slow-state changed.
    pub shard: u32,
    /// The new state: `true` = slow (spill away), `false` = recovered.
    pub slow: bool,
}

/// Hysteretic slow-state of one shard.
#[derive(Debug, Clone, Copy)]
struct SpillState {
    slow: bool,
    changed_at_ms: f64,
}

/// Which failure-detection protocol the router runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// Router-driven probing (the original baseline): every member is
    /// probed each `probe_interval_ms` and suspected `probe_timeout_ms`
    /// after an unanswered probe. Cannot distinguish a dead member from a
    /// dead router link.
    Central,
    /// SWIM-style gossip ([`slm_runtime::gossip::SwimDetector`]): members
    /// probe seeded-random peers, fall back to indirect ping-req through
    /// proxies, refute stale suspicion by incarnation, and piggyback
    /// membership deltas — the router learns from the epidemic rather than
    /// probing everyone itself.
    Gossip(GossipConfig),
}

/// Cross-member replication of warm verification-cache entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationConfig {
    /// Per-member cache bounds.
    pub cache: CacheConfig,
    /// How often replication rounds run.
    pub sync_interval_ms: f64,
    /// Byte budget shipped per (source, target) pair per round — bounds
    /// the per-round replication bandwidth, not eventual coverage.
    pub byte_budget_per_round: usize,
    /// Also replicate each member's entries to the same replica slot on
    /// the ring-successor shard — where this shard's keys re-home if it
    /// leaves the ring, and where its load spills.
    pub cross_shard: bool,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::default(),
            sync_interval_ms: 100.0,
            byte_budget_per_round: 16 * 1024,
            cross_shard: true,
        }
    }
}

/// Cluster topology and router configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Replicas per shard beyond the primary (0 = primary only).
    pub replicas: u32,
    /// Per-member admission and deadline configuration.
    pub serving: ServingConfig,
    /// How often the router health-probes every member.
    pub probe_interval_ms: f64,
    /// How long an unanswered probe takes to mark its member down.
    pub probe_timeout_ms: f64,
    /// Overload spilling; `None` (the default) pins every key to its home
    /// shard, which is what makes single-shard chaos unable to perturb
    /// the rest of the cluster.
    pub spill: Option<SpillPolicy>,
    /// Which failure-detection protocol drives the routing view.
    pub detector: DetectorKind,
    /// Flap damping applied to the detector's raw signals before they
    /// become routing decisions. The default
    /// ([`HysteresisConfig::passthrough`]) disables damping, reproducing
    /// the undamped baseline bit-for-bit.
    pub hysteresis: HysteresisConfig,
    /// Warm-cache replication between members; `None` (the default) gives
    /// members no verification cache at all (the original behavior).
    pub replication: Option<ReplicationConfig>,
    /// Consistent-hash ring slot count.
    pub ring_slots: usize,
    /// Consistent-hash ring seed.
    pub ring_seed: u64,
    /// Distributed tracing: derive one deterministic [`TraceContext`] per
    /// request and record cross-member spans under it. Never influences
    /// routing or verdicts (instrumentation neutrality); turn off to
    /// measure the instrumentation itself.
    pub tracing: bool,
    /// Seed folded into every request's trace/span-id derivation, so trace
    /// identity is a pure function of `(trace_seed, request id)`.
    pub trace_seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            serving: ServingConfig::default(),
            probe_interval_ms: 50.0,
            probe_timeout_ms: 25.0,
            spill: None,
            detector: DetectorKind::Central,
            hysteresis: HysteresisConfig::passthrough(),
            replication: None,
            ring_slots: slm_runtime::DEFAULT_RING_SLOTS,
            ring_seed: 0xC105_7E55,
            tracing: true,
            trace_seed: 0x7ACE_5EED,
        }
    }
}

/// Health of one member, as both ground truth and the router's belief.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberHealth {
    /// Which member.
    pub identity: ShardIdentity,
    /// Ground truth: the process is running.
    pub alive: bool,
    /// The router's probe-derived view (lags truth by at most one probe
    /// interval plus the probe timeout).
    pub router_view_up: bool,
}

/// A request accepted by the router but not yet routed.
#[derive(Debug, Clone)]
struct ClusterArrival {
    id: u64,
    question: String,
    priority: Priority,
    at_ms: f64,
    deadline_ms: f64,
}

/// Where a delivered request went, so its member outcome can be lifted
/// back into a [`ClusterOutcome`].
#[derive(Debug, Clone)]
struct PendingRoute {
    cluster_id: u64,
    submitted_at_ms: f64,
    home_shard: u32,
    route: RouteKind,
}

/// One serving node plus its router-side instrumentation. Detection state
/// (view, suspicion, incarnations) lives in the cluster's
/// [`FailureDetector`], not here.
struct Member<I> {
    runtime: ServingRuntime<I>,
    /// Ground truth (chaos state).
    alive: bool,
    /// Decayed window over this member's `hallu_serving_service_ms`
    /// series (a live handle onto the same registry cell the member's
    /// serving loop writes), refreshed on the probe cadence: the *recent*
    /// latency regime the spill policy reads.
    window: DecayedWindow,
    /// This member's verification cache, when replication is configured.
    cache: Option<Arc<VerificationCache>>,
    /// This member's own observability sink (source `s{shard}r{replica}`):
    /// the per-member fragment the federation and trace-stitching
    /// accessors read. Member-scope series never mix with the router's.
    obs: Obs,
}

/// A shard: primary + replicas, and the shard-wide partition flag.
struct ReplicaGroup<I> {
    shard: u32,
    partitioned: bool,
    members: Vec<Member<I>>,
}

/// Ground-truth connectivity snapshot handed to the failure detector each
/// poll. A router↔shard partition cuts only router links: members of a
/// partitioned shard still gossip with other members, which is exactly how
/// SWIM's indirect path tells a dead link from a dead process.
struct TruthOracle {
    alive: BTreeSet<(u32, u32)>,
    partitioned: BTreeSet<u32>,
}

impl LinkOracle for TruthOracle {
    fn member_alive(&self, m: MemberId) -> bool {
        self.alive.contains(&(m.shard, m.replica))
    }

    fn link_up(&self, from: Option<MemberId>, to: MemberId) -> bool {
        match from {
            None => self.member_alive(to) && !self.partitioned.contains(&to.shard),
            Some(a) => self.member_alive(a) && self.member_alive(to),
        }
    }
}

/// Per-(source, target) replication progress.
#[derive(Debug, Clone, Copy, Default)]
struct ReplCursor {
    /// Next journal sequence to pull.
    journal: u64,
    /// Anti-entropy page index while in fallback.
    page: usize,
    /// Whether the journal rotated past us and we are page-walking.
    fallback: bool,
}

/// The sharded verification cluster. See the module docs for the model.
pub struct ClusterRuntime<I> {
    /// Topology and router configuration.
    pub config: ClusterConfig,
    clock: Arc<VirtualClock>,
    obs: Obs,
    ring: HashRing,
    groups: Vec<ReplicaGroup<I>>,
    next_shard_id: u32,
    next_id: u64,
    submitted: u64,
    arrivals: Vec<ClusterArrival>,
    chaos: Vec<ChaosEvent>,
    chaos_cursor: usize,
    pending: BTreeMap<(u32, u32, u64), PendingRoute>,
    outcomes: Vec<ClusterOutcome>,
    detector: Box<dyn FailureDetector>,
    /// Every routing-view transition, in decision order — the bitwise
    /// artifact the reproducibility suite compares.
    membership_timeline: Vec<ViewEvent>,
    /// Hysteretic per-shard slow-state (spill policy).
    spill_states: BTreeMap<u32, SpillState>,
    /// Every spill slow-state flip, for the flap-damping regression.
    spill_timeline: Vec<SpillTransition>,
    next_window_ms: f64,
    next_sync_ms: f64,
    repl_cursors: BTreeMap<(MemberId, MemberId), ReplCursor>,
    /// Deterministic burn-rate alerting over the outcome stream, when
    /// configured via [`with_slos`](Self::with_slos).
    slo: Option<SloEngine>,
}

impl<I: VectorIndex> ClusterRuntime<I> {
    /// Build a cluster of `shards` replica groups. `factory` is called
    /// once per member — `(replicas + 1) × shards` times — with the
    /// member's identity, and must return that member's (already warmed)
    /// pipeline. Every member runs on one shared [`VirtualClock`], and the
    /// cluster starts with an internal observability sink so spill
    /// detection and chaos events work without external wiring; use
    /// [`with_obs`](Self::with_obs) to direct them to your own sink.
    pub fn new(
        shards: u32,
        config: ClusterConfig,
        mut factory: impl FnMut(ShardIdentity) -> ResilientVerifiedPipeline<I>,
    ) -> Self {
        let mut cluster = Self {
            clock: Arc::new(VirtualClock::new()),
            obs: Obs::new_with_source("router"),
            ring: HashRing::new(config.ring_seed, config.ring_slots),
            groups: Vec::new(),
            next_shard_id: 0,
            next_id: 0,
            submitted: 0,
            arrivals: Vec::new(),
            chaos: Vec::new(),
            chaos_cursor: 0,
            pending: BTreeMap::new(),
            outcomes: Vec::new(),
            detector: Self::build_detector(&config),
            membership_timeline: Vec::new(),
            spill_states: BTreeMap::new(),
            spill_timeline: Vec::new(),
            next_window_ms: 0.0,
            next_sync_ms: 0.0,
            repl_cursors: BTreeMap::new(),
            slo: None,
            config,
        };
        cluster.obs.bind_time(cluster.clock.clone());
        cluster.detector.bind_obs(&cluster.obs);
        for _ in 0..shards {
            cluster.add_shard(&mut factory);
        }
        cluster
    }

    fn build_detector(config: &ClusterConfig) -> Box<dyn FailureDetector> {
        match config.detector {
            DetectorKind::Central => Box::new(CentralDetector::new(
                config.probe_interval_ms,
                config.probe_timeout_ms,
                config.hysteresis,
            )),
            DetectorKind::Gossip(gossip) => Box::new(SwimDetector::new(gossip, config.hysteresis)),
        }
    }

    /// Build the per-member verification cache mandated by `replication`,
    /// registered against `obs`.
    fn build_member_cache(replication: &ReplicationConfig, obs: &Obs) -> Arc<VerificationCache> {
        Arc::new(VerificationCache::new(replication.cache).with_obs(obs))
    }

    /// Redirect the cluster's *router-scope* counters, events, and spans
    /// to `obs`, bound to the shared virtual clock. Member runtimes keep
    /// their own per-member sinks (source `s{shard}r{replica}`) — the
    /// federation and trace-stitching accessors read those directly — so
    /// swapping the router sink never rebinds member caches or serving
    /// state. Routing decisions and outcomes are bitwise unaffected.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        obs.bind_time(self.clock.clone());
        self.detector.bind_obs(obs);
        self
    }

    /// Attach a deterministic SLO engine evaluating `configs` over the
    /// cluster's outcome stream. Burn rates tick at discrete-event
    /// boundaries on the shared virtual clock, so the alert timeline is
    /// bitwise reproducible for a given `(seed, config, plan)`.
    #[must_use]
    pub fn with_slos(mut self, configs: Vec<SloConfig>) -> Self {
        self.slo = Some(SloEngine::new(configs));
        self
    }

    /// Install a failure schedule. Events run in `at_ms` order (ties keep
    /// plan order); calling again replaces the plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        let mut events = plan.events;
        events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        self.chaos = events;
        self.chaos_cursor = 0;
        self
    }

    /// The routing ring (for locality/rebalance assertions).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// Every routing-view transition so far, in decision order. For a
    /// given `(seed, config, plan)` this sequence is bitwise reproducible.
    pub fn membership_timeline(&self) -> &[ViewEvent] {
        &self.membership_timeline
    }

    /// Every spill slow-state flip so far, in decision order.
    pub fn spill_timeline(&self) -> &[SpillTransition] {
        &self.spill_timeline
    }

    /// Federate the router's and every member's metric registries into one
    /// labeled view: `"router"` first, then members in (shard, replica)
    /// order, so the merged output is deterministically ordered.
    pub fn federated(&self) -> FederatedRegistry {
        let mut fed = FederatedRegistry::new();
        fed.add("router", self.obs.metrics_snapshot());
        for group in &self.groups {
            for (ridx, m) in group.members.iter().enumerate() {
                fed.add(
                    &format!("s{}r{}", group.shard, ridx),
                    m.obs.metrics_snapshot(),
                );
            }
        }
        fed
    }

    /// One fleet-level metrics snapshot: counters summed, gauges kept
    /// per-member under a `member` label, histograms merged bucket-wise.
    pub fn federated_snapshot(&self) -> MetricsSnapshot {
        self.federated().merge()
    }

    /// Fleet-level Prometheus exposition page over the federated view.
    pub fn render_prometheus_federated(&self) -> String {
        self.federated().render_prometheus()
    }

    /// Stitch the router's and every member's span fragments (plus flight
    /// records, for drop accounting) into one causal trace tree per
    /// request, ordered by trace id.
    pub fn stitched_traces(&self) -> Vec<TraceTree> {
        let mut spans = self.obs.finished_spans();
        let mut flights = self.obs.flight_records();
        for group in &self.groups {
            for m in &group.members {
                spans.extend(m.obs.finished_spans());
                flights.extend(m.obs.flight_records());
            }
        }
        stitch(&spans, &flights)
    }

    /// Every SLO alert transition so far, in emission order (empty without
    /// [`with_slos`](Self::with_slos)).
    pub fn alert_timeline(&self) -> &[AlertEvent] {
        self.slo.as_ref().map_or(&[], SloEngine::timeline)
    }

    /// Deterministic per-request trace context, a pure function of
    /// `(trace_seed, request id)`; `None` when tracing is disabled.
    fn trace_ctx(&self, id: u64) -> Option<TraceContext> {
        self.config
            .tracing
            .then(|| TraceContext::root(self.config.trace_seed, id))
    }

    /// Record a zero-or-finite-width router-side span derived from `ctx`
    /// on the router sink.
    fn record_router_span(
        &self,
        ctx: TraceContext,
        name: &str,
        ordinal: u64,
        start_ms: f64,
        end_ms: f64,
        events: Vec<EventRecord>,
    ) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.record_span(SpanRecord {
            id: ctx.child_id(name, ordinal),
            parent: ctx.span_id,
            name: name.to_string(),
            start_ms,
            end_ms,
            events,
            trace_id: ctx.trace_id,
            source: String::new(),
        });
    }

    /// Aggregate verification-cache statistics summed over every member
    /// (zeros when replication is off). `replicated_hits > 0` is the
    /// self-healing proof: some member served an answer from work it never
    /// computed.
    pub fn cache_stats_total(&self) -> slm_runtime::CacheStats {
        let mut total = slm_runtime::CacheStats::default();
        for group in &self.groups {
            for member in &group.members {
                if let Some(cache) = &member.cache {
                    let s = cache.stats();
                    total.hits += s.hits;
                    total.misses += s.misses;
                    total.inserts += s.inserts;
                    total.updates += s.updates;
                    total.evictions += s.evictions;
                    total.rejected += s.rejected;
                    total.replicated_inserts += s.replicated_inserts;
                    total.replicated_hits += s.replicated_hits;
                    total.entries += s.entries;
                    total.bytes += s.bytes;
                }
            }
        }
        total
    }

    /// Ground-truth and router-view health of every member, in
    /// (shard, replica) order.
    pub fn member_health(&self) -> Vec<MemberHealth> {
        let mut out = Vec::new();
        for group in &self.groups {
            for (ridx, m) in group.members.iter().enumerate() {
                let id = MemberId {
                    shard: group.shard,
                    replica: ridx as u32,
                };
                out.push(MemberHealth {
                    identity: ShardIdentity {
                        shard: group.shard,
                        replica: ridx as u32,
                    },
                    alive: m.alive,
                    router_view_up: self.detector.is_up(id),
                });
            }
        }
        out
    }

    /// Grow the cluster by one shard (fresh id), stealing a bounded,
    /// asserted slice of the keyspace: the ring moves at most ⌊S/N⌋ slots,
    /// all onto the new shard, so at most ~K/N keys change home.
    pub fn add_shard(
        &mut self,
        factory: &mut impl FnMut(ShardIdentity) -> ResilientVerifiedPipeline<I>,
    ) -> RebalanceReport {
        let shard = self.next_shard_id;
        self.next_shard_id += 1;
        let now = self.clock.now_ms();
        let decay = self.config.spill.map_or(0.5, |p| p.window_decay);
        let mut members = Vec::new();
        for replica in 0..=self.config.replicas {
            let identity = ShardIdentity { shard, replica };
            let member_obs = Obs::new_with_source(&format!("s{shard}r{replica}"));
            member_obs.bind_time(self.clock.clone());
            let mut runtime = ServingRuntime::new(factory(identity), self.config.serving)
                .with_shared_clock(self.clock.clone())
                .with_identity(shard, replica)
                .with_obs(&member_obs);
            let cache = self.config.replication.as_ref().map(|replication| {
                let cache = Self::build_member_cache(replication, &member_obs);
                runtime.set_cache(cache.clone());
                cache
            });
            let service_hist = Self::member_service_hist(&member_obs, shard, replica);
            let window = DecayedWindow::new(service_hist, decay);
            self.detector.register(MemberId { shard, replica }, now);
            members.push(Member {
                runtime,
                alive: true,
                window,
                cache,
                obs: member_obs,
            });
        }
        self.groups.push(ReplicaGroup {
            shard,
            partitioned: false,
            members,
        });
        let report = match self.ring.add_shard(shard) {
            Ok(report) => report,
            Err(e) => {
                // Fresh ids come from a monotone counter, so this is
                // unreachable; degrade to a no-op report instead of
                // panicking in release builds.
                debug_assert!(false, "fresh shard id {shard} already on ring: {e}");
                RebalanceReport {
                    shard,
                    op: RingOp::Added,
                    moved_slots: 0,
                    slot_count: self.ring.slot_count(),
                    shards_after: self.ring.shard_count(),
                }
            }
        };
        debug_assert!(
            report.within_bound(),
            "bounded rebalance violated on add: {report:?}"
        );
        self.obs
            .counter(
                "hallu_cluster_rebalanced_slots_total",
                "Ring slots moved by shard add/remove",
                &[],
            )
            .add(report.moved_slots as u64);
        self.update_view_gauge(self.groups.len() - 1);
        report
    }

    /// Remove a shard administratively. Work it still holds is aborted to
    /// typed [`AbstainCause::ShardUnavailable`] outcomes (drain the
    /// cluster first to avoid them); only the departing shard's keys move,
    /// asserted against the ⌈K/N⌉ bound.
    ///
    /// # Errors
    /// [`RingError::UnknownShard`] if `shard` is not in the cluster.
    pub fn remove_shard(&mut self, shard: u32) -> Result<RebalanceReport, RingError> {
        let report = self.ring.remove_shard(shard)?;
        debug_assert!(
            report.within_bound(),
            "bounded rebalance violated on remove: {report:?}"
        );
        let now = self.clock.now_ms();
        if let Some(gidx) = self.groups.iter().position(|g| g.shard == shard) {
            let mut group = self.groups.remove(gidx);
            for ridx in 0..group.members.len() {
                self.detector.deregister(MemberId {
                    shard,
                    replica: ridx as u32,
                });
            }
            self.repl_cursors
                .retain(|(src, dst), _| src.shard != shard && dst.shard != shard);
            self.spill_states.remove(&shard);
            for (ridx, member) in group.members.iter_mut().enumerate() {
                for aborted in member.runtime.abort_pending() {
                    self.resolve_aborted(shard, ridx as u32, aborted.id, now, |p| ClusterOutcome {
                        id: p.cluster_id,
                        question: aborted.question.clone(),
                        priority: aborted.priority,
                        submitted_at_ms: p.submitted_at_ms,
                        finished_at_ms: now,
                        home_shard: p.home_shard,
                        route: p.route,
                        served_by: None,
                        disposition: ClusterDisposition::Abstained(AbstainCause::ShardUnavailable),
                    });
                }
            }
        }
        self.obs
            .counter(
                "hallu_cluster_rebalanced_slots_total",
                "Ring slots moved by shard add/remove",
                &[],
            )
            .add(report.moved_slots as u64);
        Ok(report)
    }

    /// Schedule a question to arrive at the router at virtual time `at_ms`
    /// with the configured default deadline. Returns the cluster ticket.
    pub fn submit_at(&mut self, at_ms: f64, question: &str, priority: Priority) -> u64 {
        self.submit_at_with_deadline(
            at_ms,
            question,
            priority,
            self.config.serving.default_deadline_ms,
        )
    }

    /// [`submit_at`](Self::submit_at) with an explicit relative deadline.
    pub fn submit_at_with_deadline(
        &mut self,
        at_ms: f64,
        question: &str,
        priority: Priority,
        deadline_ms: f64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.submitted += 1;
        self.obs
            .counter(
                "hallu_cluster_submitted_total",
                "Requests submitted to the cluster router",
                &[],
            )
            .inc();
        self.arrivals.push(ClusterArrival {
            id,
            question: question.to_string(),
            priority,
            at_ms: at_ms.max(self.clock.now_ms()),
            deadline_ms: deadline_ms.max(0.0),
        });
        id
    }

    /// Run the cluster's discrete-event loop until every submission has an
    /// outcome and every member is idle; returns how many outcomes are
    /// waiting in [`drain_outcomes`](Self::drain_outcomes).
    ///
    /// Simultaneous events apply in a fixed order — chaos, the failure
    /// detector's poll, spill-window refresh, cache replication,
    /// arrivals, then member progress in (shard, replica) order — so the
    /// whole cluster is one deterministic simulation: same inputs and
    /// plan, same everything.
    pub fn run_until_idle(&mut self) -> usize {
        self.arrivals.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        loop {
            let now = self.clock.now_ms();
            let members_active = self
                .groups
                .iter()
                .any(|g| g.members.iter().any(|m| m.runtime.next_wake_ms().is_some()));
            if self.arrivals.is_empty() && !members_active {
                break;
            }
            let mut wake = f64::INFINITY;
            if let Some(a) = self.arrivals.first() {
                wake = wake.min(a.at_ms);
            }
            if let Some(e) = self.chaos.get(self.chaos_cursor) {
                wake = wake.min(e.at_ms);
            }
            if let Some(t) = self.detector.next_wake_ms() {
                wake = wake.min(t);
            }
            wake = wake.min(self.next_window_ms);
            if self.config.replication.is_some() {
                wake = wake.min(self.next_sync_ms);
            }
            for group in &self.groups {
                for m in &group.members {
                    if let Some(t) = m.runtime.next_wake_ms() {
                        wake = wake.min(t);
                    }
                }
            }
            debug_assert!(wake.is_finite(), "work pending but no wake time");
            let t = wake.max(now);
            self.clock.advance_to_ms(t);
            self.apply_chaos_due(t);
            self.poll_detector(t);
            self.refresh_windows_if_due(t);
            self.replicate_if_due(t);
            self.route_due_arrivals(t);
            self.pump_and_collect();
            if let Some(slo) = &mut self.slo {
                slo.tick(t);
            }
        }
        debug_assert!(
            self.pending.is_empty(),
            "requests without outcomes: {:?}",
            self.pending.keys().collect::<Vec<_>>()
        );
        debug_assert_eq!(
            self.submitted as usize,
            self.outcomes.len(),
            "one outcome per submission"
        );
        self.outcomes.len()
    }

    /// Take ownership of every decided outcome, in decision order. Each
    /// outcome is delivered exactly once.
    pub fn drain_outcomes(&mut self) -> Vec<ClusterOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Live handle onto a member's service-time series. Registration is
    /// idempotent per (name, labels), so this aliases the very cell the
    /// member's serving loop writes.
    fn member_service_hist(obs: &Obs, shard: u32, replica: u32) -> Histogram {
        let (s, r) = (shard.to_string(), replica.to_string());
        obs.histogram(
            "hallu_serving_service_ms",
            "Charged verification time per request that reached service",
            &[("shard", s.as_str()), ("replica", r.as_str())],
            &DEFAULT_LATENCY_BUCKETS_MS,
        )
    }

    /// Apply every chaos event due at or before `t`.
    fn apply_chaos_due(&mut self, t: f64) {
        while let Some(e) = self.chaos.get(self.chaos_cursor).copied() {
            if e.at_ms > t {
                break;
            }
            self.chaos_cursor += 1;
            self.apply_chaos(e);
        }
    }

    fn apply_chaos(&mut self, e: ChaosEvent) {
        let now = self.clock.now_ms();
        match e.kind {
            ChaosKind::Crash { shard, replica } => {
                self.obs.event(
                    "cluster_chaos",
                    &[
                        ("kind", "crash".to_string()),
                        ("shard", shard.to_string()),
                        ("replica", replica.to_string()),
                    ],
                );
                let Some(gidx) = self.groups.iter().position(|g| g.shard == shard) else {
                    return;
                };
                let Some(member) = self.groups[gidx].members.get_mut(replica as usize) else {
                    return;
                };
                if !member.alive {
                    return;
                }
                member.alive = false;
                let aborted = member.runtime.abort_pending();
                for a in aborted {
                    self.resolve_aborted(shard, replica, a.id, now, |p| ClusterOutcome {
                        id: p.cluster_id,
                        question: a.question.clone(),
                        priority: a.priority,
                        submitted_at_ms: p.submitted_at_ms,
                        finished_at_ms: now,
                        home_shard: p.home_shard,
                        route: p.route,
                        served_by: None,
                        disposition: ClusterDisposition::Abstained(AbstainCause::ShardCrashed),
                    });
                }
            }
            ChaosKind::Restart { shard, replica } => {
                self.obs.event(
                    "cluster_chaos",
                    &[
                        ("kind", "restart".to_string()),
                        ("shard", shard.to_string()),
                        ("replica", replica.to_string()),
                    ],
                );
                let known = self
                    .member_mut(shard, replica)
                    .map(|m| m.alive = true)
                    .is_some();
                if known {
                    // Gossip rejoins with a bumped incarnation so recovery
                    // overrides standing death certificates; the central
                    // prober re-learns liveness on its own.
                    self.detector
                        .notify_restart(MemberId { shard, replica }, now);
                }
            }
            ChaosKind::Slow {
                shard,
                replica,
                factor,
            } => {
                self.obs.event(
                    "cluster_chaos",
                    &[
                        ("kind", "slow".to_string()),
                        ("shard", shard.to_string()),
                        ("replica", replica.to_string()),
                        ("factor", format!("{factor:.3}")),
                    ],
                );
                if let Some(m) = self.member_mut(shard, replica) {
                    m.runtime.set_service_factor(factor);
                }
            }
            ChaosKind::Partition { shard } => {
                self.obs.event(
                    "cluster_chaos",
                    &[
                        ("kind", "partition".to_string()),
                        ("shard", shard.to_string()),
                    ],
                );
                if let Some(g) = self.groups.iter_mut().find(|g| g.shard == shard) {
                    g.partitioned = true;
                }
            }
            ChaosKind::Heal { shard } => {
                self.obs.event(
                    "cluster_chaos",
                    &[("kind", "heal".to_string()), ("shard", shard.to_string())],
                );
                if let Some(g) = self.groups.iter_mut().find(|g| g.shard == shard) {
                    g.partitioned = false;
                }
            }
        }
    }

    /// Ground-truth connectivity snapshot for the detector's link oracle.
    fn truth(&self) -> TruthOracle {
        let mut alive = BTreeSet::new();
        let mut partitioned = BTreeSet::new();
        for group in &self.groups {
            if group.partitioned {
                partitioned.insert(group.shard);
            }
            for (ridx, m) in group.members.iter().enumerate() {
                if m.alive {
                    alive.insert((group.shard, ridx as u32));
                }
            }
        }
        TruthOracle { alive, partitioned }
    }

    /// Run every failure-detection step due at or before `t` and fold the
    /// resulting routing-view transitions into cluster state.
    fn poll_detector(&mut self, t: f64) {
        let truth = self.truth();
        let events = self.detector.poll(t, &truth);
        self.handle_view_events(events);
    }

    /// Record routing-view transitions: membership timeline, mark-up/down
    /// events and counters, per-shard view gauge.
    fn handle_view_events(&mut self, events: Vec<ViewEvent>) {
        if events.is_empty() {
            return;
        }
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for ev in &events {
            touched.insert(ev.member.shard);
            if ev.up {
                self.obs.event(
                    "cluster_mark_up",
                    &[
                        ("shard", ev.member.shard.to_string()),
                        ("replica", ev.member.replica.to_string()),
                    ],
                );
            } else {
                self.mark_down_event(ev.member.shard, ev.member.replica, ev.why);
            }
        }
        self.membership_timeline.extend(events);
        for shard in touched {
            if let Some(gidx) = self.groups.iter().position(|g| g.shard == shard) {
                self.update_view_gauge(gidx);
            }
        }
    }

    /// On the probe cadence, refresh every member's decayed latency window
    /// and re-evaluate each shard's hysteretic slow state. Queue depth is
    /// still read live at route time; this drives only the latency half of
    /// the spill signal.
    fn refresh_windows_if_due(&mut self, t: f64) {
        if self.next_window_ms > t {
            return;
        }
        let step = self.config.probe_interval_ms.max(1e-3);
        while self.next_window_ms <= t {
            self.next_window_ms += step;
        }
        for group in &mut self.groups {
            for m in &mut group.members {
                m.window.refresh();
            }
        }
        let Some(policy) = self.config.spill else {
            return;
        };
        // The slow signal reads the member the router would actually route
        // to: the first router-believed-up replica.
        let mut signals: Vec<(u32, bool)> = Vec::new();
        for group in &self.groups {
            let first_up = group.members.iter().enumerate().find(|(ridx, _)| {
                self.detector.is_up(MemberId {
                    shard: group.shard,
                    replica: *ridx as u32,
                })
            });
            let Some((_, member)) = first_up else {
                continue;
            };
            let slow = member.window.mass() >= policy.min_observations
                && member.window.quantile_estimate(policy.latency_quantile)
                    >= policy.slow_service_ms;
            signals.push((group.shard, slow));
        }
        for (shard, slow) in signals {
            let state = self.spill_states.entry(shard).or_insert(SpillState {
                slow: false,
                changed_at_ms: f64::NEG_INFINITY,
            });
            if state.slow != slow && t - state.changed_at_ms >= policy.min_dwell_ms {
                state.slow = slow;
                state.changed_at_ms = t;
                self.spill_timeline.push(SpillTransition {
                    at_ms: t,
                    shard,
                    slow,
                });
                self.obs.event(
                    "cluster_spill_flip",
                    &[("shard", shard.to_string()), ("slow", slow.to_string())],
                );
            }
        }
    }

    /// On the sync cadence, ship recently-admitted verification-cache
    /// entries between members: within each replica group (all ordered
    /// live pairs) and, when configured, replica-matched to the shard's
    /// ring successor. Each pair follows its source's admission journal;
    /// if the journal rotated past the pair's cursor (the target was down
    /// too long), the pair falls back to a bounded anti-entropy page walk
    /// over the source's whole cache, rejoining the journal at its current
    /// head. Every transfer is re-gated by the target's admission policy,
    /// so replication cannot launder entries the target would not cache.
    fn replicate_if_due(&mut self, t: f64) {
        let Some(replication) = self.config.replication else {
            return;
        };
        if self.next_sync_ms > t {
            return;
        }
        let step = replication.sync_interval_ms.max(1e-3);
        while self.next_sync_ms <= t {
            self.next_sync_ms += step;
            self.replication_round(&replication);
        }
    }

    /// One replication round: every live pair moves at most
    /// `byte_budget_per_round` bytes.
    fn replication_round(&mut self, replication: &ReplicationConfig) {
        type Pair = (
            MemberId,
            MemberId,
            Arc<VerificationCache>,
            Arc<VerificationCache>,
        );
        let mut pairs: Vec<Pair> = Vec::new();
        for group in &self.groups {
            for i in 0..group.members.len() {
                for j in 0..group.members.len() {
                    if i == j || !group.members[i].alive || !group.members[j].alive {
                        continue;
                    }
                    if let (Some(src), Some(dst)) =
                        (&group.members[i].cache, &group.members[j].cache)
                    {
                        let sid = MemberId {
                            shard: group.shard,
                            replica: i as u32,
                        };
                        let did = MemberId {
                            shard: group.shard,
                            replica: j as u32,
                        };
                        pairs.push((sid, did, src.clone(), dst.clone()));
                    }
                }
            }
        }
        if replication.cross_shard {
            for group in &self.groups {
                let Some(succ) = self.ring.successor_of(group.shard) else {
                    continue;
                };
                let Some(succ_group) = self.groups.iter().find(|g| g.shard == succ) else {
                    continue;
                };
                for r in 0..group.members.len().min(succ_group.members.len()) {
                    if !group.members[r].alive || !succ_group.members[r].alive {
                        continue;
                    }
                    if let (Some(src), Some(dst)) =
                        (&group.members[r].cache, &succ_group.members[r].cache)
                    {
                        let sid = MemberId {
                            shard: group.shard,
                            replica: r as u32,
                        };
                        let did = MemberId {
                            shard: succ,
                            replica: r as u32,
                        };
                        pairs.push((sid, did, src.clone(), dst.clone()));
                    }
                }
            }
        }
        let budget = replication.byte_budget_per_round;
        let mut journal_shipped = 0u64;
        let mut anti_entropy_shipped = 0u64;
        for (sid, did, src, dst) in pairs {
            let cur = self.repl_cursors.entry((sid, did)).or_default();
            if !cur.fallback {
                match src.recent_since(cur.journal, budget) {
                    Some((next, entries)) => {
                        cur.journal = next;
                        for (key, value) in entries {
                            if dst.insert_replicated(&key.as_key_ref(), value) {
                                journal_shipped += 1;
                            }
                        }
                        continue;
                    }
                    None => {
                        // The journal rotated past this pair (the target
                        // was unreachable too long): full page walk, then
                        // rejoin the journal at its current head.
                        cur.fallback = true;
                        cur.journal = src.journal_seq();
                        cur.page = 0;
                    }
                }
            }
            let (entries, next_page) = src.sync_page(cur.page, budget);
            for (key, value) in entries {
                if dst.insert_replicated(&key.as_key_ref(), value) {
                    anti_entropy_shipped += 1;
                }
            }
            if next_page == 0 {
                // Wrapped: the walk covered everything; resume the journal.
                cur.fallback = false;
            }
            cur.page = next_page;
        }
        if self.obs.enabled() {
            self.obs
                .counter(
                    "hallu_cluster_replicated_total",
                    "Verification-cache entries replicated between members, by path",
                    &[("path", "journal")],
                )
                .add(journal_shipped);
            self.obs
                .counter(
                    "hallu_cluster_replicated_total",
                    "Verification-cache entries replicated between members, by path",
                    &[("path", "anti_entropy")],
                )
                .add(anti_entropy_shipped);
        }
    }

    /// Route every arrival due at or before `t`.
    fn route_due_arrivals(&mut self, t: f64) {
        while self.arrivals.first().is_some_and(|a| a.at_ms <= t) {
            let a = self.arrivals.remove(0);
            self.route_one(a);
        }
    }

    /// Place one request: spill check, then the target group's members in
    /// replica order (router view first, data-path detection on the
    /// spot), or a typed abstention if nothing is reachable.
    fn route_one(&mut self, a: ClusterArrival) {
        let now = self.clock.now_ms();
        let ctx = self.trace_ctx(a.id);
        let Some(home) = self.ring.shard_for(&a.question) else {
            self.push_router_abstain(a, now, u32::MAX, AbstainCause::ShardUnavailable);
            return;
        };
        let mut target = home;
        let mut route = RouteKind::Primary;
        if let Some(policy) = self.config.spill {
            if let Some(to) = self.ring.spill_target(&a.question) {
                if self.is_overloaded(home, &policy) && !self.is_overloaded(to, &policy) {
                    target = to;
                    route = RouteKind::Spill { to };
                }
            }
        }
        let Some(gidx) = self.groups.iter().position(|g| g.shard == target) else {
            self.push_router_abstain(a, now, home, AbstainCause::ShardUnavailable);
            return;
        };
        for ridx in 0..self.groups[gidx].members.len() {
            let id = MemberId {
                shard: target,
                replica: ridx as u32,
            };
            if !self.detector.is_up(id) {
                continue;
            }
            let reachable = self.groups[gidx].members[ridx].alive && !self.groups[gidx].partitioned;
            if !reachable {
                // Data-path detection: the delivery itself failed, which is
                // as good as a probe timeout — tell the detector and fail
                // over now.
                if let Some(ctx) = ctx {
                    self.record_router_span(
                        ctx,
                        "probe",
                        ridx as u64,
                        now,
                        now,
                        vec![EventRecord {
                            name: "delivery_failure".to_string(),
                            at_ms: now,
                            fields: vec![
                                ("shard".to_string(), target.to_string()),
                                ("replica".to_string(), ridx.to_string()),
                            ],
                        }],
                    );
                }
                let events = self.detector.observe_delivery_failure(id, now);
                self.handle_view_events(events);
                continue;
            }
            if route == RouteKind::Primary && ridx > 0 {
                route = RouteKind::Failover {
                    replica: ridx as u32,
                };
            }
            let member = &mut self.groups[gidx].members[ridx];
            let ticket =
                member
                    .runtime
                    .submit_traced(now, &a.question, a.priority, a.deadline_ms, ctx);
            member.runtime.deliver_now();
            self.pending.insert(
                (target, ridx as u32, ticket),
                PendingRoute {
                    cluster_id: a.id,
                    submitted_at_ms: a.at_ms,
                    home_shard: home,
                    route,
                },
            );
            let route_label = route.label();
            self.obs
                .counter(
                    "hallu_cluster_routed_total",
                    "Requests placed on a member, by route kind",
                    &[("route", route_label)],
                )
                .inc();
            self.obs.event(
                "cluster_route",
                &[
                    ("request", a.id.to_string()),
                    ("home_shard", home.to_string()),
                    ("shard", target.to_string()),
                    ("replica", ridx.to_string()),
                    ("route", route_label.to_string()),
                    ("priority", priority_label(a.priority).to_string()),
                ],
            );
            if let Some(ctx) = ctx {
                let name = match route {
                    RouteKind::Failover { .. } => "failover",
                    _ => "route",
                };
                self.record_router_span(
                    ctx,
                    name,
                    0,
                    now,
                    now,
                    vec![EventRecord {
                        name: "placed".to_string(),
                        at_ms: now,
                        fields: vec![
                            ("home_shard".to_string(), home.to_string()),
                            ("shard".to_string(), target.to_string()),
                            ("replica".to_string(), ridx.to_string()),
                            ("route".to_string(), route_label.to_string()),
                        ],
                    }],
                );
            }
            return;
        }
        let cause = if self.groups[gidx].partitioned {
            AbstainCause::Partitioned
        } else {
            AbstainCause::ShardUnavailable
        };
        self.push_router_abstain(a, now, home, cause);
    }

    /// Whether `shard`'s first router-visible member looks overloaded to
    /// the spill policy (no visible member counts as overloaded). Queue
    /// depth is live; the latency half is the hysteretic slow state
    /// maintained by [`refresh_windows_if_due`](Self::refresh_windows_if_due).
    fn is_overloaded(&self, shard: u32, policy: &SpillPolicy) -> bool {
        let Some(group) = self.groups.iter().find(|g| g.shard == shard) else {
            return true;
        };
        let first_up = group.members.iter().enumerate().find(|(ridx, _)| {
            self.detector.is_up(MemberId {
                shard,
                replica: *ridx as u32,
            })
        });
        let Some((_, member)) = first_up else {
            return true;
        };
        if member.runtime.queue_len() >= policy.queue_depth {
            return true;
        }
        self.spill_states.get(&shard).is_some_and(|s| s.slow)
    }

    /// Advance every member to the current virtual time (fixed order) and
    /// lift their finished outcomes into cluster outcomes.
    fn pump_and_collect(&mut self) {
        for gidx in 0..self.groups.len() {
            let shard = self.groups[gidx].shard;
            for ridx in 0..self.groups[gidx].members.len() {
                self.groups[gidx].members[ridx].runtime.pump();
                let finished = self.groups[gidx].members[ridx].runtime.drain_outcomes();
                for o in finished {
                    let key = (shard, ridx as u32, o.id);
                    let Some(p) = self.pending.remove(&key) else {
                        debug_assert!(false, "member outcome without a pending route: {key:?}");
                        continue;
                    };
                    let disposition = match o.disposition {
                        Disposition::Completed(answer) => ClusterDisposition::Completed(answer),
                        Disposition::Shed(reason) => ClusterDisposition::Shed(reason),
                        Disposition::Failed(err) => ClusterDisposition::Failed(err),
                    };
                    self.push_outcome(ClusterOutcome {
                        id: p.cluster_id,
                        question: o.question,
                        priority: o.priority,
                        submitted_at_ms: p.submitted_at_ms,
                        finished_at_ms: o.finished_at_ms,
                        home_shard: p.home_shard,
                        route: p.route,
                        served_by: o.served_by,
                        disposition,
                    });
                }
            }
        }
    }

    /// Type an aborted (crashed/removed member) request's outcome through
    /// its pending route.
    fn resolve_aborted(
        &mut self,
        shard: u32,
        replica: u32,
        ticket: u64,
        now: f64,
        build: impl Fn(&PendingRoute) -> ClusterOutcome,
    ) {
        let _ = now;
        let Some(p) = self.pending.remove(&(shard, replica, ticket)) else {
            debug_assert!(false, "aborted request without a pending route");
            return;
        };
        let outcome = build(&p);
        self.push_outcome(outcome);
    }

    /// The router could not place this request at all: one typed abstain
    /// outcome, decided immediately.
    fn push_router_abstain(
        &mut self,
        a: ClusterArrival,
        now: f64,
        home_shard: u32,
        cause: AbstainCause,
    ) {
        self.push_outcome(ClusterOutcome {
            id: a.id,
            question: a.question,
            priority: a.priority,
            submitted_at_ms: a.at_ms,
            finished_at_ms: now,
            home_shard,
            route: RouteKind::Unrouted,
            served_by: None,
            disposition: ClusterDisposition::Abstained(cause),
        });
    }

    /// Record one decided cluster outcome and mirror it into the registry,
    /// the request's trace root, and the SLO engine.
    fn push_outcome(&mut self, outcome: ClusterOutcome) {
        if let Some(ctx) = self.trace_ctx(outcome.id) {
            if self.obs.enabled() {
                let mut fields = vec![
                    ("outcome".to_string(), outcome.label().to_string()),
                    ("route".to_string(), outcome.route.label().to_string()),
                ];
                if let Some(by) = outcome.served_by {
                    fields.push((
                        "served_by".to_string(),
                        format!("s{}r{}", by.shard, by.replica),
                    ));
                }
                self.obs.record_span(SpanRecord {
                    id: ctx.span_id,
                    parent: 0,
                    name: "request".to_string(),
                    start_ms: outcome.submitted_at_ms,
                    end_ms: outcome.finished_at_ms,
                    events: vec![EventRecord {
                        name: "decided".to_string(),
                        at_ms: outcome.finished_at_ms,
                        fields,
                    }],
                    trace_id: ctx.trace_id,
                    source: String::new(),
                });
            }
        }
        if let Some(slo) = &mut self.slo {
            let ok = matches!(outcome.disposition, ClusterDisposition::Completed(_));
            let latency = ok.then_some(outcome.finished_at_ms - outcome.submitted_at_ms);
            slo.record(outcome.finished_at_ms, ok, latency);
        }
        if self.obs.enabled() {
            self.obs
                .counter(
                    "hallu_cluster_outcomes_total",
                    "Request dispositions decided by the cluster",
                    &[("outcome", outcome.label())],
                )
                .inc();
            if let ClusterDisposition::Abstained(cause) = &outcome.disposition {
                self.obs
                    .counter(
                        "hallu_cluster_abstained_total",
                        "Cluster-level abstentions, by cause",
                        &[("cause", abstain_cause_label(*cause))],
                    )
                    .inc();
            }
            if let ClusterDisposition::Shed(reason) = &outcome.disposition {
                self.obs
                    .counter(
                        "hallu_cluster_shed_total",
                        "Member sheds surfaced at cluster scope",
                        &[("reason", shed_reason_label(*reason))],
                    )
                    .inc();
            }
            if let ClusterDisposition::Completed(answer) = &outcome.disposition {
                // Mirror the member verdict under the cluster namespace so
                // dashboards see one series regardless of topology.
                let d = Disposition::Completed(answer.clone());
                self.obs
                    .counter(
                        "hallu_cluster_verdicts_total",
                        "Member verdicts surfaced at cluster scope",
                        &[("verdict", disposition_label(&d))],
                    )
                    .inc();
            }
        }
        self.outcomes.push(outcome);
    }

    fn member_mut(&mut self, shard: u32, replica: u32) -> Option<&mut Member<I>> {
        self.groups
            .iter_mut()
            .find(|g| g.shard == shard)
            .and_then(|g| g.members.get_mut(replica as usize))
    }

    fn mark_down_event(&self, shard: u32, replica: u32, why: &str) {
        self.obs
            .counter(
                "hallu_cluster_marked_down_total",
                "Members marked down by probe timeout or failed delivery",
                &[],
            )
            .inc();
        self.obs.event(
            "cluster_mark_down",
            &[
                ("shard", shard.to_string()),
                ("replica", replica.to_string()),
                ("why", why.to_string()),
            ],
        );
    }

    /// Publish `hallu_cluster_view_up{shard}` — how many of the shard's
    /// members the router currently believes in.
    fn update_view_gauge(&self, gidx: usize) {
        let group = &self.groups[gidx];
        let up = (0..group.members.len())
            .filter(|&r| {
                self.detector.is_up(MemberId {
                    shard: group.shard,
                    replica: r as u32,
                })
            })
            .count();
        let shard = group.shard.to_string();
        self.obs
            .gauge(
                "hallu_cluster_view_up",
                "Members the router currently considers up, per shard",
                &[("shard", shard.as_str())],
            )
            .set(up as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SimulatedLlm;
    use crate::pipeline::RagPipeline;
    use crate::serving::ServingStats;
    use crate::verified::FailurePolicy;
    use hallu_core::{DetectorConfig, ResilientDetector};
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
    use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
    use vectordb::collection::Collection;
    use vectordb::embed::HashingEmbedder;
    use vectordb::flat::FlatIndex;
    use vectordb::metric::Metric;

    const QUESTIONS: [&str; 4] = [
        "From what time does the store operate?",
        "How many days of annual leave per year?",
        "How many shopkeepers run a shop?",
        "Can unused leave be carried over?",
    ];

    fn pipeline(fault_rate: f64, seed_base: u64) -> ResilientVerifiedPipeline<FlatIndex> {
        let collection = Collection::new(
            Box::new(HashingEmbedder::new(128, 3)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
        rag.ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
             at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();
        rag.ingest(
            "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
             for three months.",
            "leave",
        )
        .unwrap();
        let profiles = if fault_rate > 0.0 {
            [
                FaultProfile::uniform(seed_base, fault_rate),
                FaultProfile::uniform(seed_base + 1, fault_rate),
            ]
        } else {
            [
                FaultProfile::none(seed_base),
                FaultProfile::none(seed_base + 1),
            ]
        };
        let [p0, p1] = profiles;
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
            Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
        ];
        let detector = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
        let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
        p.warm_up(&QUESTIONS).unwrap();
        p
    }

    fn factory(
        fault_rate: f64,
    ) -> impl FnMut(ShardIdentity) -> ResilientVerifiedPipeline<FlatIndex> {
        move |identity| {
            pipeline(
                fault_rate,
                1000 + u64::from(identity.shard) * 10 + u64::from(identity.replica),
            )
        }
    }

    fn submit_load(cluster: &mut ClusterRuntime<FlatIndex>, n: u32, spacing_ms: f64) -> Vec<u64> {
        (0..n)
            .map(|i| {
                let priority = match i % 3 {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                };
                cluster.submit_at(
                    spacing_ms * f64::from(i),
                    QUESTIONS[i as usize % QUESTIONS.len()],
                    priority,
                )
            })
            .collect()
    }

    #[test]
    fn healthy_cluster_gives_every_request_exactly_one_outcome() {
        let mut cluster = ClusterRuntime::new(4, ClusterConfig::default(), factory(0.0));
        let tickets = submit_load(&mut cluster, 24, 10.0);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        assert_eq!(outcomes.len(), tickets.len());
        let mut seen: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        let mut expected = tickets;
        expected.sort_unstable();
        assert_eq!(seen, expected, "exactly one outcome per ticket");
        for o in &outcomes {
            assert!(
                matches!(o.disposition, ClusterDisposition::Completed(_)),
                "healthy cluster completes everything: {o:?}"
            );
            let served_by = o.served_by.expect("completed outcomes name their member");
            assert_eq!(served_by.shard, o.home_shard, "no chaos, no failover");
            assert_eq!(o.route, RouteKind::Primary);
        }
    }

    #[test]
    fn routing_is_sticky_per_question() {
        let mut cluster = ClusterRuntime::new(4, ClusterConfig::default(), factory(0.0));
        for round in 0..3u32 {
            for (i, q) in QUESTIONS.iter().enumerate() {
                cluster.submit_at(f64::from(round) * 100.0 + i as f64, q, Priority::Normal);
            }
        }
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        for q in QUESTIONS {
            let shards: Vec<u32> = outcomes
                .iter()
                .filter(|o| o.question == q)
                .map(|o| o.home_shard)
                .collect();
            assert_eq!(shards.len(), 3);
            assert!(
                shards.windows(2).all(|w| w[0] == w[1]),
                "a question's key must stay on one shard: {q} -> {shards:?}"
            );
        }
    }

    #[test]
    fn crash_fails_over_to_replica_and_restart_recovers() {
        let config = ClusterConfig {
            replicas: 1,
            probe_interval_ms: 20.0,
            probe_timeout_ms: 10.0,
            ..ClusterConfig::default()
        };
        let mut probe = ClusterRuntime::new(2, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        // Crash the home shard's primary for a window that covers the next
        // submissions; traffic must fail over to replica 1 and come back.
        let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
            .with_chaos(ChaosPlan::none().crash(home, 0, 50.0, 400.0));
        let during = cluster.submit_at(100.0, QUESTIONS[0], Priority::Normal);
        let after = cluster.submit_at(600.0, QUESTIONS[0], Priority::Normal);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        let during = by_id(during);
        assert_eq!(
            during.route,
            RouteKind::Failover { replica: 1 },
            "primary is down: {during:?}"
        );
        assert_eq!(
            during.served_by,
            Some(ShardIdentity {
                shard: home,
                replica: 1
            })
        );
        assert!(matches!(
            during.disposition,
            ClusterDisposition::Completed(_)
        ));
        let after = by_id(after);
        assert_eq!(
            after.route,
            RouteKind::Primary,
            "restart + probe must restore the primary: {after:?}"
        );
    }

    #[test]
    fn total_shard_loss_degrades_to_typed_abstention() {
        let config = ClusterConfig {
            replicas: 0,
            probe_interval_ms: 20.0,
            probe_timeout_ms: 10.0,
            ..ClusterConfig::default()
        };
        let mut probe = ClusterRuntime::new(2, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
            .with_chaos(ChaosPlan::none().crash(home, 0, 10.0, f64::INFINITY));
        let lost = cluster.submit_at(100.0, QUESTIONS[0], Priority::Normal);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        let lost = outcomes.iter().find(|o| o.id == lost).unwrap();
        assert_eq!(
            lost.disposition,
            ClusterDisposition::Abstained(AbstainCause::ShardUnavailable),
            "no member left: abstain, don't hang"
        );
        assert_eq!(lost.route, RouteKind::Unrouted);
        assert_eq!(lost.served_by, None);
    }

    #[test]
    fn partition_abstains_but_accepted_work_completes() {
        let config = ClusterConfig {
            replicas: 1,
            probe_interval_ms: 20.0,
            probe_timeout_ms: 10.0,
            ..ClusterConfig::default()
        };
        let mut probe = ClusterRuntime::new(2, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
            .with_chaos(ChaosPlan::none().partition(home, 5.0, 500.0));
        let accepted = cluster.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        let cut_off = cluster.submit_at(100.0, QUESTIONS[0], Priority::Normal);
        let healed = cluster.submit_at(700.0, QUESTIONS[0], Priority::Normal);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(
            matches!(
                by_id(accepted).disposition,
                ClusterDisposition::Completed(_)
            ),
            "work accepted before the partition completes: {:?}",
            by_id(accepted)
        );
        assert_eq!(
            by_id(cut_off).disposition,
            ClusterDisposition::Abstained(AbstainCause::Partitioned),
            "a partitioned shard's traffic abstains instead of hanging"
        );
        assert!(
            matches!(by_id(healed).disposition, ClusterDisposition::Completed(_)),
            "after heal + probe the shard serves again: {:?}",
            by_id(healed)
        );
    }

    #[test]
    fn crash_aborts_queued_work_with_typed_outcomes() {
        // Slow serving + tight arrivals: the primary has queued work when
        // it crashes with no replica to fail over to.
        let config = ClusterConfig {
            replicas: 0,
            probe_interval_ms: 20.0,
            probe_timeout_ms: 10.0,
            ..ClusterConfig::default()
        };
        let mut cluster = ClusterRuntime::new(1, config, factory(0.0))
            .with_chaos(ChaosPlan::none().crash(0, 0, 150.0, f64::INFINITY));
        let tickets = submit_load(&mut cluster, 12, 5.0);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        assert_eq!(outcomes.len(), tickets.len(), "no request may vanish");
        let crashed = outcomes
            .iter()
            .filter(|o| o.disposition == ClusterDisposition::Abstained(AbstainCause::ShardCrashed))
            .count();
        assert!(crashed > 0, "queued work must abort as shard_crashed");
        let unavailable = outcomes
            .iter()
            .filter(|o| {
                o.disposition == ClusterDisposition::Abstained(AbstainCause::ShardUnavailable)
            })
            .count();
        assert!(
            crashed + unavailable < outcomes.len(),
            "work finished before the crash must have completed"
        );
    }

    #[test]
    fn spill_moves_load_off_a_slow_shard() {
        let config = ClusterConfig {
            replicas: 0,
            spill: Some(SpillPolicy {
                queue_depth: 2,
                ..SpillPolicy::default()
            }),
            ..ClusterConfig::default()
        };
        // Slow every shard's primary except let the ring successor absorb:
        // slow factor applies to shard that owns the repeated question.
        let mut probe = ClusterRuntime::new(3, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        let mut cluster = ClusterRuntime::new(3, config, factory(0.0))
            .with_chaos(ChaosPlan::none().slow(home, 0, 50.0, 0.0, f64::INFINITY));
        for i in 0..10u32 {
            cluster.submit_at(5.0 * f64::from(i), QUESTIONS[0], Priority::Normal);
        }
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        let stats = ClusterStats::from_outcomes(&outcomes);
        assert!(
            stats.spills > 0,
            "a slow home shard must spill to its ring successor: {stats:?}"
        );
        let spilled = outcomes
            .iter()
            .find(|o| matches!(o.route, RouteKind::Spill { .. }))
            .unwrap();
        if let RouteKind::Spill { to } = spilled.route {
            assert_ne!(to, spilled.home_shard);
            assert_eq!(spilled.served_by.unwrap().shard, to);
        }
    }

    #[test]
    fn add_and_remove_shard_rebalance_within_bounds() {
        let mut cluster = ClusterRuntime::new(4, ClusterConfig::default(), factory(0.0));
        let before: Vec<Option<u32>> = QUESTIONS
            .iter()
            .map(|q| cluster.ring().shard_for(q))
            .collect();
        let mut f = factory(0.0);
        let report = cluster.add_shard(&mut f);
        assert!(report.within_bound());
        assert_eq!(report.shards_after, 5);
        let after: Vec<Option<u32>> = QUESTIONS
            .iter()
            .map(|q| cluster.ring().shard_for(q))
            .collect();
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(*a, Some(report.shard), "moved keys go to the new shard");
            }
        }
        let removed = cluster.remove_shard(report.shard).unwrap();
        assert!(removed.within_bound());
        // New shard's keys must be re-homed; requests still complete.
        cluster.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        assert!(matches!(
            outcomes[0].disposition,
            ClusterDisposition::Completed(_)
        ));
        assert_eq!(
            cluster.remove_shard(99).unwrap_err(),
            RingError::UnknownShard(99)
        );
    }

    #[test]
    fn member_sheds_surface_as_cluster_outcomes() {
        let config = ClusterConfig {
            replicas: 0,
            serving: ServingConfig {
                queue_bound: Some(1),
                default_deadline_ms: 80.0,
                ..ServingConfig::default()
            },
            ..ClusterConfig::default()
        };
        let mut cluster = ClusterRuntime::new(1, config, factory(0.0));
        let tickets = submit_load(&mut cluster, 16, 1.0);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        assert_eq!(outcomes.len(), tickets.len());
        let stats = ClusterStats::from_outcomes(&outcomes);
        assert!(
            stats.shed > 0,
            "bounded queue under burst must shed: {stats:?}"
        );
        assert!(
            outcomes.iter().any(|o| matches!(
                o.disposition,
                ClusterDisposition::Shed(ShedReason::QueueFull)
            )),
            "shed reasons stay typed at cluster scope"
        );
    }

    #[test]
    fn member_health_reflects_probe_lag() {
        let config = ClusterConfig {
            replicas: 0,
            probe_interval_ms: 50.0,
            probe_timeout_ms: 25.0,
            ..ClusterConfig::default()
        };
        let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
            .with_chaos(ChaosPlan::none().crash(0, 0, 10.0, f64::INFINITY));
        // Keep the loop alive past the probe timeout with a late request.
        cluster.submit_at(200.0, QUESTIONS[1], Priority::Normal);
        cluster.run_until_idle();
        let health = cluster.member_health();
        let dead = health
            .iter()
            .find(|h| {
                h.identity
                    == ShardIdentity {
                        shard: 0,
                        replica: 0,
                    }
            })
            .unwrap();
        assert!(!dead.alive);
        assert!(
            !dead.router_view_up,
            "probe timeout must have marked the crashed member down"
        );
        drop(cluster.drain_outcomes());
    }

    #[test]
    fn single_shard_cluster_matches_standalone_serving_runtime() {
        let mut standalone = ServingRuntime::new(pipeline(0.0, 1000), ServingConfig::default());
        let config = ClusterConfig {
            replicas: 0,
            ..ClusterConfig::default()
        };
        let mut cluster = ClusterRuntime::new(1, config, factory(0.0));
        for (i, q) in QUESTIONS.iter().enumerate() {
            standalone.submit_at(10.0 * i as f64, q, Priority::Normal);
            cluster.submit_at(10.0 * i as f64, q, Priority::Normal);
        }
        standalone.run_until_idle();
        cluster.run_until_idle();
        let base = standalone.drain_outcomes();
        let clustered = cluster.drain_outcomes();
        assert_eq!(base.len(), clustered.len());
        for (b, c) in base.iter().zip(&clustered) {
            let ClusterDisposition::Completed(ca) = &c.disposition else {
                panic!("expected completion: {c:?}");
            };
            let Disposition::Completed(ba) = &b.disposition else {
                panic!("expected completion: {b:?}");
            };
            assert_eq!(ba, ca, "a 1-shard cluster is a transparent wrapper");
            assert_eq!(b.finished_at_ms, c.finished_at_ms);
        }
        // Sanity: the serving stats view agrees.
        assert!(ServingStats::from_outcomes(&base).served > 0);
    }

    #[test]
    fn seeded_chaos_plans_are_reproducible_and_seed_sensitive() {
        let a = ChaosPlan::seeded(7, 8, 1, 1000.0, 6);
        let b = ChaosPlan::seeded(7, 8, 1, 1000.0, 6);
        let c = ChaosPlan::seeded(8, 8, 1, 1000.0, 6);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert!(!a.events().is_empty());
        for e in a.events() {
            assert!(e.at_ms >= 0.0 && e.at_ms <= 1000.0);
        }
    }

    #[test]
    fn gossip_detector_fails_over_and_restart_recovers() {
        let config = ClusterConfig {
            replicas: 1,
            detector: DetectorKind::Gossip(GossipConfig::default()),
            ..ClusterConfig::default()
        };
        let mut probe = ClusterRuntime::new(2, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
            .with_chaos(ChaosPlan::none().crash(home, 0, 50.0, 400.0));
        let during = cluster.submit_at(200.0, QUESTIONS[0], Priority::Normal);
        let after = cluster.submit_at(900.0, QUESTIONS[0], Priority::Normal);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        let during = by_id(during);
        assert_eq!(
            during.route,
            RouteKind::Failover { replica: 1 },
            "primary is down under gossip: {during:?}"
        );
        assert!(matches!(
            during.disposition,
            ClusterDisposition::Completed(_)
        ));
        let after = by_id(after);
        assert_eq!(
            after.route,
            RouteKind::Primary,
            "the restarted primary's incarnation bump must reach the router: {after:?}"
        );
        assert!(
            !cluster.membership_timeline().is_empty(),
            "gossip transitions must be recorded"
        );
    }

    #[test]
    fn gossip_timeline_is_bitwise_reproducible_and_seed_sensitive() {
        let run = |gossip_seed: u64| {
            let config = ClusterConfig {
                replicas: 1,
                detector: DetectorKind::Gossip(GossipConfig {
                    seed: gossip_seed,
                    ..GossipConfig::default()
                }),
                ..ClusterConfig::default()
            };
            let mut cluster = ClusterRuntime::new(2, config, factory(0.0)).with_chaos(
                ChaosPlan::none()
                    .crash(0, 0, 50.0, 300.0)
                    .partition(1, 400.0, 600.0),
            );
            cluster.submit_at(900.0, QUESTIONS[2], Priority::Normal);
            cluster.run_until_idle();
            drop(cluster.drain_outcomes());
            cluster.membership_timeline().to_vec()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same gossip seed, same membership timeline");
        assert!(!a.is_empty());
        assert_ne!(a, c, "different gossip seed must reshuffle probe order");
    }

    #[test]
    fn replication_warms_failover_targets() {
        let config = ClusterConfig {
            replicas: 1,
            probe_interval_ms: 20.0,
            probe_timeout_ms: 10.0,
            replication: Some(ReplicationConfig::default()),
            ..ClusterConfig::default()
        };
        let mut probe = ClusterRuntime::new(2, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        // Warm the primary, let sync rounds run, then crash it: the
        // replica must serve cache hits on entries it never computed.
        let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
            .with_chaos(ChaosPlan::none().crash(home, 0, 1200.0, f64::INFINITY));
        for i in 0..6u32 {
            cluster.submit_at(150.0 * f64::from(i), QUESTIONS[0], Priority::Normal);
        }
        for i in 0..4u32 {
            cluster.submit_at(
                1300.0 + 150.0 * f64::from(i),
                QUESTIONS[0],
                Priority::Normal,
            );
        }
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        for o in &outcomes {
            assert!(
                matches!(o.disposition, ClusterDisposition::Completed(_)),
                "replicated failover must keep serving: {o:?}"
            );
        }
        let failovers = outcomes
            .iter()
            .filter(|o| matches!(o.route, RouteKind::Failover { .. }))
            .count();
        assert!(failovers > 0, "the crash must actually fail over");
        let stats = cluster.cache_stats_total();
        assert!(
            stats.replicated_inserts > 0,
            "sync rounds must ship entries: {stats:?}"
        );
        assert!(
            stats.replicated_hits > 0,
            "the failover target must serve hits it never computed: {stats:?}"
        );
    }

    #[test]
    fn hysteresis_cuts_routing_flaps_from_a_flapping_member() {
        let flaps = |hysteresis: HysteresisConfig| {
            let config = ClusterConfig {
                replicas: 1,
                probe_interval_ms: 10.0,
                probe_timeout_ms: 5.0,
                hysteresis,
                ..ClusterConfig::default()
            };
            let mut cluster = ClusterRuntime::new(2, config, factory(0.0))
                .with_chaos(ChaosPlan::none().flap(0, 0, 100.0, 60.0, 8));
            cluster.submit_at(900.0, QUESTIONS[1], Priority::Normal);
            cluster.run_until_idle();
            drop(cluster.drain_outcomes());
            cluster
                .membership_timeline()
                .iter()
                .filter(|ev| {
                    ev.member
                        == MemberId {
                            shard: 0,
                            replica: 0,
                        }
                })
                .count()
        };
        let raw = flaps(HysteresisConfig::passthrough());
        let damped = flaps(HysteresisConfig::default());
        assert!(
            raw >= 8,
            "passthrough must echo most flap cycles, got {raw}"
        );
        assert!(
            damped <= raw / 2,
            "damping must absorb flaps: damped {damped} vs raw {raw}"
        );
        assert!(damped >= 1, "the first crash must still be detected");
    }

    #[test]
    fn spill_slow_state_flips_respect_the_dwell_window() {
        let policy = SpillPolicy {
            queue_depth: 1000,
            slow_service_ms: 300.0,
            latency_quantile: 0.9,
            min_observations: 0.5,
            window_decay: 0.95,
            min_dwell_ms: 150.0,
        };
        let config = ClusterConfig {
            replicas: 0,
            probe_interval_ms: 25.0,
            spill: Some(policy),
            ..ClusterConfig::default()
        };
        let mut probe = ClusterRuntime::new(3, config, factory(0.0));
        probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        probe.run_until_idle();
        let home = probe.drain_outcomes()[0].home_shard;

        // Oscillate the home shard between slow and fast faster than the
        // dwell window, under steady traffic (healthy service ≈ 140 ms).
        let mut plan = ChaosPlan::none();
        for c in 0..6 {
            let at = 100.0 + 400.0 * f64::from(c);
            plan = plan.slow(home, 0, 4.0, at, at + 200.0);
        }
        let mut cluster = ClusterRuntime::new(3, config, factory(0.0)).with_chaos(plan);
        for i in 0..40u32 {
            cluster.submit_at(150.0 * f64::from(i), QUESTIONS[0], Priority::Normal);
        }
        cluster.run_until_idle();
        drop(cluster.drain_outcomes());
        let timeline = cluster.spill_timeline();
        assert!(
            !timeline.is_empty(),
            "a genuinely slow shard must flip the slow state at least once"
        );
        let mut last_flip: BTreeMap<u32, f64> = BTreeMap::new();
        for tr in timeline {
            if let Some(prev) = last_flip.insert(tr.shard, tr.at_ms) {
                assert!(
                    tr.at_ms - prev >= policy.min_dwell_ms,
                    "shard {} flipped twice inside the dwell window: {timeline:?}",
                    tr.shard
                );
            }
        }
    }
}
