//! Simulated LLM generation with controllable hallucination injection.
//!
//! Offline there is no ChatGPT / Llama-2 API, so responses are produced by an
//! extractive generator (answers are grounded sentences selected from the
//! retrieved context) and hallucinations are *injected* with typed operators
//! that perturb exactly the factual atoms the paper's dataset perturbs:
//! times, day ranges, numbers, polarity, and fabricated extra facts
//! (Table I's Logical / Prompt / Factual contradictions).

use rand::rngs::StdRng;
use rand::Rng;

use text_engine::entities::{extract_entities, EntityKind};
use text_engine::sentence::SentenceSplitter;
use text_engine::stem::porter_stem;
use text_engine::stopwords::is_stopword;
use text_engine::token::tokenize_words;

/// A hallucination-injection operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HallucinationOp {
    /// Shift a clock time / the end of a time range by several hours.
    TimeShift,
    /// Replace a weekday or weekday range with a conflicting one.
    DayRangeFlip,
    /// Perturb a number, duration, money amount or percentage.
    NumberJitter,
    /// Flip the polarity of the sentence ("must" → "must not"…).
    Negate,
    /// Append a fabricated fact (the "secret ingredient: chocolate" pattern).
    ForeignFact,
}

impl HallucinationOp {
    /// All operators, in a fixed order.
    pub const ALL: [HallucinationOp; 5] = [
        HallucinationOp::TimeShift,
        HallucinationOp::DayRangeFlip,
        HallucinationOp::NumberJitter,
        HallucinationOp::Negate,
        HallucinationOp::ForeignFact,
    ];
}

/// Render minutes-past-midnight as "9 AM" / "5:30 PM".
pub fn format_time(minutes: u16) -> String {
    let h24 = minutes / 60;
    let m = minutes % 60;
    let (h12, suffix) = match h24 {
        0 => (12, "AM"),
        1..=11 => (h24, "AM"),
        12 => (12, "PM"),
        _ => (h24 - 12, "PM"),
    };
    if m == 0 {
        format!("{h12} {suffix}")
    } else {
        format!("{h12}:{m:02} {suffix}")
    }
}

/// Weekday name for 0 = Monday … 6 = Sunday.
pub fn weekday_name(d: u8) -> &'static str {
    [
        "Monday",
        "Tuesday",
        "Wednesday",
        "Thursday",
        "Friday",
        "Saturday",
        "Sunday",
    ][d as usize % 7]
}

const FOREIGN_FACTS: &[&str] = &[
    " In addition, all staff receive free chocolate every morning.",
    " The policy also grants a complimentary helicopter ride each quarter.",
    " Note that the office keeps a resident penguin as a mascot.",
    " Staff may also claim reimbursement for lottery tickets.",
];

/// Apply `op` to `sentence`, returning the perturbed sentence, or `None` when
/// the operator has nothing to act on (e.g. no time in the sentence).
pub fn inject(sentence: &str, op: HallucinationOp, rng: &mut StdRng) -> Option<String> {
    match op {
        HallucinationOp::TimeShift => inject_time_shift(sentence, rng),
        HallucinationOp::DayRangeFlip => inject_day_flip(sentence, rng),
        HallucinationOp::NumberJitter => inject_number_jitter(sentence, rng),
        HallucinationOp::Negate => inject_negation(sentence),
        HallucinationOp::ForeignFact => {
            let fact = FOREIGN_FACTS[rng.gen_range(0..FOREIGN_FACTS.len())];
            Some(format!("{}{}", sentence.trim_end(), fact))
        }
    }
}

/// Apply the strongest applicable operator; always succeeds because
/// `ForeignFact` applies to anything.
///
/// Ordering matters for dataset fidelity: the paper's *wrong* responses
/// contradict the context outright ("9 AM to 9 PM", "do not need to work on
/// weekends"), so entity-contradicting operators are preferred (rotated at
/// random among the applicable ones), then polarity flips, and fabricated
/// facts only when nothing else applies.
pub fn inject_any(sentence: &str, rng: &mut StdRng) -> (String, HallucinationOp) {
    const ENTITY_OPS: [HallucinationOp; 3] = [
        HallucinationOp::TimeShift,
        HallucinationOp::DayRangeFlip,
        HallucinationOp::NumberJitter,
    ];
    let start = rng.gen_range(0..ENTITY_OPS.len());
    for i in 0..ENTITY_OPS.len() {
        let op = ENTITY_OPS[(start + i) % ENTITY_OPS.len()];
        if let Some(out) = inject(sentence, op, rng) {
            return (out, op);
        }
    }
    if let Some(out) = inject(sentence, HallucinationOp::Negate, rng) {
        return (out, HallucinationOp::Negate);
    }
    // Inlined ForeignFact arm of `inject` (the one operator that cannot
    // fail); the single `gen_range` draw is kept identical so the synthetic
    // dataset stream is unchanged.
    let fact = FOREIGN_FACTS[rng.gen_range(0..FOREIGN_FACTS.len())];
    let out = format!("{}{}", sentence.trim_end(), fact);
    (out, HallucinationOp::ForeignFact)
}

fn replace_span(text: &str, start: usize, end: usize, replacement: &str) -> String {
    let mut out = String::with_capacity(text.len() + replacement.len());
    out.push_str(&text[..start]);
    out.push_str(replacement);
    out.push_str(&text[end..]);
    out
}

fn inject_time_shift(sentence: &str, rng: &mut StdRng) -> Option<String> {
    let ents = extract_entities(sentence);
    let target = ents
        .iter()
        .find(|e| matches!(e.kind, EntityKind::TimeRange(..) | EntityKind::Time(_)))?;
    let shift = 60 * rng.gen_range(2..=5) as u16;
    let replacement = match target.kind {
        EntityKind::TimeRange(s, e) => {
            let new_end = (e + shift) % (24 * 60);
            format!("{} to {}", format_time(s), format_time(new_end))
        }
        EntityKind::Time(t) => format_time((t + shift) % (24 * 60)),
        _ => unreachable!("filtered above"),
    };
    Some(replace_span(
        sentence,
        target.start,
        target.end,
        &replacement,
    ))
}

fn inject_day_flip(sentence: &str, rng: &mut StdRng) -> Option<String> {
    let ents = extract_entities(sentence);
    let target = ents.iter().find(|e| {
        matches!(
            e.kind,
            EntityKind::WeekdayRange(..) | EntityKind::Weekday(_)
        )
    })?;
    let replacement = match target.kind {
        EntityKind::WeekdayRange(s, e) => {
            let full_week = text_engine::entities::expand_weekday_range(s, e).len() == 7;
            if full_week {
                // Full week → some narrower claim (varied so that two
                // independent hallucinations rarely agree by accident).
                let (s2, e2) = [(0u8, 4u8), (0, 5), (1, 5), (5, 6)][rng.gen_range(0..4usize)];
                format!("{} to {}", weekday_name(s2), weekday_name(e2))
            } else {
                // Shift both endpoints by 1–3 days.
                let d = rng.gen_range(1u8..=3);
                format!(
                    "{} to {}",
                    weekday_name((s + d) % 7),
                    weekday_name((e + d) % 7)
                )
            }
        }
        EntityKind::Weekday(d) => {
            let shift = rng.gen_range(1u8..=6);
            weekday_name((d + shift) % 7).to_string()
        }
        _ => unreachable!("filtered above"),
    };
    Some(replace_span(
        sentence,
        target.start,
        target.end,
        &replacement,
    ))
}

fn inject_number_jitter(sentence: &str, rng: &mut StdRng) -> Option<String> {
    let ents = extract_entities(sentence);
    let target = ents.iter().find(|e| {
        matches!(
            e.kind,
            EntityKind::Number(_)
                | EntityKind::Duration(..)
                | EntityKind::Money(_)
                | EntityKind::Percent(_)
        )
    })?;
    let jitter = |v: f64, rng: &mut StdRng| {
        let factor: f64 = [0.5, 2.0, 3.0][rng.gen_range(0..3usize)];
        let new = (v * factor).round().max(1.0);
        if (new - v).abs() < 0.5 {
            v + 1.0
        } else {
            new
        }
    };
    let original = &sentence[target.start..target.end];
    let replacement = match target.kind {
        EntityKind::Number(v) => format!("{}", jitter(v, rng)),
        EntityKind::Duration(v, _) => {
            let unit = original.split_whitespace().last().unwrap_or("days");
            format!("{} {unit}", jitter(v, rng))
        }
        EntityKind::Money(v) => format!("${}", jitter(v, rng)),
        EntityKind::Percent(v) => format!("{}%", jitter(v, rng)),
        _ => unreachable!("filtered above"),
    };
    Some(replace_span(
        sentence,
        target.start,
        target.end,
        &replacement,
    ))
}

/// Auxiliaries that take a following "not".
const NEGATABLE: &[(&str, &str)] = &[
    ("must", "must not"),
    ("are", "are not"),
    ("is", "is not"),
    ("should", "should not"),
    ("will", "will not"),
    ("can", "cannot"),
];

fn inject_negation(sentence: &str) -> Option<String> {
    let words: Vec<&str> = sentence.split_whitespace().collect();

    // Already negated? Remove the negation instead of stacking another.
    if let Some(pos) = words.iter().position(|w| w.to_lowercase() == "not") {
        let mut out = words.clone();
        out.remove(pos);
        return Some(out.join(" "));
    }
    if let Some(pos) = words.iter().position(|w| w.to_lowercase() == "cannot") {
        let mut out: Vec<String> = words.iter().map(|w| w.to_string()).collect();
        out[pos] = match_case(words[pos], "can");
        return Some(out.join(" "));
    }

    // Positive sentence: negate the first auxiliary.
    for (i, w) in words.iter().enumerate() {
        let lower = w.to_lowercase();
        for (from, to) in NEGATABLE {
            if lower == *from {
                let mut out: Vec<String> = words.iter().map(|w| w.to_string()).collect();
                out[i] = match_case(w, to);
                return Some(out.join(" "));
            }
        }
    }
    None
}

/// Copy the capitalization of `original`'s first letter onto `replacement`.
fn match_case(original: &str, replacement: &str) -> String {
    let mut t = replacement.to_string();
    if original.chars().next().is_some_and(char::is_uppercase) {
        t[..1].make_ascii_uppercase();
    }
    t
}

/// How a simulated response relates to its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenerationMode {
    /// All sentences grounded in the context.
    Correct,
    /// One sentence perturbed, the rest grounded.
    Partial,
    /// Every sentence perturbed.
    Wrong,
}

/// A deterministic extractive "LLM": selects the context sentences most
/// relevant to the question and optionally injects hallucinations.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    /// Maximum sentences per answer.
    pub max_sentences: usize,
}

impl Default for SimulatedLlm {
    fn default() -> Self {
        Self { max_sentences: 3 }
    }
}

impl SimulatedLlm {
    /// New generator.
    pub fn new(max_sentences: usize) -> Self {
        Self {
            max_sentences: max_sentences.max(1),
        }
    }

    fn question_stems(question: &str) -> Vec<String> {
        tokenize_words(question)
            .into_iter()
            .filter(|w| !is_stopword(w))
            .map(|w| porter_stem(&w))
            .collect()
    }

    /// Select the context sentences most relevant to the question, in their
    /// original order.
    pub fn select_sentences(&self, question: &str, context: &str) -> Vec<String> {
        let q_stems = Self::question_stems(question);
        let sentences: Vec<String> = SentenceSplitter::new()
            .split(context)
            .into_iter()
            .map(|s| s.text.to_string())
            .collect();
        if sentences.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(usize, f64)> = sentences
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let stems: Vec<String> = tokenize_words(s)
                    .into_iter()
                    .filter(|w| !is_stopword(w))
                    .map(|w| porter_stem(&w))
                    .collect();
                let hits = q_stems.iter().filter(|q| stems.contains(q)).count();
                // prefer earlier sentences on ties (they usually carry the lead fact)
                (i, hits as f64 - 0.01 * i as f64)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut picked: Vec<usize> = scored
            .into_iter()
            .take(self.max_sentences)
            .map(|(i, _)| i)
            .collect();
        picked.sort_unstable();
        picked.into_iter().map(|i| sentences[i].clone()).collect()
    }

    /// Generate a response in the given mode. Returns the response text and
    /// the indices of the perturbed sentences.
    pub fn generate(
        &self,
        question: &str,
        context: &str,
        mode: GenerationMode,
        rng: &mut StdRng,
    ) -> (String, Vec<usize>) {
        let mut sentences = self.select_sentences(question, context);
        if sentences.is_empty() {
            return (
                "I could not find relevant information in the context.".into(),
                Vec::new(),
            );
        }
        let mut perturbed = Vec::new();
        match mode {
            GenerationMode::Correct => {}
            GenerationMode::Partial => {
                let idx = rng.gen_range(0..sentences.len());
                let (bad, _) = inject_any(&sentences[idx], rng);
                sentences[idx] = bad;
                perturbed.push(idx);
            }
            GenerationMode::Wrong => {
                for (idx, s) in sentences.iter_mut().enumerate() {
                    let (bad, _) = inject_any(s, rng);
                    *s = bad;
                    perturbed.push(idx);
                }
            }
        }
        (sentences.join(" "), perturbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop. \
                       Uniforms must be worn at all times.";

    #[test]
    fn format_time_cases() {
        assert_eq!(format_time(0), "12 AM");
        assert_eq!(format_time(9 * 60), "9 AM");
        assert_eq!(format_time(12 * 60), "12 PM");
        assert_eq!(format_time(17 * 60), "5 PM");
        assert_eq!(format_time(17 * 60 + 30), "5:30 PM");
        assert_eq!(format_time(23 * 60 + 5), "11:05 PM");
    }

    #[test]
    fn time_shift_changes_the_range() {
        let s = "The working hours are 9 AM to 5 PM.";
        let out = inject(s, HallucinationOp::TimeShift, &mut rng(1)).unwrap();
        assert_ne!(out, s);
        assert!(out.contains("9 AM to"), "{out}");
        assert!(!out.contains("9 AM to 5 PM"), "{out}");
    }

    #[test]
    fn time_shift_inapplicable_without_time() {
        assert!(inject(
            "Uniforms must be worn.",
            HallucinationOp::TimeShift,
            &mut rng(1)
        )
        .is_none());
    }

    #[test]
    fn day_flip_full_week_becomes_narrower_range() {
        let s = "The store is open from Sunday to Saturday.";
        for seed in 0..10 {
            let out = inject(s, HallucinationOp::DayRangeFlip, &mut rng(seed)).unwrap();
            assert_ne!(out, s);
            // the replacement must genuinely contradict the full week
            let ents = text_engine::entities::extract_entities(&out);
            let full = text_engine::entities::EntityKind::WeekdayRange(6, 5);
            assert!(ents.iter().all(|e| !e.kind.matches(&full)), "{out}");
        }
        // and the target varies across seeds
        let variants: std::collections::HashSet<String> = (0..10)
            .map(|seed| inject(s, HallucinationOp::DayRangeFlip, &mut rng(seed)).unwrap())
            .collect();
        assert!(variants.len() >= 2, "{variants:?}");
    }

    #[test]
    fn day_flip_partial_range_shifts() {
        let s = "Deliveries arrive Monday to Wednesday.";
        let out = inject(s, HallucinationOp::DayRangeFlip, &mut rng(3)).unwrap();
        assert_ne!(out, s);
        assert!(!out.contains("Monday to Wednesday"), "{out}");
    }

    #[test]
    fn number_jitter_changes_value() {
        let s = "Annual leave is 14 days per year.";
        let out = inject(s, HallucinationOp::NumberJitter, &mut rng(4)).unwrap();
        assert!(!out.contains("14 days"), "{out}");
        assert!(out.contains("days"), "unit must survive: {out}");
    }

    #[test]
    fn negation_flips_polarity() {
        let out = inject_negation("Uniforms must be worn at all times.").unwrap();
        assert!(out.contains("must not"), "{out}");
        // and the reverse direction
        let back = inject_negation(&out).unwrap();
        assert!(!back.contains("must not"), "{back}");
    }

    #[test]
    fn negation_none_without_verb() {
        assert!(inject_negation("Working hours.").is_none());
    }

    #[test]
    fn foreign_fact_appends() {
        let s = "The store opens at 9 AM.";
        let out = inject(s, HallucinationOp::ForeignFact, &mut rng(5)).unwrap();
        assert!(out.starts_with(s));
        assert!(out.len() > s.len());
    }

    #[test]
    fn inject_any_always_succeeds() {
        for seed in 0..10 {
            let (out, _) = inject_any("Plain sentence with nothing.", &mut rng(seed));
            assert_ne!(out, "Plain sentence with nothing.");
        }
    }

    #[test]
    fn select_sentences_prefers_relevant() {
        let llm = SimulatedLlm::new(1);
        let picked = llm.select_sentences("What are the working hours?", CTX);
        assert_eq!(picked.len(), 1);
        assert!(picked[0].contains("9 AM"), "{picked:?}");
    }

    #[test]
    fn selection_keeps_original_order() {
        let llm = SimulatedLlm::new(3);
        let picked = llm.select_sentences("shopkeepers uniforms hours", CTX);
        assert_eq!(picked.len(), 3);
        assert!(picked[0].contains("9 AM"));
        assert!(picked[2].contains("Uniforms"));
    }

    #[test]
    fn correct_mode_is_grounded() {
        let llm = SimulatedLlm::new(2);
        let (resp, perturbed) = llm.generate(
            "What are the working hours?",
            CTX,
            GenerationMode::Correct,
            &mut rng(6),
        );
        assert!(perturbed.is_empty());
        for s in text_engine::split_sentences(&resp) {
            assert!(CTX.contains(&s), "ungrounded sentence: {s}");
        }
    }

    #[test]
    fn partial_mode_perturbs_exactly_one() {
        let llm = SimulatedLlm::new(3);
        let (resp, perturbed) = llm.generate(
            "What are the working hours?",
            CTX,
            GenerationMode::Partial,
            &mut rng(7),
        );
        assert_eq!(perturbed.len(), 1);
        let sentences = text_engine::split_sentences(&resp);
        let ungrounded = sentences
            .iter()
            .filter(|s| !CTX.contains(s.as_str()))
            .count();
        assert!(ungrounded >= 1, "{resp}");
    }

    #[test]
    fn wrong_mode_perturbs_all() {
        let llm = SimulatedLlm::new(2);
        let (_, perturbed) = llm.generate(
            "What are the working hours?",
            CTX,
            GenerationMode::Wrong,
            &mut rng(8),
        );
        assert_eq!(perturbed.len(), 2);
    }

    #[test]
    fn empty_context_yields_fallback() {
        let llm = SimulatedLlm::default();
        let (resp, perturbed) = llm.generate("q?", "", GenerationMode::Correct, &mut rng(9));
        assert!(resp.contains("could not find"));
        assert!(perturbed.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let llm = SimulatedLlm::new(3);
        let a = llm.generate("hours?", CTX, GenerationMode::Wrong, &mut rng(10));
        let b = llm.generate("hours?", CTX, GenerationMode::Wrong, &mut rng(10));
        assert_eq!(a, b);
    }

    proptest::proptest! {
        #[test]
        fn inject_never_panics(s in "[a-zA-Z0-9 .]{0,80}", seed in 0u64..30) {
            let mut r = rng(seed);
            for op in HallucinationOp::ALL {
                let _ = inject(&s, op, &mut r);
            }
        }
    }
}
