//! # rag
//!
//! Retrieval-augmented question answering (§III of the paper).
//!
//! The paper's flow (Fig. 2a): a question is embedded, the vectorised
//! database returns the relevant context, an LLM answers from that context —
//! and the answer may still hallucinate, which is what the framework in
//! `hallu-core` detects. This crate provides that pipeline:
//!
//! * [`chunk`] — sentence-aware document chunking for ingestion.
//! * [`retrieve`] — top-k retrieval and context assembly over a
//!   `vectordb::Collection`.
//! * [`prompt`] — the generation prompt (role + context + question).
//! * [`generate`] — a simulated LLM (no API access offline): extractive
//!   generation from context plus controllable hallucination injection, the
//!   operators that manufacture Table I's contradiction types and the
//!   dataset's *partial*/*wrong* responses.
//! * [`pipeline`] — ingestion + retrieval + generation glued together.
//! * [`verified`] — the guarded-QA loop: answers are verified before they
//!   are served, with a fault-tolerant variant that degrades gracefully.
//! * [`serving`] — the overload-resilient serving runtime: admission
//!   control, deadline budgets, load shedding, and graceful drain on a
//!   deterministic virtual clock.
//! * [`cluster`] — the sharded verification cluster: consistent-hash
//!   routing over replica groups with probe-driven failover, overload
//!   spilling, bounded rebalancing, and bit-reproducible chaos.

pub mod chunk;
pub mod cluster;
pub mod generate;
pub mod pipeline;
pub mod prompt;
pub mod retrieve;
pub mod selfcheck;
pub mod serving;
pub mod verified;

pub use chunk::{chunk_text, ChunkConfig};
pub use cluster::{
    AbstainCause, ChaosEvent, ChaosKind, ChaosPlan, ClusterConfig, ClusterDisposition,
    ClusterOutcome, ClusterRuntime, ClusterStats, DetectorKind, MemberHealth, ReplicationConfig,
    RouteKind, SpillPolicy, SpillTransition,
};
pub use generate::{HallucinationOp, SimulatedLlm};
pub use pipeline::RagPipeline;
pub use retrieve::Retriever;
pub use selfcheck::{SelfCheckConfig, SelfChecker};
pub use serving::{
    AbortedRequest, Disposition, Priority, RequestOutcome, ServingConfig, ServingRuntime,
    ServingStats, ShardIdentity, ShedPolicy, ShedReason,
};
pub use verified::{
    FailurePolicy, GuardedAnswer, ResilientAnswer, ResilientVerifiedPipeline, VerifiedRagPipeline,
};
