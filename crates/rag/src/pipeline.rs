//! The assembled RAG pipeline: ingest → retrieve → generate (Fig. 2a).

use rand::rngs::StdRng;
use rand::SeedableRng;

use vectordb::collection::Collection;
use vectordb::error::VectorDbError;
use vectordb::index::VectorIndex;
use vectordb::store::Document;

use crate::chunk::{chunk_text, ChunkConfig};
use crate::generate::{GenerationMode, SimulatedLlm};
use crate::prompt::PromptTemplate;
use crate::retrieve::Retriever;

/// One answered question: everything the verification framework needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RagAnswer {
    /// The question asked.
    pub question: String,
    /// The retrieved context the answer was generated from.
    pub context: String,
    /// The generated response.
    pub response: String,
    /// The full generation prompt (for audit).
    pub prompt: String,
}

/// A RAG pipeline over a vector collection with a simulated LLM.
pub struct RagPipeline<I> {
    collection: Collection<I>,
    llm: SimulatedLlm,
    template: PromptTemplate,
    chunking: ChunkConfig,
    /// Documents retrieved per question.
    pub top_k: usize,
    seed: u64,
}

impl<I: VectorIndex> RagPipeline<I> {
    /// Build a pipeline around an empty collection.
    pub fn new(collection: Collection<I>, seed: u64) -> Self {
        Self {
            collection,
            llm: SimulatedLlm::default(),
            template: PromptTemplate::default(),
            chunking: ChunkConfig::default(),
            top_k: 2,
            seed,
        }
    }

    /// Access the underlying collection.
    pub fn collection(&self) -> &Collection<I> {
        &self.collection
    }

    /// Replace the simulated LLM (e.g. to cap answer length).
    pub fn with_llm(mut self, llm: SimulatedLlm) -> Self {
        self.llm = llm;
        self
    }

    /// Ingest a document: chunk it and index each chunk with shared metadata.
    ///
    /// # Errors
    /// Propagates index errors.
    pub fn ingest(&self, text: &str, topic: &str) -> Result<usize, VectorDbError> {
        let chunks = chunk_text(text, &self.chunking);
        let n = chunks.len();
        for (i, chunk) in chunks.into_iter().enumerate() {
            self.collection.add(
                Document::new(chunk)
                    .with_meta("topic", topic)
                    .with_meta("chunk", i.to_string()),
            )?;
        }
        Ok(n)
    }

    /// Answer a question in the given generation mode.
    ///
    /// `Correct` produces a grounded answer; `Partial`/`Wrong` inject
    /// hallucinations (used to manufacture evaluation data and the Table I
    /// demos).
    ///
    /// # Errors
    /// Propagates retrieval errors.
    pub fn answer(&self, question: &str, mode: GenerationMode) -> Result<RagAnswer, VectorDbError> {
        let retriever = Retriever::new(&self.collection, self.top_k);
        let context = retriever.retrieve_context(question)?;
        // Seed per (pipeline, question) so each question is deterministic but
        // different questions get different perturbations.
        let mut h = self.seed;
        for b in question.as_bytes() {
            h = h.wrapping_mul(0x100000001b3) ^ u64::from(*b);
        }
        let mut rng = StdRng::seed_from_u64(h);
        let (response, _) = self.llm.generate(question, &context, mode, &mut rng);
        let prompt = self.template.render(question, &context);
        Ok(RagAnswer {
            question: question.to_string(),
            context,
            response,
            prompt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectordb::embed::HashingEmbedder;
    use vectordb::flat::FlatIndex;
    use vectordb::metric::Metric;

    fn pipeline() -> RagPipeline<FlatIndex> {
        let c = Collection::new(
            Box::new(HashingEmbedder::new(128, 7)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let p = RagPipeline::new(c, 42);
        p.ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
             There should be at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();
        p.ingest(
            "Annual leave entitlement is 14 days per calendar year. \
             Unused leave may carry over for three months.",
            "leave",
        )
        .unwrap();
        p
    }

    #[test]
    fn ingest_counts_chunks() {
        let p = pipeline();
        assert!(p.collection().len() >= 2);
    }

    #[test]
    fn correct_answer_is_grounded_in_context() {
        let p = pipeline();
        let a = p
            .answer(
                "From what time does the store operate?",
                GenerationMode::Correct,
            )
            .unwrap();
        assert!(a.context.contains("9 AM"), "context: {}", a.context);
        assert!(a.response.contains("9 AM"), "response: {}", a.response);
        for s in text_engine::split_sentences(&a.response) {
            assert!(a.context.contains(&s), "ungrounded: {s}");
        }
    }

    #[test]
    fn wrong_answer_deviates_from_context() {
        let p = pipeline();
        let a = p
            .answer(
                "From what time does the store operate?",
                GenerationMode::Wrong,
            )
            .unwrap();
        let ungrounded = text_engine::split_sentences(&a.response)
            .iter()
            .filter(|s| !a.context.contains(s.as_str()))
            .count();
        assert!(ungrounded >= 1, "{}", a.response);
    }

    #[test]
    fn prompt_embeds_context_and_question() {
        let p = pipeline();
        let a = p
            .answer("How many leave days per year?", GenerationMode::Correct)
            .unwrap();
        assert!(a.prompt.contains(&a.question));
        assert!(a.prompt.contains("Context:"));
    }

    #[test]
    fn answers_are_deterministic() {
        let p = pipeline();
        let a = p
            .answer("How many leave days per year?", GenerationMode::Partial)
            .unwrap();
        let b = p
            .answer("How many leave days per year?", GenerationMode::Partial)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_questions_hit_different_topics() {
        let p = pipeline();
        let hours = p
            .answer(
                "From what time does the store operate?",
                GenerationMode::Correct,
            )
            .unwrap();
        let leave = p
            .answer(
                "How many days of annual leave per calendar year?",
                GenerationMode::Correct,
            )
            .unwrap();
        assert!(hours.context.contains("9 AM"));
        assert!(leave.context.contains("14 days"));
    }
}
