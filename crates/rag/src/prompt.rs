//! Generation prompt assembly (§III-A: role + context + question).

/// Prompt template parameters.
#[derive(Debug, Clone)]
pub struct PromptTemplate {
    /// The system role line.
    pub role: String,
    /// Instruction appended after the question.
    pub instruction: String,
}

impl Default for PromptTemplate {
    fn default() -> Self {
        Self {
            role: "You are a helpful HR assistant. Answer strictly from the provided context."
                .into(),
            instruction: "Answer in complete sentences using only facts from the context.".into(),
        }
    }
}

impl PromptTemplate {
    /// Render the full generation prompt.
    pub fn render(&self, question: &str, context: &str) -> String {
        format!(
            "{role}\n\nContext:\n{context}\n\nQuestion: {question}\n{instruction}\nAnswer:",
            role = self.role,
            context = context,
            question = question,
            instruction = self.instruction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_sections() {
        let p = PromptTemplate::default().render("What are the hours?", "Open 9-5.");
        assert!(p.contains("What are the hours?"));
        assert!(p.contains("Open 9-5."));
        assert!(p.contains("HR assistant"));
        assert!(p.ends_with("Answer:"));
    }

    #[test]
    fn custom_role_is_used() {
        let t = PromptTemplate {
            role: "CUSTOM".into(),
            instruction: "INSTR".into(),
        };
        let p = t.render("q", "c");
        assert!(p.starts_with("CUSTOM"));
        assert!(p.contains("INSTR"));
    }
}
