//! Top-k retrieval and context assembly over a vector collection.

use vectordb::collection::{Collection, QueryResult};
use vectordb::error::VectorDbError;
use vectordb::index::VectorIndex;

/// Retrieval configuration + execution over a collection.
pub struct Retriever<'a, I> {
    collection: &'a Collection<I>,
    /// Number of documents to retrieve.
    pub top_k: usize,
    /// Drop hits whose similarity falls below this floor.
    pub min_score: f32,
}

impl<'a, I: VectorIndex> Retriever<'a, I> {
    /// A retriever with `top_k` and no score floor.
    pub fn new(collection: &'a Collection<I>, top_k: usize) -> Self {
        Self {
            collection,
            top_k,
            min_score: f32::NEG_INFINITY,
        }
    }

    /// Raw retrieval hits.
    ///
    /// # Errors
    /// Propagates index errors.
    pub fn retrieve(&self, question: &str) -> Result<Vec<QueryResult>, VectorDbError> {
        let hits = self.collection.query(question, self.top_k)?;
        Ok(hits
            .into_iter()
            .filter(|h| h.score >= self.min_score)
            .collect())
    }

    /// Retrieve and join the hit texts into one context string, best first,
    /// separated by blank lines (the shape the generation prompt expects).
    pub fn retrieve_context(&self, question: &str) -> Result<String, VectorDbError> {
        let hits = self.retrieve(question)?;
        Ok(hits
            .iter()
            .map(|h| h.document.text.as_str())
            .collect::<Vec<_>>()
            .join("\n\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectordb::embed::HashingEmbedder;
    use vectordb::flat::FlatIndex;
    use vectordb::metric::Metric;
    use vectordb::store::Document;

    fn collection() -> Collection<FlatIndex> {
        let c = Collection::new(
            Box::new(HashingEmbedder::new(128, 7)),
            FlatIndex::new(128, Metric::Cosine),
        );
        c.add(Document::new(
            "The store operates from 9 AM to 5 PM from Sunday to Saturday.",
        ))
        .unwrap();
        c.add(Document::new(
            "Annual leave entitlement is 14 days per calendar year.",
        ))
        .unwrap();
        c.add(Document::new(
            "The probation period lasts three months for new employees.",
        ))
        .unwrap();
        c
    }

    #[test]
    fn retrieves_k_hits() {
        let c = collection();
        let r = Retriever::new(&c, 2);
        assert_eq!(r.retrieve("leave days per year").unwrap().len(), 2);
    }

    #[test]
    fn best_hit_is_relevant() {
        let c = collection();
        let r = Retriever::new(&c, 1);
        let hits = r
            .retrieve("how many days of annual leave per year?")
            .unwrap();
        assert!(hits[0].document.text.contains("Annual leave"));
    }

    #[test]
    fn context_joins_best_first() {
        let c = collection();
        let r = Retriever::new(&c, 2);
        let ctx = r
            .retrieve_context("annual leave days per calendar year")
            .unwrap();
        assert!(ctx.contains("Annual leave"));
        assert!(ctx.contains("\n\n"));
        let first = ctx.split("\n\n").next().unwrap();
        assert!(first.contains("Annual leave"));
    }

    #[test]
    fn min_score_filters() {
        let c = collection();
        let mut r = Retriever::new(&c, 3);
        r.min_score = 0.99; // nothing is a near-exact match
        assert!(r
            .retrieve("completely unrelated cryptocurrency question")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn empty_collection_gives_empty_context() {
        let c: Collection<FlatIndex> = Collection::new(
            Box::new(HashingEmbedder::new(128, 7)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let r = Retriever::new(&c, 3);
        assert_eq!(r.retrieve_context("anything").unwrap(), "");
    }
}
