//! SelfCheck-style sampling baseline.
//!
//! The paper's related work (§II) discusses detection methods that sample
//! the generator multiple times and measure consistency — SelfCheckGPT and
//! the semantic-entropy line [28]. This module implements that family as a
//! baseline the framework can be compared against: re-sample K grounded
//! answers to the same question from the same context, then score each
//! response sentence by its best agreement with any sampled answer's
//! sentences. A hallucinated sentence contradicts most fresh samples (which
//! are drawn from the context) and scores low.
//!
//! No verifier model is needed — only the generator and a lexical/entity
//! agreement measure — which is exactly the trade-off this family makes:
//! cheaper components, K extra generations per check.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use text_engine::entities::{extract_entities, Entity};
use text_engine::sentence::SentenceSplitter;
use text_engine::stem::porter_stem;
use text_engine::stopwords::is_stopword;
use text_engine::token::tokenize_words;

use crate::generate::{GenerationMode, SimulatedLlm};

/// Configuration of the sampling checker.
#[derive(Debug, Clone)]
pub struct SelfCheckConfig {
    /// Number of fresh samples K.
    pub num_samples: usize,
    /// Seed for the sampling RNG.
    pub seed: u64,
    /// Sentences per sampled answer.
    pub max_sentences: usize,
    /// Probability that a sampled answer itself contains a hallucination
    /// (temperature sampling is exactly where generators slip — the premise
    /// the whole sample-and-compare family rests on).
    pub sample_error_rate: f64,
    /// Std-dev of input-keyed noise on the similarity measure, modelling
    /// the imprecision of learned similarity (BERTScore / NLI) on
    /// paraphrases. 0 = oracle similarity.
    pub similarity_noise: f64,
}

impl Default for SelfCheckConfig {
    fn default() -> Self {
        Self {
            num_samples: 5,
            seed: 0x5e1f,
            max_sentences: 3,
            sample_error_rate: 0.3,
            similarity_noise: 0.22,
        }
    }
}

/// Agreement of one sentence against one reference sentence in [0, 1]:
/// stemmed-content overlap, with entity contradictions zeroing the score.
fn sentence_agreement(sentence: &str, reference: &str) -> f64 {
    let ents_s = extract_entities(sentence);
    let ents_r = extract_entities(reference);
    // Any same-category entity that disagrees is a contradiction.
    for es in &ents_s {
        for er in &ents_r {
            if es.kind.same_category(&er.kind) && !es.kind.matches(&er.kind) {
                return 0.0;
            }
        }
    }
    let stems = |text: &str| -> std::collections::HashSet<String> {
        tokenize_words(text)
            .into_iter()
            .filter(|w| !is_stopword(w))
            .map(|w| porter_stem(&w))
            .collect()
    };
    let a = stems(sentence);
    let b = stems(reference);
    if a.is_empty() {
        return 1.0;
    }
    let matching_entities = ents_s
        .iter()
        .any(|es: &Entity| ents_r.iter().any(|er| es.kind.matches(&er.kind)));
    let overlap = a.intersection(&b).count() as f64 / a.len() as f64;
    if matching_entities {
        // entity-confirmed: lexical variation matters less
        (0.5 + 0.5 * overlap).min(1.0)
    } else {
        overlap
    }
}

/// The sampling checker.
#[derive(Debug, Clone, Default)]
pub struct SelfChecker {
    config: SelfCheckConfig,
}

impl SelfChecker {
    /// Build with a config.
    pub fn new(config: SelfCheckConfig) -> Self {
        Self { config }
    }

    /// Draw K fresh answers for (question, context). Most are grounded
    /// extractions; a `sample_error_rate` fraction carry their own
    /// hallucination, as temperature-sampled generations do.
    pub fn sample_answers(&self, question: &str, context: &str) -> Vec<String> {
        let llm = SimulatedLlm::new(self.config.max_sentences);
        (0..self.config.num_samples)
            .map(|k| {
                let mut rng =
                    StdRng::seed_from_u64(self.config.seed.wrapping_add(k as u64 * 0x9e37));
                let mode = if rng.gen_bool(self.config.sample_error_rate.clamp(0.0, 1.0)) {
                    GenerationMode::Partial
                } else {
                    GenerationMode::Correct
                };
                llm.generate(question, context, mode, &mut rng).0
            })
            .collect()
    }

    /// Consistency score of a response in [0, 1]: mean over response
    /// sentences of the best agreement with any sampled sentence.
    pub fn score(&self, question: &str, context: &str, response: &str) -> f64 {
        let response_sentences: Vec<String> = SentenceSplitter::new()
            .split(response)
            .into_iter()
            .map(|s| s.text.to_string())
            .collect();
        if response_sentences.is_empty() {
            return 0.0;
        }
        let samples = self.sample_answers(question, context);
        let sample_sentences: Vec<String> = samples
            .iter()
            .flat_map(|s| {
                SentenceSplitter::new()
                    .split(s)
                    .into_iter()
                    .map(|x| x.text.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        if sample_sentences.is_empty() {
            return 0.0;
        }
        let total: f64 = response_sentences
            .iter()
            .map(|rs| {
                let best = sample_sentences
                    .iter()
                    .map(|ss| sentence_agreement(rs, ss))
                    .fold(0.0f64, f64::max);
                // learned-similarity imprecision: deterministic, input-keyed
                let noise = slm_runtime::sim::input_noise(
                    self.config.seed ^ 0x51_4e_01_5e,
                    &slm_runtime::verifier::VerificationRequest::new(question, context, rs),
                );
                (best + self.config.similarity_noise * noise).clamp(0.0, 1.0)
            })
            .sum();
        total / response_sentences.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop.";
    const Q: &str = "What are the working hours?";

    /// An oracle-setting checker (no sampling errors, no similarity noise)
    /// for tests that verify the core mechanism in isolation.
    fn oracle() -> SelfChecker {
        SelfChecker::new(SelfCheckConfig {
            sample_error_rate: 0.0,
            similarity_noise: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn oracle_sampling_produces_k_grounded_answers() {
        let samples = oracle().sample_answers(Q, CTX);
        assert_eq!(samples.len(), 5);
        for s in &samples {
            for sentence in text_engine::split_sentences(s) {
                assert!(CTX.contains(&sentence), "ungrounded sample: {sentence}");
            }
        }
    }

    #[test]
    fn default_sampling_contains_some_hallucinated_samples() {
        // With error rate 0.3 and more draws, some samples must deviate.
        let noisy = SelfChecker::new(SelfCheckConfig {
            num_samples: 20,
            ..Default::default()
        });
        let samples = noisy.sample_answers(Q, CTX);
        let flawed = samples
            .iter()
            .filter(|s| {
                text_engine::split_sentences(s)
                    .iter()
                    .any(|sent| !CTX.contains(sent.as_str()))
            })
            .count();
        assert!(
            flawed >= 2,
            "expected some hallucinated samples, got {flawed}"
        );
        assert!(
            flawed <= 14,
            "error rate should stay near 0.3, got {flawed}/20"
        );
    }

    #[test]
    fn agreement_rewards_shared_entities() {
        let high = sentence_agreement(
            "The working hours are 9 AM to 5 PM.",
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
        );
        assert!(high > 0.5, "{high}");
    }

    #[test]
    fn agreement_zeroes_on_contradicting_entities() {
        let a = sentence_agreement(
            "The working hours are 9 AM to 9 PM.",
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
        );
        assert_eq!(a, 0.0);
    }

    #[test]
    fn correct_outscores_wrong() {
        let checker = SelfChecker::default();
        let good = checker.score(Q, CTX, "The working hours are 9 AM to 5 PM.");
        let bad = checker.score(Q, CTX, "The working hours are 9 AM to 9 PM.");
        assert!(good > bad, "good {good} vs bad {bad}");
        assert!(bad < 0.4, "{bad}");
    }

    #[test]
    fn oracle_orders_partial_between_correct_and_wrong() {
        let checker = oracle();
        let good = checker.score(
            Q,
            CTX,
            "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
        );
        let partial = checker.score(
            Q,
            CTX,
            "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.",
        );
        let wrong = checker.score(
            Q,
            CTX,
            "The working hours are 9 AM to 9 PM. The store is open from Monday to Friday.",
        );
        assert!(good > partial, "good {good} vs partial {partial}");
        assert!(partial > wrong, "partial {partial} vs wrong {wrong}");
    }

    #[test]
    fn noisy_checker_orders_on_average() {
        // Similarity noise averages out across phrasing variants. Sampling
        // errors are kept off here because samples are fixed per
        // (question, context): one unlucky hallucinated sample supports
        // every variant identically — a real, systematic failure mode of
        // the family that no amount of response-side averaging removes
        // (it is visible in ext-selfcheck's dataset-level numbers instead).
        let checker = SelfChecker::new(SelfCheckConfig {
            sample_error_rate: 0.0,
            ..Default::default()
        });
        let mean = |days: &str| -> f64 {
            (0..10)
                .map(|i| {
                    let r = format!(
                        "The working hours are 9 AM to 5 PM, case {i}. \
                         The store is open from {days}, note {i}."
                    );
                    checker.score(Q, CTX, &r)
                })
                .sum::<f64>()
                / 10.0
        };
        let good = mean("Sunday to Saturday");
        let partial = mean("Monday to Friday");
        assert!(good > partial, "good {good} vs partial {partial}");
    }

    #[test]
    fn empty_response_scores_zero() {
        assert_eq!(SelfChecker::default().score(Q, CTX, ""), 0.0);
    }

    #[test]
    fn empty_context_scores_zero() {
        // no samples can be drawn → nothing to agree with
        let s = SelfChecker::default().score(Q, "", "The working hours are 9 AM to 5 PM.");
        assert!(s < 0.6, "{s}");
    }

    #[test]
    fn deterministic_per_seed() {
        let checker = SelfChecker::default();
        let a = checker.score(Q, CTX, "The working hours are 9 AM to 5 PM.");
        let b = checker.score(Q, CTX, "The working hours are 9 AM to 5 PM.");
        assert_eq!(a, b);
    }
}
