//! Overload-resilient serving runtime for guarded QA.
//!
//! [`ResilientVerifiedPipeline`] makes a single request robust to *backend*
//! failures (crashes, stalls, garbage scores). This module makes the system
//! robust to *load*: when requests arrive faster than verification can score
//! them, an unprotected server queues without bound, every request blows its
//! latency budget, and goodput collapses — the classic overload failure mode.
//!
//! [`ServingRuntime`] wraps the pipeline in a deterministic single-server
//! queueing loop with three defenses:
//!
//! 1. **Admission control** — a bounded queue with a configurable
//!    [`ShedPolicy`]. A request that cannot be admitted is not dropped on
//!    the floor: it gets an explicit [`Disposition::Shed`] outcome naming
//!    the reason, so callers can distinguish "your answer was blocked as a
//!    hallucination" from "the system was too busy to look".
//! 2. **Deadline budgets** — each request carries a relative deadline.
//!    Whatever queueing delay it suffers is subtracted from the budget the
//!    verifier gets ([`ResilientVerifiedPipeline::ask_deadline`] →
//!    `ResilientDetector::score_within`), so a near-expired request scores
//!    the sentences it can afford and degrades honestly instead of
//!    overshooting. A request whose deadline passes while still queued is
//!    shed without wasting verifier time on it.
//! 3. **Graceful drain** — [`ServingRuntime::begin_drain`] stops admitting
//!    new work (typed as [`ShedReason::Draining`]) while every
//!    already-admitted request is still served to completion.
//!
//! All time is virtual ([`slm_runtime::VirtualClock`]): the queue dynamics,
//! deadline expiries, and shed decisions are a discrete-event simulation
//! over the same simulated milliseconds the fault-injection layer charges,
//! which makes every overload scenario in the test suite and the `overload`
//! benchmark bitwise reproducible.
//!
//! **Zero-pressure transparency.** With an unbounded queue, infinite
//! deadlines, and no drain, the runtime serves submissions in order with an
//! infinite budget — bitwise identical to calling
//! [`ResilientVerifiedPipeline::ask`] directly. The overload machinery is
//! pay-for-what-you-use; it cannot perturb an unloaded system.
//!
//! **Observability.** [`ServingRuntime::with_obs`] connects the loop to a
//! `hallu-obs` sink: queue depth, shed decisions (by reason and priority),
//! queue-wait / service / deadline-slack histograms, and a per-request
//! flight record capturing the decision trail — admission context, every
//! detector event, the guard decision, and the final disposition — stamped
//! in the runtime's own virtual milliseconds. Instrumentation never
//! perturbs the queue dynamics: outcomes are bitwise identical with or
//! without a sink.

use std::fmt;
use std::sync::Arc;

use hallu_core::ResilienceTelemetry;
use hallu_obs::{
    Counter, EventRecord, Gauge, Histogram, Obs, SpanRecord, TraceContext,
    DEFAULT_LATENCY_BUCKETS_MS,
};
use slm_runtime::{Clock, PagedKvPool, VerificationCache, VirtualClock};
use vectordb::index::VectorIndex;

use crate::verified::{ResilientAnswer, ResilientVerifiedPipeline};

/// Which serving node produced an outcome. `shard` is the consistent-hash
/// ring position; `replica` is the node's index inside that shard's replica
/// group (0 = primary). A standalone [`ServingRuntime`] has no identity and
/// stamps [`RequestOutcome::served_by`] with `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardIdentity {
    /// Ring shard id.
    pub shard: u32,
    /// Replica index within the shard's group (0 = primary).
    pub replica: u32,
}

impl fmt::Display for ShardIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}r{}", self.shard, self.replica)
    }
}

/// Request importance class. Ordering is semantic: `Low < Normal < High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Shed first under pressure (e.g. batch/backfill traffic).
    Low,
    /// Default interactive traffic.
    Normal,
    /// Shed last (e.g. operator or safety-critical queries).
    High,
}

/// What to do when a request arrives at a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the arriving request ([`ShedReason::QueueFull`]). Queued work
    /// is never disturbed; service order stays FIFO within a priority class.
    RejectNewest,
    /// If the arriving request outranks the lowest-priority queued one,
    /// evict that victim ([`ShedReason::Displaced`]) to make room;
    /// otherwise reject the newcomer. Protects high-priority goodput.
    ShedLowestPriority,
    /// Admit like [`ShedPolicy::RejectNewest`], but once the queue is at
    /// least half its bound, serve newest-first within a priority class.
    /// Under sustained overload FIFO serves only stale, about-to-expire
    /// requests; LIFO serves fresh ones that can still meet their deadline.
    LifoUnderOverload,
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Arrived at a full queue and the policy rejected it.
    QueueFull,
    /// Was queued, but evicted to admit a higher-priority arrival
    /// (only under [`ShedPolicy::ShedLowestPriority`]).
    Displaced,
    /// Its deadline passed while it was still waiting in the queue.
    DeadlineExpired,
    /// Submitted after [`ServingRuntime::begin_drain`].
    Draining,
    /// The attached paged KV pool cannot fit the prompt's page need
    /// (only with [`ServingRuntime::with_pool_admission`]). Shedding at
    /// admission turns a mid-prefill `PoolExhausted` abort into a typed,
    /// observable outcome the client can retry against another replica.
    PoolSaturated,
}

/// The single typed disposition every submitted request receives.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Verification ran; the pipeline's own verdict
    /// (served / blocked / unverified / abstained) is inside. Boxed: the
    /// answer dwarfs the shed variants and most outcomes shed under load.
    Completed(Box<ResilientAnswer>),
    /// Admission control or deadline enforcement dropped the request
    /// before (or instead of) verification.
    Shed(ShedReason),
    /// Retrieval failed; the error is reported, not swallowed.
    Failed(String),
}

/// One request's complete serving record. Exactly one of these is produced
/// per [`ServingRuntime::submit_at`] call — never zero, never two.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Ticket returned by `submit_at`.
    pub id: u64,
    /// The submitted question.
    pub question: String,
    /// The submitted priority class.
    pub priority: Priority,
    /// Virtual arrival time.
    pub submitted_at_ms: f64,
    /// Virtual time the disposition was decided.
    pub finished_at_ms: f64,
    /// Time spent queued before service began (0 for admission-time sheds).
    pub queue_wait_ms: f64,
    /// How many *other* requests were waiting in the queue at the instant
    /// the disposition was decided. Together with `priority` this makes
    /// every outcome (and its flight record) self-contained: a shed can be
    /// interpreted without replaying the queue that caused it.
    pub queue_depth_at_decision: usize,
    /// The node that decided this outcome (served it, or shed it at its
    /// admission gate). `None` for a standalone runtime outside a cluster.
    pub served_by: Option<ShardIdentity>,
    /// What happened.
    pub disposition: Disposition,
}

impl RequestOutcome {
    /// End-to-end sojourn time (decision minus arrival).
    pub fn latency_ms(&self) -> f64 {
        self.finished_at_ms - self.submitted_at_ms
    }

    /// Whether an answer actually reached the user.
    pub fn is_served(&self) -> bool {
        matches!(&self.disposition, Disposition::Completed(a) if a.is_served())
    }
}

/// Admission and deadline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Maximum queued (admitted, not yet served) requests. `None` is an
    /// unbounded queue — no admission sheds ever happen.
    pub queue_bound: Option<usize>,
    /// Full-queue behavior.
    pub shed_policy: ShedPolicy,
    /// Relative deadline applied to requests submitted without one.
    /// `f64::INFINITY` disables deadline enforcement.
    pub default_deadline_ms: f64,
}

impl Default for ServingConfig {
    /// Zero-pressure defaults: unbounded queue, no deadlines. Under this
    /// configuration the runtime is a transparent wrapper.
    fn default() -> Self {
        Self {
            queue_bound: None,
            shed_policy: ShedPolicy::RejectNewest,
            default_deadline_ms: f64::INFINITY,
        }
    }
}

/// Aggregate view of a batch of outcomes (see the `overload` benchmark for
/// goodput/latency analysis built on top of this).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServingStats {
    /// Total outcomes summarized.
    pub total: usize,
    /// Verified and served.
    pub served: usize,
    /// Verified and blocked as hallucinated.
    pub blocked: usize,
    /// Verification abstained; [`crate::verified::FailurePolicy`] decided.
    pub unverified: usize,
    /// Explicit abstentions surfaced to the caller.
    pub abstained: usize,
    /// Shed at admission or by deadline enforcement.
    pub shed: usize,
    /// Retrieval failures.
    pub failed: usize,
}

impl ServingStats {
    /// Tally dispositions over `outcomes`.
    pub fn from_outcomes(outcomes: &[RequestOutcome]) -> Self {
        let mut s = Self {
            total: outcomes.len(),
            ..Self::default()
        };
        for o in outcomes {
            match &o.disposition {
                Disposition::Completed(a) => match a.as_ref() {
                    ResilientAnswer::Served { .. } => s.served += 1,
                    ResilientAnswer::Blocked { .. } => s.blocked += 1,
                    ResilientAnswer::Unverified { .. } => s.unverified += 1,
                    ResilientAnswer::Abstained { .. } => s.abstained += 1,
                },
                Disposition::Shed(_) => s.shed += 1,
                Disposition::Failed(_) => s.failed += 1,
            }
        }
        s
    }
}

/// A request admitted to the queue.
#[derive(Debug, Clone)]
struct QueuedRequest {
    id: u64,
    question: String,
    priority: Priority,
    submitted_at_ms: f64,
    /// Absolute expiry (arrival + relative deadline; may be infinite).
    deadline_at_ms: f64,
    /// Cluster trace context (root span to attach under), if traced.
    trace: Option<TraceContext>,
}

/// Stable label for a priority class (metric labels and flight fields).
pub(crate) fn priority_label(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Normal => "normal",
        Priority::High => "high",
    }
}

/// Stable label for a shed reason (metric labels and flight fields).
pub(crate) fn shed_reason_label(r: ShedReason) -> &'static str {
    match r {
        ShedReason::QueueFull => "queue_full",
        ShedReason::Displaced => "displaced",
        ShedReason::DeadlineExpired => "deadline_expired",
        ShedReason::Draining => "draining",
        ShedReason::PoolSaturated => "pool_saturated",
    }
}

/// Stable label for a disposition (metric labels and flight outcomes).
pub(crate) fn disposition_label(d: &Disposition) -> &'static str {
    match d {
        Disposition::Completed(a) => match a.as_ref() {
            ResilientAnswer::Served { .. } => "served",
            ResilientAnswer::Blocked { .. } => "blocked",
            ResilientAnswer::Unverified { .. } => "unverified",
            ResilientAnswer::Abstained { .. } => "abstained",
        },
        Disposition::Shed(_) => "shed",
        Disposition::Failed(_) => "failed",
    }
}

/// Registry handles the serving loop writes. Every handle is disconnected
/// (a free no-op) until [`ServingRuntime::with_obs`] registers them.
#[derive(Debug, Clone, Default)]
struct ServingMetrics {
    submitted: Counter,
    coalesced: Counter,
    queue_depth: Gauge,
    queue_wait_ms: Histogram,
    service_ms: Histogram,
    deadline_slack_ms: Histogram,
}

impl ServingMetrics {
    /// Register the serving series, labeled `{shard, replica}` when the
    /// runtime has a cluster identity so per-shard views (and the cluster
    /// router's slow-shard detection) can tell members apart.
    fn register(obs: &Obs, identity: Option<ShardIdentity>) -> Self {
        let (shard_s, replica_s);
        let labels: Vec<(&str, &str)> = match identity {
            Some(id) => {
                shard_s = id.shard.to_string();
                replica_s = id.replica.to_string();
                vec![("shard", shard_s.as_str()), ("replica", replica_s.as_str())]
            }
            None => Vec::new(),
        };
        Self {
            submitted: obs.counter(
                "hallu_serving_submitted_total",
                "Requests submitted to the serving runtime",
                &labels,
            ),
            coalesced: obs.counter(
                "hallu_serving_coalesced_total",
                "Queued requests whose question was being served when dispatch \
                 began — their sentence scores land as cache hits",
                &labels,
            ),
            queue_depth: obs.gauge(
                "hallu_serving_queue_depth",
                "Admitted requests currently waiting for service",
                &labels,
            ),
            queue_wait_ms: obs.histogram(
                "hallu_serving_queue_wait_ms",
                "Virtual time spent queued before the disposition was decided",
                &labels,
                &DEFAULT_LATENCY_BUCKETS_MS,
            ),
            service_ms: obs.histogram(
                "hallu_serving_service_ms",
                "Charged verification time per request that reached service",
                &labels,
                &DEFAULT_LATENCY_BUCKETS_MS,
            ),
            deadline_slack_ms: obs.histogram(
                "hallu_serving_deadline_slack_ms",
                "Remaining deadline budget at the moment service began",
                &labels,
                &DEFAULT_LATENCY_BUCKETS_MS,
            ),
        }
    }
}

/// A submission not yet processed by the event loop.
#[derive(Debug, Clone)]
struct PendingArrival {
    id: u64,
    question: String,
    priority: Priority,
    at_ms: f64,
    deadline_ms: f64,
    /// Submitted after [`ServingRuntime::begin_drain`]; refused on arrival.
    refused_by_drain: bool,
    /// Cluster trace context (root span to attach under), if traced.
    trace: Option<TraceContext>,
}

/// A dispatched request whose (virtual) service interval is still open.
/// The outcome — disposition included — is decided at dispatch; it is
/// published when the clock reaches `outcome.finished_at_ms`, or discarded
/// by [`ServingRuntime::abort_pending`] if the node dies first.
#[derive(Debug, Clone)]
struct InFlight {
    outcome: RequestOutcome,
}

/// A request a dying node never finished: returned by
/// [`ServingRuntime::abort_pending`] so a cluster can give it a typed
/// outcome (the one-outcome invariant survives node loss).
#[derive(Debug, Clone, PartialEq)]
pub struct AbortedRequest {
    /// Ticket from `submit_at`.
    pub id: u64,
    /// The submitted question.
    pub question: String,
    /// The submitted priority class.
    pub priority: Priority,
    /// Virtual arrival time.
    pub submitted_at_ms: f64,
    /// Whether the request was being served (vs. still queued or not yet
    /// delivered) when the node went down.
    pub was_in_flight: bool,
}

/// Deterministic single-server serving loop around a
/// [`ResilientVerifiedPipeline`]. See the module docs for the model.
///
/// The loop has two drivers. [`run_until_idle`](Self::run_until_idle) owns
/// the clock and plays every submission to completion — the standalone
/// mode. A cluster instead drives members incrementally through
/// [`deliver_now`](Self::deliver_now) / [`pump`](Self::pump) /
/// [`next_wake_ms`](Self::next_wake_ms) on a *shared* clock
/// ([`with_shared_clock`](Self::with_shared_clock)), so many members
/// advance through the same virtual milliseconds without any member
/// unilaterally jumping time. Both drivers run the same dispatch core.
pub struct ServingRuntime<I> {
    pipeline: ResilientVerifiedPipeline<I>,
    /// Admission and deadline configuration.
    pub config: ServingConfig,
    /// Shared so [`with_obs`](Self::with_obs) can bind it as the sink's
    /// time source; in standalone mode the loop is the only writer, in
    /// cluster mode the cluster event loop is.
    clock: Arc<VirtualClock>,
    obs: Obs,
    metrics: ServingMetrics,
    /// Shared with the pipeline's detector so the runtime can report cache
    /// stats; `None` means every request scores its sentences from scratch.
    cache: Option<Arc<VerificationCache>>,
    /// Cluster position, stamped on outcomes and metric labels.
    identity: Option<ShardIdentity>,
    /// Multiplier on charged service time (chaos: a slow shard runs the
    /// same verification but takes longer to do it).
    service_factor: f64,
    /// Paged KV pool consulted at admission
    /// ([`with_pool_admission`](Self::with_pool_admission)); `None` skips
    /// the check entirely.
    pool: Option<Arc<PagedKvPool>>,
    /// Flat token overhead added to the prompt estimate (verification
    /// template, answer headroom) before converting to a page need.
    pool_overhead_tokens: usize,
    next_id: u64,
    arrivals: Vec<PendingArrival>,
    queue: Vec<QueuedRequest>,
    in_flight: Option<InFlight>,
    outcomes: Vec<RequestOutcome>,
    draining: bool,
}

impl<I: VectorIndex> ServingRuntime<I> {
    /// Wrap `pipeline` under `config`, starting the virtual clock at 0.
    pub fn new(pipeline: ResilientVerifiedPipeline<I>, config: ServingConfig) -> Self {
        Self {
            pipeline,
            config,
            clock: Arc::new(VirtualClock::new()),
            obs: Obs::off(),
            metrics: ServingMetrics::default(),
            cache: None,
            identity: None,
            service_factor: 1.0,
            pool: None,
            pool_overhead_tokens: 0,
            next_id: 0,
            arrivals: Vec::new(),
            queue: Vec::new(),
            in_flight: None,
            outcomes: Vec::new(),
            draining: false,
        }
    }

    /// Replace the runtime's private clock with a shared one, so several
    /// runtimes (a cluster's members) advance through the same virtual
    /// time. Apply before [`with_obs`](Self::with_obs) — the sink binds
    /// whichever clock the runtime holds at that point.
    #[must_use]
    pub fn with_shared_clock(mut self, clock: Arc<VirtualClock>) -> Self {
        self.clock = clock;
        self
    }

    /// Stamp this runtime with its cluster position. Outcomes carry it in
    /// [`RequestOutcome::served_by`], flight records switch to
    /// `req-s{shard}r{replica}-{id}` names, and metric series gain
    /// `{shard, replica}` labels. Apply before [`with_obs`](Self::with_obs)
    /// so the labels land on the registered series.
    #[must_use]
    pub fn with_identity(mut self, shard: u32, replica: u32) -> Self {
        self.identity = Some(ShardIdentity { shard, replica });
        self
    }

    /// Connect the runtime — and, through it, the wrapped pipeline and its
    /// detector — to an observability sink. The runtime's virtual clock
    /// becomes the sink's time source, so every metric, span, and flight
    /// record is stamped in the same simulated milliseconds the queueing
    /// model runs on. Queue dynamics and verdicts are bitwise unaffected.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// Non-consuming [`with_obs`](Self::with_obs): re-registers every
    /// metric handle (with identity labels when present) against `obs` and
    /// rebinds its time source to this runtime's clock.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        obs.bind_time(self.clock.clone());
        self.metrics = ServingMetrics::register(obs, self.identity);
        self.pipeline.set_obs(obs);
    }

    /// Share `cache` between the wrapped pipeline's detector and the
    /// runtime. Duplicate questions that queue up behind one another then
    /// coalesce: the first dispatch scores each (model, sentence) cell once
    /// and every follower replays the memoized outcomes — same verdicts,
    /// same virtual-time charges, less recomputation. Outcomes are bitwise
    /// identical with or without the cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<VerificationCache>) -> Self {
        self.pipeline.set_cache(cache.clone());
        self.cache = Some(cache);
        self
    }

    /// Non-consuming form of [`Self::with_cache`], for hosts (the cluster)
    /// that attach or re-attach a cache to an already-built runtime — e.g.
    /// when rebinding cache telemetry to a new observability sink.
    pub fn set_cache(&mut self, cache: Arc<VerificationCache>) {
        self.pipeline.set_cache(cache.clone());
        self.cache = Some(cache);
    }

    /// The shared verification cache, when one was attached.
    pub fn cache(&self) -> Option<&VerificationCache> {
        self.cache.as_deref()
    }

    /// Switch the wrapped detector's probe executor to continuous batching:
    /// with `parallel` scoring on, probe workers pull cells from a shared
    /// queue and join the next pending probe the moment they free up,
    /// instead of idling at the fixed-partition batch barrier. The engine's
    /// ordered merge keeps verdicts, scores, and every serving metric
    /// bitwise-identical to the barrier engine — admission stays a pure
    /// function of the virtual clock — so the parity wall can assert
    /// continuous vs barrier equality under chaos.
    pub fn set_continuous_batching(&mut self, on: bool) {
        self.pipeline.detector_mut().config.continuous = on;
    }

    /// Builder-style [`Self::set_continuous_batching`].
    #[must_use]
    pub fn with_continuous_batching(mut self, on: bool) -> Self {
        self.set_continuous_batching(on);
        self
    }

    /// Gate admission on `pool` headroom: an arrival whose estimated page
    /// need exceeds [`PagedKvPool::pages_available`] is shed with the typed
    /// [`ShedReason::PoolSaturated`] instead of aborting mid-prefill on
    /// `PoolExhausted`. The prompt estimate is the question's whitespace
    /// token count plus `overhead_tokens` (verification template and
    /// decode headroom), rounded up to whole pages of
    /// `pool.config().block_tokens`.
    #[must_use]
    pub fn with_pool_admission(mut self, pool: Arc<PagedKvPool>, overhead_tokens: usize) -> Self {
        self.pool = Some(pool);
        self.pool_overhead_tokens = overhead_tokens;
        self
    }

    /// Pages the arrival's prompt would need from the attached pool, or
    /// `None` when no pool is attached (check disabled).
    fn pool_page_need(&self, question: &str) -> Option<usize> {
        let pool = self.pool.as_ref()?;
        let tokens = question.split_whitespace().count() + self.pool_overhead_tokens;
        let block = pool.config().block_tokens.max(1);
        Some(tokens.div_ceil(block))
    }

    /// The shared verification cache as a cloneable handle, when attached.
    pub fn cache_handle(&self) -> Option<Arc<VerificationCache>> {
        self.cache.clone()
    }

    /// The wrapped pipeline (e.g. for health inspection).
    pub fn pipeline(&self) -> &ResilientVerifiedPipeline<I> {
        &self.pipeline
    }

    /// This runtime's cluster position, if any.
    pub fn identity(&self) -> Option<ShardIdentity> {
        self.identity
    }

    /// Set the service-time multiplier (chaos: `> 1.0` models a slow node
    /// that verifies correctly but charges more virtual time). Verdicts are
    /// unaffected; only the charged interval stretches.
    pub fn set_service_factor(&mut self, factor: f64) {
        self.service_factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
    }

    /// Admitted requests currently waiting (excludes any in-flight one).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a request is currently being served.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// Whether [`begin_drain`](Self::begin_drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Schedule a question to arrive at virtual time `at_ms` with the
    /// configured default deadline. Returns the request's ticket.
    pub fn submit_at(&mut self, at_ms: f64, question: &str, priority: Priority) -> u64 {
        self.submit_at_with_deadline(at_ms, question, priority, self.config.default_deadline_ms)
    }

    /// [`submit_at`](Self::submit_at) with an explicit relative deadline:
    /// the request expires `deadline_ms` after its arrival.
    pub fn submit_at_with_deadline(
        &mut self,
        at_ms: f64,
        question: &str,
        priority: Priority,
        deadline_ms: f64,
    ) -> u64 {
        self.submit_traced(at_ms, question, priority, deadline_ms, None)
    }

    /// [`submit_at_with_deadline`](Self::submit_at_with_deadline) carrying
    /// a cluster [`TraceContext`]: the request's queue wait and scoring
    /// interval are recorded as spans attached under `trace.span_id`, so
    /// the cluster stitcher can assemble a cross-member causal tree.
    pub fn submit_traced(
        &mut self,
        at_ms: f64,
        question: &str,
        priority: Priority,
        deadline_ms: f64,
        trace: Option<TraceContext>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.metrics.submitted.inc();
        self.arrivals.push(PendingArrival {
            id,
            question: question.to_string(),
            priority,
            // arrivals cannot predate the clock
            at_ms: at_ms.max(self.clock.now_ms()),
            deadline_ms: deadline_ms.max(0.0),
            refused_by_drain: self.draining,
            trace,
        });
        id
    }

    /// Stop accepting new work: everything submitted so far (queued or
    /// still scheduled to arrive) is served to completion, while later
    /// submissions are refused with [`ShedReason::Draining`] — a typed
    /// outcome, not a silent drop.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Run the discrete-event loop until every submission has an outcome
    /// and the queue is empty, then return how many outcomes are waiting
    /// in [`drain_outcomes`](Self::drain_outcomes).
    ///
    /// Events are processed in virtual-time order (ties broken by
    /// submission order), so interleavings — and therefore every shed and
    /// every deadline miss — are deterministic.
    pub fn run_until_idle(&mut self) -> usize {
        loop {
            let now = self.clock.now_ms();
            self.deliver_due(now);
            if let Some(finish) = self.in_flight.as_ref().map(|i| i.outcome.finished_at_ms) {
                self.clock.advance_to_ms(finish);
                // requests landing while the server was busy queue behind it
                // (and their admission sheds are decided) before its outcome
                // is published, matching arrival order
                self.deliver_due(finish);
                self.finish_in_flight();
                continue;
            }
            if self.dispatch_next() {
                continue;
            }
            // idle and empty-queued: jump to the next scheduled arrival
            match self.arrivals.iter().map(|a| a.at_ms).min_by(f64::total_cmp) {
                Some(at) => self.clock.advance_to_ms(at),
                None => break,
            }
        }
        self.outcomes.len()
    }

    /// Admit (or shed at admission) every pending arrival due at the
    /// current virtual time. Cluster driver: the event loop calls this
    /// after advancing the shared clock.
    pub fn deliver_now(&mut self) {
        self.deliver_due(self.clock.now_ms());
    }

    /// Advance this member's state to the current virtual time without
    /// touching the clock: publish an in-flight outcome whose service
    /// interval has closed, then keep dispatching queued work (deadline
    /// sheds cost nothing; a started service makes the member busy until
    /// its finish time). Cluster driver.
    pub fn pump(&mut self) {
        let now = self.clock.now_ms();
        self.deliver_due(now);
        loop {
            if let Some(inf) = &self.in_flight {
                if inf.outcome.finished_at_ms <= now {
                    self.finish_in_flight();
                    continue;
                }
                break;
            }
            if !self.dispatch_next() {
                break;
            }
        }
    }

    /// The next virtual time at which this member has work to do: the
    /// in-flight finish, the earliest scheduled arrival, or "now" if the
    /// server is idle with a non-empty queue. `None` means fully idle.
    pub fn next_wake_ms(&self) -> Option<f64> {
        let mut wake: Option<f64> = self.in_flight.as_ref().map(|i| i.outcome.finished_at_ms);
        if let Some(at) = self.arrivals.iter().map(|a| a.at_ms).min_by(f64::total_cmp) {
            wake = Some(wake.map_or(at, |w| w.min(at)));
        }
        if self.in_flight.is_none() && !self.queue.is_empty() {
            let now = self.clock.now_ms();
            wake = Some(wake.map_or(now, |w| w.min(now)));
        }
        wake
    }

    /// Kill this node: every request it holds — in flight, queued, or not
    /// yet delivered — is returned *without* an outcome, in-flight first,
    /// then queue order, then arrival order. The caller (a cluster) owns
    /// typing their outcomes; a standalone runtime should let
    /// [`run_until_idle`](Self::run_until_idle) finish instead.
    pub fn abort_pending(&mut self) -> Vec<AbortedRequest> {
        let mut aborted = Vec::new();
        if let Some(inf) = self.in_flight.take() {
            let o = inf.outcome;
            aborted.push(AbortedRequest {
                id: o.id,
                question: o.question,
                priority: o.priority,
                submitted_at_ms: o.submitted_at_ms,
                was_in_flight: true,
            });
        }
        let now = self.clock.now_ms();
        for r in std::mem::take(&mut self.queue) {
            // The wait ends here: a crashed node's queued requests still
            // get their queue time attributed in the stitched trace.
            if let Some(ctx) = r.trace {
                self.record_trace_span(ctx, "queue", 0, r.submitted_at_ms, now, Vec::new());
            }
            aborted.push(AbortedRequest {
                id: r.id,
                question: r.question,
                priority: r.priority,
                submitted_at_ms: r.submitted_at_ms,
                was_in_flight: false,
            });
        }
        let mut pending = std::mem::take(&mut self.arrivals);
        pending.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        for a in pending {
            if let Some(ctx) = a.trace {
                self.record_trace_span(ctx, "queue", 0, a.at_ms, now.max(a.at_ms), Vec::new());
            }
            aborted.push(AbortedRequest {
                id: a.id,
                question: a.question,
                priority: a.priority,
                submitted_at_ms: a.at_ms,
                was_in_flight: false,
            });
        }
        if self.obs.enabled() {
            self.metrics.queue_depth.set(0.0);
        }
        aborted
    }

    /// Admit every arrival scheduled at or before `t`, earliest first
    /// (ties keep submission order).
    fn deliver_due(&mut self, t: f64) {
        if self.arrivals.is_empty() {
            return;
        }
        // Stable sort: simultaneous arrivals keep submission order.
        self.arrivals.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        while self.arrivals.first().is_some_and(|a| a.at_ms <= t) {
            let a = self.arrivals.remove(0);
            self.admit(a);
        }
    }

    /// Publish the in-flight request's prebuilt outcome.
    fn finish_in_flight(&mut self) {
        if let Some(inf) = self.in_flight.take() {
            self.push_outcome(inf.outcome);
        }
    }

    /// Dispatch the highest-priority queued request at the current virtual
    /// time: a deadline-expired one is shed on the spot (no service time);
    /// otherwise verification runs and the node becomes busy until
    /// `now + service_ms × service_factor`. The complete outcome —
    /// disposition, finish time, queue statistics — is decided here; only
    /// its publication waits for the clock. Returns whether any request
    /// was taken.
    fn dispatch_next(&mut self) -> bool {
        if self.in_flight.is_some() {
            return false;
        }
        let now = self.clock.now_ms();
        let Some(req) = self.take_next() else {
            return false;
        };
        let depth = self.queue.len();
        if req.deadline_at_ms <= now {
            // expired while queued; deciding that costs no service time
            if self.obs.enabled() {
                self.obs.begin_flight(&self.flight_name(req.id));
                self.obs.flight(
                    "shed",
                    &[
                        ("reason", "deadline_expired".to_string()),
                        ("priority", priority_label(req.priority).to_string()),
                        ("queue_depth", depth.to_string()),
                        ("waited_ms", format!("{:.3}", now - req.submitted_at_ms)),
                    ],
                );
                self.obs.end_flight("shed:deadline_expired");
            }
            if let Some(ctx) = req.trace {
                self.record_trace_span(ctx, "queue", 0, req.submitted_at_ms, now, Vec::new());
            }
            self.push_outcome(RequestOutcome {
                id: req.id,
                question: req.question,
                priority: req.priority,
                submitted_at_ms: req.submitted_at_ms,
                finished_at_ms: now,
                queue_wait_ms: now - req.submitted_at_ms,
                queue_depth_at_decision: depth,
                served_by: self.identity,
                disposition: Disposition::Shed(ShedReason::DeadlineExpired),
            });
            return true;
        }
        let budget_ms = req.deadline_at_ms - now;
        if self.obs.enabled() {
            self.obs.begin_flight(&self.flight_name(req.id));
            self.obs.flight(
                "service_start",
                &[
                    ("priority", priority_label(req.priority).to_string()),
                    ("queue_depth", depth.to_string()),
                    ("queue_wait_ms", format!("{:.3}", now - req.submitted_at_ms)),
                    ("deadline_slack_ms", format!("{budget_ms:.3}")),
                ],
            );
            if budget_ms.is_finite() {
                self.metrics.deadline_slack_ms.observe(budget_ms);
            }
            // Telemetry only: queued duplicates of the question being
            // dispatched will score their sentences against warm cache
            // entries (when a cache is attached). The queue itself is
            // untouched — dispatch order, sheds, and verdicts are the
            // same with or without a cache, which is what the parity
            // suite pins down.
            let coalesced = self
                .queue
                .iter()
                .filter(|r| r.question == req.question)
                .count();
            if coalesced > 0 {
                self.metrics.coalesced.add(coalesced as u64);
                self.obs
                    .flight("coalesce", &[("queued_duplicates", coalesced.to_string())]);
            }
        }
        // Tracing: seal the queue span, then make the scoring context
        // ambient so detector spans opened inside `ask_deadline` (score,
        // probe, replay, hedge) nest under this request's trace.
        if let Some(ctx) = req.trace {
            self.record_trace_span(ctx, "queue", 0, req.submitted_at_ms, now, Vec::new());
        }
        let cache_before = match req.trace {
            Some(_) => self.cache.as_ref().map(|c| c.stats()),
            None => None,
        };
        let scoring_ctx = req.trace.map(|ctx| ctx.child("scoring", 0));
        let prev_ambient = scoring_ctx.map(|c| self.obs.set_trace(c));
        let (disposition, service_ms) = match self.pipeline.ask_deadline(&req.question, budget_ms) {
            Ok(answer) => {
                let cost = answer.telemetry().simulated_ms;
                (Disposition::Completed(Box::new(answer)), cost)
            }
            Err(e) => (Disposition::Failed(e.to_string()), 0.0),
        };
        let charged_ms = service_ms * self.service_factor;
        if let Some(scope) = scoring_ctx {
            self.obs.restore_trace(prev_ambient.flatten());
            if let Some(ctx) = req.trace {
                let mut events = vec![EventRecord {
                    name: "flight".to_string(),
                    at_ms: now,
                    fields: vec![("request".to_string(), self.flight_name(req.id))],
                }];
                if let (Some(before), Some(cache)) = (cache_before, self.cache.as_ref()) {
                    let after = cache.stats();
                    let replicated = after.replicated_hits - before.replicated_hits;
                    if replicated > 0 {
                        // A replication-warmed lookup: this member served
                        // scores it never computed. Zero-width by design —
                        // cache reads cost no virtual time.
                        self.record_trace_span(
                            scope,
                            "replication",
                            0,
                            now,
                            now,
                            vec![EventRecord {
                                name: "replicated_hits".to_string(),
                                at_ms: now,
                                fields: vec![("count".to_string(), replicated.to_string())],
                            }],
                        );
                    }
                    let hits = after.hits - before.hits;
                    if hits > 0 {
                        events.push(EventRecord {
                            name: "cache".to_string(),
                            at_ms: now,
                            fields: vec![("hits".to_string(), hits.to_string())],
                        });
                    }
                }
                self.record_trace_span(ctx, "scoring", 0, now, now + charged_ms, events);
            }
        }
        // Seal this request's flight record at dispatch: the disposition is
        // already decided, and leaving it open would let another node's (or
        // an admission shed's) record interrupt it.
        if self.obs.enabled() {
            self.metrics.service_ms.observe(charged_ms);
            self.obs.end_flight(disposition_label(&disposition));
        }
        self.in_flight = Some(InFlight {
            outcome: RequestOutcome {
                id: req.id,
                question: req.question,
                priority: req.priority,
                submitted_at_ms: req.submitted_at_ms,
                finished_at_ms: now + charged_ms,
                queue_wait_ms: now - req.submitted_at_ms,
                queue_depth_at_decision: depth,
                served_by: self.identity,
                disposition,
            },
        });
        true
    }

    /// Flight-record name for ticket `id`, qualified by cluster identity
    /// when present so records from different members never collide.
    fn flight_name(&self, id: u64) -> String {
        match self.identity {
            Some(ident) => format!("req-{ident}-{id}"),
            None => format!("req-{id}"),
        }
    }

    /// Record a synthesized trace span with an explicit interval and a
    /// `(trace, parent, name, ordinal)`-derived id, attached under `ctx`'s
    /// span. No-op without a sink; never touches queue dynamics.
    fn record_trace_span(
        &self,
        ctx: TraceContext,
        name: &str,
        ordinal: u64,
        start_ms: f64,
        end_ms: f64,
        events: Vec<EventRecord>,
    ) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.record_span(SpanRecord {
            id: ctx.child_id(name, ordinal),
            parent: ctx.span_id,
            name: name.to_string(),
            start_ms,
            end_ms,
            events,
            trace_id: ctx.trace_id,
            source: String::new(),
        });
    }

    /// Take ownership of every decided outcome, in decision order. Each
    /// outcome is delivered exactly once.
    pub fn drain_outcomes(&mut self) -> Vec<RequestOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Apply admission control to one arrival.
    fn admit(&mut self, a: PendingArrival) {
        if a.refused_by_drain {
            self.shed_arrival(a, ShedReason::Draining);
            return;
        }
        if let Some(need) = self.pool_page_need(&a.question) {
            let available = self
                .pool
                .as_ref()
                .map(|p| p.pages_available())
                .unwrap_or(usize::MAX);
            if need > available {
                self.shed_arrival(a, ShedReason::PoolSaturated);
                return;
            }
        }
        if let Some(bound) = self.config.queue_bound {
            if self.queue.len() >= bound {
                match self.config.shed_policy {
                    ShedPolicy::RejectNewest | ShedPolicy::LifoUnderOverload => {
                        self.shed_arrival(a, ShedReason::QueueFull);
                        return;
                    }
                    ShedPolicy::ShedLowestPriority => {
                        let victim_idx = self.lowest_priority_victim();
                        match victim_idx {
                            Some(idx) if self.queue[idx].priority < a.priority => {
                                // depth of the full queue that forced the
                                // displacement, victim still included
                                let depth = self.queue.len();
                                let victim = self.queue.remove(idx);
                                if self.obs.enabled() {
                                    self.obs.begin_flight(&self.flight_name(victim.id));
                                    self.obs.flight(
                                        "shed",
                                        &[
                                            ("reason", "displaced".to_string()),
                                            (
                                                "priority",
                                                priority_label(victim.priority).to_string(),
                                            ),
                                            ("queue_depth", depth.to_string()),
                                            ("displaced_by", format!("req-{}", a.id)),
                                        ],
                                    );
                                    self.obs.end_flight("shed:displaced");
                                }
                                if let Some(ctx) = victim.trace {
                                    self.record_trace_span(
                                        ctx,
                                        "queue",
                                        0,
                                        victim.submitted_at_ms,
                                        a.at_ms,
                                        Vec::new(),
                                    );
                                }
                                self.push_outcome(RequestOutcome {
                                    id: victim.id,
                                    question: victim.question,
                                    priority: victim.priority,
                                    submitted_at_ms: victim.submitted_at_ms,
                                    finished_at_ms: a.at_ms,
                                    queue_wait_ms: a.at_ms - victim.submitted_at_ms,
                                    queue_depth_at_decision: depth,
                                    served_by: self.identity,
                                    disposition: Disposition::Shed(ShedReason::Displaced),
                                });
                            }
                            _ => {
                                self.shed_arrival(a, ShedReason::QueueFull);
                                return;
                            }
                        }
                    }
                }
            }
        }
        self.queue.push(QueuedRequest {
            id: a.id,
            question: a.question,
            priority: a.priority,
            submitted_at_ms: a.at_ms,
            deadline_at_ms: a.at_ms + a.deadline_ms,
            trace: a.trace,
        });
        self.metrics.queue_depth.set(self.queue.len() as f64);
    }

    /// The queued request to evict for a higher-priority arrival: lowest
    /// priority, ties broken by *latest* arrival (preserve the oldest work,
    /// which has waited longest).
    fn lowest_priority_victim(&self) -> Option<usize> {
        (0..self.queue.len()).min_by(|&i, &j| {
            let (a, b) = (&self.queue[i], &self.queue[j]);
            a.priority.cmp(&b.priority).then(b.id.cmp(&a.id))
        })
    }

    /// Pick the next request to serve: highest priority class first; within
    /// the class, FIFO — or LIFO when [`ShedPolicy::LifoUnderOverload`] is
    /// active and the queue has reached half its bound.
    fn take_next(&mut self) -> Option<QueuedRequest> {
        if self.queue.is_empty() {
            return None;
        }
        let lifo = self.config.shed_policy == ShedPolicy::LifoUnderOverload
            && self
                .config
                .queue_bound
                .is_some_and(|b| self.queue.len() * 2 >= b);
        let idx = (0..self.queue.len()).max_by(|&i, &j| {
            let (a, b) = (&self.queue[i], &self.queue[j]);
            let order = a.priority.cmp(&b.priority);
            if lifo {
                order.then(a.id.cmp(&b.id))
            } else {
                order.then(b.id.cmp(&a.id))
            }
        })?;
        Some(self.queue.remove(idx))
    }

    /// Record an admission-time shed for `a`.
    fn shed_arrival(&mut self, a: PendingArrival, reason: ShedReason) {
        let depth = self.queue.len();
        if self.obs.enabled() {
            let label = shed_reason_label(reason);
            self.obs.begin_flight(&self.flight_name(a.id));
            self.obs.flight(
                "shed",
                &[
                    ("reason", label.to_string()),
                    ("priority", priority_label(a.priority).to_string()),
                    ("queue_depth", depth.to_string()),
                ],
            );
            self.obs.end_flight(&format!("shed:{label}"));
        }
        if let Some(ctx) = a.trace {
            // Zero-width queue span: refused at the door, waited nothing.
            self.record_trace_span(ctx, "queue", 0, a.at_ms, a.at_ms, Vec::new());
        }
        self.push_outcome(RequestOutcome {
            id: a.id,
            question: a.question,
            priority: a.priority,
            submitted_at_ms: a.at_ms,
            finished_at_ms: a.at_ms,
            queue_wait_ms: 0.0,
            queue_depth_at_decision: depth,
            served_by: self.identity,
            disposition: Disposition::Shed(reason),
        });
    }

    /// Append a decided outcome, mirroring it into the registry when a
    /// sink is attached: one `hallu_serving_outcomes_total{outcome}`
    /// increment, a `hallu_serving_shed_total{reason, priority}` increment
    /// for sheds, the queue-wait observation, and the current queue depth.
    fn push_outcome(&mut self, outcome: RequestOutcome) {
        if self.obs.enabled() {
            self.obs
                .counter(
                    "hallu_serving_outcomes_total",
                    "Request dispositions decided by the serving loop",
                    &[("outcome", disposition_label(&outcome.disposition))],
                )
                .inc();
            if let Disposition::Shed(reason) = &outcome.disposition {
                self.obs
                    .counter(
                        "hallu_serving_shed_total",
                        "Requests shed by admission control or deadline enforcement",
                        &[
                            ("reason", shed_reason_label(*reason)),
                            ("priority", priority_label(outcome.priority)),
                        ],
                    )
                    .inc();
            }
            self.metrics.queue_wait_ms.observe(outcome.queue_wait_ms);
            self.metrics.queue_depth.set(self.queue.len() as f64);
        }
        self.outcomes.push(outcome);
    }
}

/// Accessor used by serving consumers that only need the degradation story.
pub fn outcome_telemetry(outcome: &RequestOutcome) -> Option<&ResilienceTelemetry> {
    match &outcome.disposition {
        Disposition::Completed(a) => Some(a.telemetry()),
        Disposition::Shed(_) | Disposition::Failed(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SimulatedLlm;
    use crate::pipeline::RagPipeline;
    use crate::verified::FailurePolicy;
    use hallu_core::{DetectorConfig, ResilientDetector};
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
    use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
    use vectordb::collection::Collection;
    use vectordb::embed::HashingEmbedder;
    use vectordb::flat::FlatIndex;
    use vectordb::metric::Metric;

    const QUESTIONS: [&str; 4] = [
        "From what time does the store operate?",
        "How many days of annual leave per year?",
        "How many shopkeepers run a shop?",
        "Can unused leave be carried over?",
    ];

    fn guarded(
        profiles: [FaultProfile; 2],
        policy: FailurePolicy,
    ) -> ResilientVerifiedPipeline<FlatIndex> {
        let collection = Collection::new(
            Box::new(HashingEmbedder::new(128, 3)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
        rag.ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
             at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();
        rag.ingest(
            "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
             for three months.",
            "leave",
        )
        .unwrap();
        let [p0, p1] = profiles;
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
            Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
        ];
        let detector = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
        let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, policy);
        p.warm_up(&QUESTIONS).unwrap();
        p
    }

    fn healthy() -> ResilientVerifiedPipeline<FlatIndex> {
        guarded(
            [FaultProfile::none(1), FaultProfile::none(2)],
            FailurePolicy::Abstain,
        )
    }

    #[test]
    fn zero_pressure_is_bitwise_identical_to_direct_calls() {
        let mut direct = healthy();
        let mut rt = ServingRuntime::new(healthy(), ServingConfig::default());
        for (i, q) in QUESTIONS.iter().enumerate() {
            rt.submit_at(i as f64, q, Priority::Normal);
        }
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert_eq!(outcomes.len(), QUESTIONS.len());
        for (o, q) in outcomes.iter().zip(QUESTIONS) {
            let expected = direct.ask(q).unwrap();
            assert_eq!(
                o.disposition,
                Disposition::Completed(Box::new(expected)),
                "{q}"
            );
            assert_eq!(o.question, q);
        }
    }

    #[test]
    fn every_request_gets_exactly_one_outcome_under_overload() {
        let run = || {
            let mut rt = ServingRuntime::new(
                guarded(
                    [FaultProfile::uniform(7, 0.2), FaultProfile::uniform(8, 0.2)],
                    FailurePolicy::Abstain,
                ),
                ServingConfig {
                    queue_bound: Some(2),
                    shed_policy: ShedPolicy::RejectNewest,
                    default_deadline_ms: 150.0,
                },
            );
            let mut tickets = Vec::new();
            for i in 0..30u32 {
                let priority = match i % 3 {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                };
                tickets.push(rt.submit_at(
                    5.0 * f64::from(i),
                    QUESTIONS[i as usize % QUESTIONS.len()],
                    priority,
                ));
            }
            rt.run_until_idle();
            (tickets, rt.drain_outcomes())
        };
        let (tickets, outcomes) = run();
        assert_eq!(outcomes.len(), tickets.len());
        let mut seen: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        let mut expected = tickets.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected, "exactly one outcome per ticket");
        let stats = ServingStats::from_outcomes(&outcomes);
        assert_eq!(stats.total, 30);
        assert!(stats.shed > 0, "this load must shed: {stats:?}");
        assert!(
            stats.served + stats.blocked + stats.unverified + stats.abstained > 0,
            "some requests must complete: {stats:?}"
        );
        assert_eq!(run().1, outcomes, "overload runs are deterministic");
    }

    #[test]
    fn reject_newest_sheds_arrivals_at_a_full_queue() {
        let mut rt = ServingRuntime::new(
            healthy(),
            ServingConfig {
                queue_bound: Some(1),
                shed_policy: ShedPolicy::RejectNewest,
                default_deadline_ms: f64::INFINITY,
            },
        );
        let first = rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        let second = rt.submit_at(0.0, QUESTIONS[1], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(matches!(
            by_id(first).disposition,
            Disposition::Completed(_)
        ));
        assert_eq!(
            by_id(second).disposition,
            Disposition::Shed(ShedReason::QueueFull)
        );
        assert_eq!(by_id(second).finished_at_ms, 0.0, "decided on arrival");
        assert_eq!(
            by_id(second).queue_depth_at_decision,
            1,
            "the shed outcome names the full queue that refused it"
        );
    }

    #[test]
    fn pool_admission_sheds_typed_outcome_when_pool_cannot_fit_prompt() {
        use slm_runtime::PagedPoolConfig;
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig {
            n_layers: 1,
            kv_dim: 4,
            block_tokens: 4,
            max_pages: 2,
        }));
        // 64 overhead tokens over 4-token pages need 16+ pages; 2 exist.
        let mut rt =
            ServingRuntime::new(healthy(), ServingConfig::default()).with_pool_admission(pool, 64);
        let id = rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].id, id);
        assert_eq!(
            outcomes[0].disposition,
            Disposition::Shed(ShedReason::PoolSaturated),
            "saturated pool must shed, not panic mid-prefill"
        );
        assert_eq!(outcomes[0].finished_at_ms, 0.0, "decided on arrival");
        assert_eq!(
            shed_reason_label(ShedReason::PoolSaturated),
            "pool_saturated"
        );
    }

    #[test]
    fn pool_admission_admits_when_headroom_suffices_and_tracks_live_pages() {
        use slm_runtime::PagedPoolConfig;
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig {
            n_layers: 1,
            kv_dim: 4,
            block_tokens: 4,
            max_pages: 8,
        }));
        let mut rt = ServingRuntime::new(healthy(), ServingConfig::default())
            .with_pool_admission(pool.clone(), 8);
        let ok = rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert!(
            matches!(
                outcomes.iter().find(|o| o.id == ok).unwrap().disposition,
                Disposition::Completed(_)
            ),
            "a prompt within headroom is served normally"
        );

        // Occupy most of the pool: headroom drops below the same prompt's
        // page need, so what was admitted above now sheds.
        let mut cache = pool.new_cache(64);
        cache.try_reserve(6 * 4).unwrap();
        assert!(pool.pages_available() < 3);
        let shed = rt.submit_at(1.0, QUESTIONS[0], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert_eq!(
            outcomes.iter().find(|o| o.id == shed).unwrap().disposition,
            Disposition::Shed(ShedReason::PoolSaturated)
        );
    }

    #[test]
    fn shed_lowest_priority_displaces_for_a_higher_priority_arrival() {
        let mut rt = ServingRuntime::new(
            healthy(),
            ServingConfig {
                queue_bound: Some(1),
                shed_policy: ShedPolicy::ShedLowestPriority,
                default_deadline_ms: f64::INFINITY,
            },
        );
        let low = rt.submit_at(0.0, QUESTIONS[0], Priority::Low);
        let high = rt.submit_at(0.0, QUESTIONS[1], Priority::High);
        let late_low = rt.submit_at(0.0, QUESTIONS[2], Priority::Low);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(
            by_id(low).disposition,
            Disposition::Shed(ShedReason::Displaced),
            "low-priority work yields its slot"
        );
        assert_eq!(
            by_id(low).queue_depth_at_decision,
            1,
            "the victim's outcome records the queue it was evicted from"
        );
        assert!(matches!(by_id(high).disposition, Disposition::Completed(_)));
        assert_eq!(
            by_id(late_low).disposition,
            Disposition::Shed(ShedReason::QueueFull),
            "a low arrival cannot displace queued high-priority work"
        );
    }

    #[test]
    fn lifo_under_overload_serves_newest_first() {
        let mut rt = ServingRuntime::new(
            healthy(),
            ServingConfig {
                queue_bound: Some(2),
                shed_policy: ShedPolicy::LifoUnderOverload,
                default_deadline_ms: f64::INFINITY,
            },
        );
        let older = rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        let newer = rt.submit_at(0.0, QUESTIONS[1], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert_eq!(
            outcomes.iter().map(|o| o.id).collect::<Vec<_>>(),
            vec![newer, older],
            "half-full queue flips to newest-first"
        );
    }

    #[test]
    fn deadline_expired_in_queue_is_shed_without_service() {
        let mut rt = ServingRuntime::new(
            healthy(),
            ServingConfig {
                queue_bound: None,
                shed_policy: ShedPolicy::RejectNewest,
                default_deadline_ms: 10.0,
            },
        );
        let first = rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        let starved = rt.submit_at(0.0, QUESTIONS[1], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(matches!(
            by_id(first).disposition,
            Disposition::Completed(_)
        ));
        let starved = by_id(starved);
        assert_eq!(
            starved.disposition,
            Disposition::Shed(ShedReason::DeadlineExpired),
            "serving the first request must outlast the second's 10ms budget"
        );
        assert!(starved.queue_wait_ms > 10.0);
    }

    #[test]
    fn near_expired_request_degrades_instead_of_overshooting() {
        let mut rt = ServingRuntime::new(healthy(), ServingConfig::default());
        let id = rt.submit_at_with_deadline(0.0, QUESTIONS[0], Priority::Normal, 1.0);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert_eq!(outcomes[0].id, id);
        let telemetry =
            outcome_telemetry(&outcomes[0]).expect("a positive budget reaches the verifier");
        assert!(
            telemetry.deadline_skips > 0,
            "a 1ms budget cannot cover every sentence: {telemetry:?}"
        );
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_submitted_work() {
        let mut rt = ServingRuntime::new(healthy(), ServingConfig::default());
        let before = rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        assert!(!rt.is_draining());
        rt.begin_drain();
        assert!(rt.is_draining());
        let after = rt.submit_at(0.0, QUESTIONS[1], Priority::Normal);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        let by_id = |id: u64| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(
            matches!(by_id(before).disposition, Disposition::Completed(_)),
            "pre-drain submissions are served to completion"
        );
        assert_eq!(
            by_id(after).disposition,
            Disposition::Shed(ShedReason::Draining)
        );
    }

    #[test]
    fn instrumentation_is_bitwise_neutral_and_flights_are_self_contained() {
        let config = ServingConfig {
            queue_bound: Some(2),
            shed_policy: ShedPolicy::RejectNewest,
            default_deadline_ms: 150.0,
        };
        let profiles = || [FaultProfile::uniform(7, 0.2), FaultProfile::uniform(8, 0.2)];
        let load = |rt: &mut ServingRuntime<FlatIndex>| {
            for i in 0..20u32 {
                let priority = match i % 3 {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                };
                rt.submit_at(
                    4.0 * f64::from(i),
                    QUESTIONS[i as usize % QUESTIONS.len()],
                    priority,
                );
            }
            rt.run_until_idle();
            rt.drain_outcomes()
        };
        let mut bare = ServingRuntime::new(guarded(profiles(), FailurePolicy::Abstain), config);
        let obs = hallu_obs::Obs::new();
        let mut instrumented =
            ServingRuntime::new(guarded(profiles(), FailurePolicy::Abstain), config).with_obs(&obs);
        let plain_outcomes = load(&mut bare);
        let obs_outcomes = load(&mut instrumented);
        assert_eq!(
            plain_outcomes, obs_outcomes,
            "observability must not perturb serving decisions"
        );

        // Satellite: every shed flight record is self-contained — it names
        // its reason, the request's priority class, and the queue depth at
        // decision time, without replaying the queue.
        let records = obs.flight_records();
        let sheds: Vec<_> = records
            .iter()
            .filter(|r| r.outcome.starts_with("shed:"))
            .collect();
        assert!(!sheds.is_empty(), "this load must shed");
        for r in &sheds {
            assert!(r.field("shed", "reason").is_some(), "{r:?}");
            assert!(r.field("shed", "priority").is_some(), "{r:?}");
            assert!(r.field("shed", "queue_depth").is_some(), "{r:?}");
        }

        // The registry tally agrees with the outcome structs.
        let snap = obs.metrics_snapshot();
        let stats = ServingStats::from_outcomes(&obs_outcomes);
        assert_eq!(
            snap.total("hallu_serving_outcomes_total") as usize,
            stats.total
        );
        assert_eq!(snap.total("hallu_serving_shed_total") as usize, stats.shed);
        assert_eq!(
            snap.total("hallu_serving_submitted_total") as usize,
            stats.total
        );
        assert_eq!(
            snap.value("hallu_serving_queue_depth", &[]),
            Some(0.0),
            "an idle runtime reports an empty queue"
        );
    }

    #[test]
    fn cached_runtime_matches_uncached_bitwise_and_reports_coalescing() {
        use slm_runtime::{CacheConfig, VerificationCache};
        let config = ServingConfig {
            queue_bound: Some(4),
            shed_policy: ShedPolicy::RejectNewest,
            default_deadline_ms: 400.0,
        };
        let profiles = || [FaultProfile::uniform(7, 0.2), FaultProfile::uniform(8, 0.2)];
        // Duplicate-heavy load: the same two questions over and over, close
        // enough together that duplicates queue behind the request being
        // served.
        let load = |rt: &mut ServingRuntime<FlatIndex>| {
            for i in 0..16u32 {
                rt.submit_at(
                    2.0 * f64::from(i),
                    QUESTIONS[i as usize % 2],
                    Priority::Normal,
                );
            }
            rt.run_until_idle();
            rt.drain_outcomes()
        };
        let mut plain = ServingRuntime::new(guarded(profiles(), FailurePolicy::Abstain), config);
        let obs = hallu_obs::Obs::new();
        let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
        let mut cached = ServingRuntime::new(guarded(profiles(), FailurePolicy::Abstain), config)
            .with_cache(cache)
            .with_obs(&obs);
        let plain_outcomes = load(&mut plain);
        let cached_outcomes = load(&mut cached);
        assert_eq!(
            plain_outcomes, cached_outcomes,
            "the cache must not perturb serving decisions"
        );
        let stats = cached.cache().expect("cache attached").stats();
        assert!(
            stats.hits > 0,
            "repeated questions must hit the cache: {stats:?}"
        );
        let snap = obs.metrics_snapshot();
        let coalesced = snap
            .value("hallu_serving_coalesced_total", &[])
            .unwrap_or(0.0);
        assert!(
            coalesced > 0.0,
            "queued duplicates of a dispatched question must be counted"
        );
    }

    #[test]
    fn outcomes_are_delivered_exactly_once() {
        let mut rt = ServingRuntime::new(healthy(), ServingConfig::default());
        rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        assert_eq!(rt.run_until_idle(), 1);
        assert_eq!(rt.drain_outcomes().len(), 1);
        assert!(rt.drain_outcomes().is_empty(), "no double delivery");
    }

    #[test]
    fn virtual_time_advances_with_simulated_service() {
        let mut rt = ServingRuntime::new(healthy(), ServingConfig::default());
        rt.submit_at(0.0, QUESTIONS[0], Priority::Normal);
        assert_eq!(rt.now_ms(), 0.0);
        rt.run_until_idle();
        let outcomes = rt.drain_outcomes();
        assert!(rt.now_ms() > 0.0, "service must charge virtual time");
        assert_eq!(rt.now_ms(), outcomes[0].finished_at_ms);
        assert_eq!(
            outcomes[0].latency_ms(),
            outcome_telemetry(&outcomes[0]).unwrap().simulated_ms,
            "an unqueued request's latency is exactly its verification cost"
        );
    }
}
