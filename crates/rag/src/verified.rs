//! The guarded QA pipeline: answer, verify, explain — one call.
//!
//! [`VerifiedRagPipeline`] is the downstream-user API the README's
//! `hr_assistant` example assembles by hand: RAG generation (Fig. 2a) with
//! the detection framework (Fig. 2b) bolted on, returning either a served
//! answer or a structured refusal with the suspected hallucination.
//!
//! [`ResilientVerifiedPipeline`] is the fault-tolerant variant: it runs the
//! same guard through [`ResilientDetector`], and a [`FailurePolicy`] knob
//! decides what happens when every verifier is down and the detector
//! abstains — serve unverified (fail-open), block (fail-closed), or surface
//! the abstention to the caller.

use hallu_core::{
    explain, Confidence, HallucinationDetector, ResilienceTelemetry, ResilientDetector, Verdict,
};
use hallu_obs::Obs;
use vectordb::error::VectorDbError;
use vectordb::index::VectorIndex;

use crate::generate::GenerationMode;
use crate::pipeline::{RagAnswer, RagPipeline};

/// Outcome of a guarded question.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardedAnswer {
    /// The answer passed verification.
    Served {
        /// The generated answer and its provenance.
        answer: RagAnswer,
        /// The verification score `s_i`.
        score: f64,
        /// Verdict confidence.
        confidence: Confidence,
    },
    /// The answer was blocked.
    Blocked {
        /// The answer that was withheld (for logging/review).
        answer: RagAnswer,
        /// The verification score `s_i`.
        score: f64,
        /// The sentence most likely hallucinated.
        suspected_sentence: Option<String>,
    },
}

impl GuardedAnswer {
    /// Whether the answer was served.
    pub fn is_served(&self) -> bool {
        matches!(self, GuardedAnswer::Served { .. })
    }

    /// The verification score either way.
    pub fn score(&self) -> f64 {
        match self {
            GuardedAnswer::Served { score, .. } | GuardedAnswer::Blocked { score, .. } => *score,
        }
    }
}

/// RAG + verification under one roof.
pub struct VerifiedRagPipeline<I> {
    rag: RagPipeline<I>,
    detector: HallucinationDetector,
    /// Serve when `s_i >= threshold`.
    pub threshold: f64,
}

impl<I: VectorIndex> VerifiedRagPipeline<I> {
    /// Assemble from a RAG pipeline and a (possibly pre-calibrated) detector.
    pub fn new(rag: RagPipeline<I>, detector: HallucinationDetector, threshold: f64) -> Self {
        Self {
            rag,
            detector,
            threshold,
        }
    }

    /// The wrapped RAG pipeline (ingestion etc.).
    pub fn rag(&self) -> &RagPipeline<I> {
        &self.rag
    }

    /// Warm the detector's Eq. 4 statistics by answering (and discarding)
    /// a list of representative questions.
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn warm_up(&mut self, questions: &[&str]) -> Result<(), VectorDbError> {
        for q in questions {
            let a = self.rag.answer(q, GenerationMode::Correct)?;
            self.detector
                .calibrate(&a.question, &a.context, &a.response);
        }
        Ok(())
    }

    /// Answer a question and verify the answer before serving it.
    ///
    /// The verification also feeds the running Eq. 4 statistics, so the
    /// detector keeps calibrating on live traffic.
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn ask(&mut self, question: &str) -> Result<GuardedAnswer, VectorDbError> {
        // Production mode generates faithfully; hallucinations come from the
        // generator's own failures (simulated upstream), not injected here.
        let answer = self.rag.answer(question, GenerationMode::Correct)?;
        self.ask_with(answer)
    }

    /// Verify an externally produced answer (e.g. from a different LLM).
    ///
    /// # Errors
    /// Never fails today; `Result` keeps the signature uniform with `ask`.
    pub fn ask_with(&mut self, answer: RagAnswer) -> Result<GuardedAnswer, VectorDbError> {
        self.detector
            .calibrate(&answer.question, &answer.context, &answer.response);
        let result = self
            .detector
            .score(&answer.question, &answer.context, &answer.response);
        let verdict = explain(&result, self.threshold);
        Ok(if verdict.accepted {
            GuardedAnswer::Served {
                answer,
                score: result.score,
                confidence: verdict.confidence,
            }
        } else {
            GuardedAnswer::Blocked {
                answer,
                score: result.score,
                suspected_sentence: verdict.weakest_sentence.map(|(s, _)| s),
            }
        })
    }
}

/// What to do with an answer when verification abstains (every verifier
/// failed and no sentence could be scored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Serve the answer unverified. Availability over safety: right for
    /// low-stakes assistants where an unchecked answer beats no answer.
    FailOpen,
    /// Block the answer. Safety over availability: right for high-stakes
    /// domains where serving an unchecked answer is worse than refusing.
    FailClosed,
    /// Surface the abstention as its own outcome and let the caller decide.
    Abstain,
}

/// Outcome of a guarded question under the resilient pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilientAnswer {
    /// Verification ran (possibly degraded) and the answer passed.
    Served {
        /// The generated answer and its provenance.
        answer: RagAnswer,
        /// The verification score `s_i`.
        score: f64,
        /// Verdict confidence.
        confidence: Confidence,
        /// What the fault-tolerant executor did.
        telemetry: ResilienceTelemetry,
    },
    /// Verification ran and the answer was blocked.
    Blocked {
        /// The answer that was withheld (for logging/review).
        answer: RagAnswer,
        /// The verification score `s_i`.
        score: f64,
        /// The sentence most likely hallucinated.
        suspected_sentence: Option<String>,
        /// What the fault-tolerant executor did.
        telemetry: ResilienceTelemetry,
    },
    /// The detector abstained and [`FailurePolicy::FailOpen`] /
    /// [`FailurePolicy::FailClosed`] decided the disposition.
    Unverified {
        /// The answer in question.
        answer: RagAnswer,
        /// `true` under fail-open (answer was served unchecked), `false`
        /// under fail-closed (answer was withheld).
        served: bool,
        /// Why verification produced nothing.
        telemetry: ResilienceTelemetry,
    },
    /// The detector abstained and the policy surfaces that fact: the system
    /// explicitly says "I cannot verify this right now".
    Abstained {
        /// The answer in question (not served).
        answer: RagAnswer,
        /// Why verification produced nothing.
        telemetry: ResilienceTelemetry,
    },
}

impl ResilientAnswer {
    /// Whether the answer reached the user.
    pub fn is_served(&self) -> bool {
        match self {
            Self::Served { .. } => true,
            Self::Unverified { served, .. } => *served,
            Self::Blocked { .. } | Self::Abstained { .. } => false,
        }
    }

    /// Whether verification actually scored the answer.
    pub fn is_verified(&self) -> bool {
        matches!(self, Self::Served { .. } | Self::Blocked { .. })
    }

    /// Execution telemetry, whatever happened.
    pub fn telemetry(&self) -> &ResilienceTelemetry {
        match self {
            Self::Served { telemetry, .. }
            | Self::Blocked { telemetry, .. }
            | Self::Unverified { telemetry, .. }
            | Self::Abstained { telemetry, .. } => telemetry,
        }
    }
}

/// RAG + fault-tolerant verification under one roof.
pub struct ResilientVerifiedPipeline<I> {
    rag: RagPipeline<I>,
    detector: ResilientDetector,
    /// Serve when `s_i >= threshold`.
    pub threshold: f64,
    /// Disposition of answers the detector cannot verify.
    pub policy: FailurePolicy,
    obs: Obs,
}

impl<I: VectorIndex> ResilientVerifiedPipeline<I> {
    /// Assemble from a RAG pipeline and a (possibly pre-calibrated)
    /// resilient detector.
    pub fn new(
        rag: RagPipeline<I>,
        detector: ResilientDetector,
        threshold: f64,
        policy: FailurePolicy,
    ) -> Self {
        Self {
            rag,
            detector,
            threshold,
            policy,
            obs: Obs::off(),
        }
    }

    /// Connect the pipeline (and its detector) to an observability sink:
    /// the detector registers its metric families and starts emitting
    /// spans/flight events, and the guard decision itself (threshold
    /// compare, failure-policy routing) lands in the in-progress flight
    /// record. Scores and verdicts are bitwise unaffected.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.detector.set_obs(obs);
    }

    /// Builder-style [`set_obs`](Self::set_obs).
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// The wrapped RAG pipeline (ingestion etc.).
    pub fn rag(&self) -> &RagPipeline<I> {
        &self.rag
    }

    /// The wrapped resilient detector (cache stats, health, normalizer).
    pub fn detector(&self) -> &ResilientDetector {
        &self.detector
    }

    /// Mutable access to the wrapped detector, for hosts flipping scoring
    /// knobs (e.g. [`DetectorConfig::continuous`]) on an already-built
    /// pipeline. Every knob reachable here is bitwise-neutral to verdicts by
    /// the batch engine's determinism contract; only scheduling changes.
    ///
    /// [`DetectorConfig::continuous`]: hallu_core::DetectorConfig
    pub fn detector_mut(&mut self) -> &mut ResilientDetector {
        &mut self.detector
    }

    /// Attach a shared verification cache to the detector. Scores and
    /// dispositions stay bitwise-identical (cache hits replay exactly what a
    /// recomputation would produce); only wall-clock work is saved.
    pub fn set_cache(&mut self, cache: std::sync::Arc<slm_runtime::VerificationCache>) {
        self.detector.set_cache(cache);
    }

    /// Builder-style [`set_cache`](Self::set_cache).
    #[must_use]
    pub fn with_cache(mut self, cache: std::sync::Arc<slm_runtime::VerificationCache>) -> Self {
        self.set_cache(cache);
        self
    }

    /// Per-model breaker health, in slot order.
    pub fn health(&self) -> Vec<hallu_core::ModelHealth> {
        self.detector.health()
    }

    /// Warm the detector's Eq. 4 statistics by answering (and discarding)
    /// a list of representative questions. Faulty verifier calls are simply
    /// not observed — calibration cannot be poisoned.
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn warm_up(&mut self, questions: &[&str]) -> Result<(), VectorDbError> {
        for q in questions {
            let a = self.rag.answer(q, GenerationMode::Correct)?;
            self.detector
                .calibrate(&a.question, &a.context, &a.response);
        }
        Ok(())
    }

    /// Answer a question and verify the answer before serving it.
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn ask(&mut self, question: &str) -> Result<ResilientAnswer, VectorDbError> {
        let answer = self.rag.answer(question, GenerationMode::Correct)?;
        Ok(self.ask_with(answer))
    }

    /// Answer a batch of questions with batched verification: all answers
    /// are generated up front (generation is deterministic and stateless),
    /// every (answer, sentence, model) cell is prefetched through the batch
    /// engine into the attached cache — coalescing duplicate questions and
    /// repeated sentences across the batch — and then each answer flows
    /// through the exact per-item guard path.
    ///
    /// Bitwise-identical to calling [`ask`](Self::ask) per question in
    /// order: prefetching never touches breakers, the normalizer, or
    /// telemetry, and cache hits replay precisely what the sequential path
    /// would compute. Without a cache this degrades gracefully to the
    /// sequential path (the prefetch is a no-op).
    ///
    /// # Errors
    /// Propagates retrieval failures (before any verification runs).
    pub fn ask_batch(&mut self, questions: &[&str]) -> Result<Vec<ResilientAnswer>, VectorDbError> {
        let answers: Vec<RagAnswer> = questions
            .iter()
            .map(|q| self.rag.answer(q, GenerationMode::Correct))
            .collect::<Result<_, _>>()?;
        let items: Vec<(&str, &str, &str)> = answers
            .iter()
            .map(|a| (a.question.as_str(), a.context.as_str(), a.response.as_str()))
            .collect();
        self.detector.prefetch(&items);
        Ok(answers.into_iter().map(|a| self.ask_with(a)).collect())
    }

    /// [`ask`](Self::ask) with a verification deadline: at most `budget_ms`
    /// of simulated verification time is spent. Sentences the budget cannot
    /// cover are dropped (degrading the verdict to `Partial`), and when no
    /// sentence fits the request resolves through [`FailurePolicy`] exactly
    /// like an all-backends-down abstention. `f64::INFINITY` is bitwise
    /// identical to [`ask`](Self::ask).
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn ask_deadline(
        &mut self,
        question: &str,
        budget_ms: f64,
    ) -> Result<ResilientAnswer, VectorDbError> {
        let answer = self.rag.answer(question, GenerationMode::Correct)?;
        Ok(self.ask_within(answer, budget_ms))
    }

    /// Verify an externally produced answer (e.g. from a different LLM).
    ///
    /// Like [`VerifiedRagPipeline::ask_with`], live traffic keeps feeding
    /// the Eq. 4 statistics (invalid scores are never observed).
    pub fn ask_with(&mut self, answer: RagAnswer) -> ResilientAnswer {
        self.ask_within(answer, f64::INFINITY)
    }

    /// Verify an externally produced answer under a deadline budget
    /// (see [`ask_deadline`](Self::ask_deadline) for the semantics).
    pub fn ask_within(&mut self, answer: RagAnswer, budget_ms: f64) -> ResilientAnswer {
        self.detector
            .calibrate(&answer.question, &answer.context, &answer.response);
        match self.detector.score_within(
            &answer.question,
            &answer.context,
            &answer.response,
            budget_ms,
        ) {
            Verdict::Scored(result) => {
                let verdict = explain(&result, self.threshold);
                if self.obs.enabled() {
                    self.obs.flight(
                        "guard_decision",
                        &[
                            ("score", format!("{:.6}", result.score)),
                            ("threshold", format!("{:.6}", self.threshold)),
                            (
                                "outcome",
                                if verdict.accepted {
                                    "served"
                                } else {
                                    "blocked"
                                }
                                .to_string(),
                            ),
                        ],
                    );
                }
                let telemetry = result
                    .resilience
                    .unwrap_or_else(hallu_core::ResilienceTelemetry::empty);
                if verdict.accepted {
                    ResilientAnswer::Served {
                        answer,
                        score: result.score,
                        confidence: verdict.confidence,
                        telemetry,
                    }
                } else {
                    ResilientAnswer::Blocked {
                        answer,
                        score: result.score,
                        suspected_sentence: verdict.weakest_sentence.map(|(s, _)| s),
                        telemetry,
                    }
                }
            }
            Verdict::Abstain(telemetry) => {
                if self.obs.enabled() {
                    let (policy, outcome) = match self.policy {
                        FailurePolicy::FailOpen => ("fail_open", "served_unverified"),
                        FailurePolicy::FailClosed => ("fail_closed", "blocked_unverified"),
                        FailurePolicy::Abstain => ("abstain", "abstained"),
                    };
                    self.obs.flight(
                        "guard_decision",
                        &[
                            ("policy", policy.to_string()),
                            ("outcome", outcome.to_string()),
                        ],
                    );
                }
                match self.policy {
                    FailurePolicy::FailOpen => ResilientAnswer::Unverified {
                        answer,
                        served: true,
                        telemetry,
                    },
                    FailurePolicy::FailClosed => ResilientAnswer::Unverified {
                        answer,
                        served: false,
                        telemetry,
                    },
                    FailurePolicy::Abstain => ResilientAnswer::Abstained { answer, telemetry },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hallu_core::DetectorConfig;
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
    use slm_runtime::verifier::YesNoVerifier;
    use vectordb::collection::Collection;
    use vectordb::embed::HashingEmbedder;
    use vectordb::flat::FlatIndex;
    use vectordb::metric::Metric;

    fn guarded() -> VerifiedRagPipeline<FlatIndex> {
        let collection = Collection::new(
            Box::new(HashingEmbedder::new(128, 3)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let rag = RagPipeline::new(collection, 7).with_llm(crate::generate::SimulatedLlm::new(2));
        rag.ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
             at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();
        rag.ingest(
            "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
             for three months.",
            "leave",
        )
        .unwrap();
        let detector = HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
                Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
            ],
            DetectorConfig::default(),
        );
        let mut p = VerifiedRagPipeline::new(rag, detector, 0.45);
        p.warm_up(&[
            "From what time does the store operate?",
            "How many days of annual leave per year?",
            "How many shopkeepers run a shop?",
            "Can unused leave be carried over?",
        ])
        .unwrap();
        p
    }

    #[test]
    fn faithful_answers_are_served() {
        let mut p = guarded();
        let outcome = p.ask("From what time does the store operate?").unwrap();
        assert!(outcome.is_served(), "{outcome:?}");
        assert!(outcome.score() >= p.threshold);
    }

    #[test]
    fn injected_hallucinations_are_blocked_with_suspect() {
        let mut p = guarded();
        let bad = p
            .rag
            .answer(
                "From what time does the store operate?",
                GenerationMode::Wrong,
            )
            .unwrap();
        let outcome = p.ask_with(bad).unwrap();
        match outcome {
            GuardedAnswer::Blocked {
                suspected_sentence,
                score,
                ..
            } => {
                assert!(score < p.threshold);
                assert!(suspected_sentence.is_some());
            }
            other => panic!("expected Blocked, got {other:?}"),
        }
    }

    #[test]
    fn scores_accessible_either_way() {
        let mut p = guarded();
        let outcome = p.ask("How many days of annual leave per year?").unwrap();
        assert!((0.0..=1.0).contains(&outcome.score()));
    }

    fn resilient_guarded(
        profiles: [slm_runtime::FaultProfile; 2],
        policy: FailurePolicy,
    ) -> ResilientVerifiedPipeline<FlatIndex> {
        use slm_runtime::{FallibleVerifier, FaultInjector, Reliable};
        let collection = Collection::new(
            Box::new(HashingEmbedder::new(128, 3)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let rag = RagPipeline::new(collection, 7).with_llm(crate::generate::SimulatedLlm::new(2));
        rag.ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
             at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();
        rag.ingest(
            "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
             for three months.",
            "leave",
        )
        .unwrap();
        let [p0, p1] = profiles;
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
            Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
        ];
        let detector =
            hallu_core::ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
        let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, policy);
        p.warm_up(&[
            "From what time does the store operate?",
            "How many days of annual leave per year?",
            "How many shopkeepers run a shop?",
            "Can unused leave be carried over?",
        ])
        .unwrap();
        p
    }

    #[test]
    fn healthy_resilient_pipeline_matches_plain_decisions() {
        use slm_runtime::FaultProfile;
        let mut plain = guarded();
        let mut res = resilient_guarded(
            [FaultProfile::none(1), FaultProfile::none(2)],
            FailurePolicy::Abstain,
        );
        for q in [
            "From what time does the store operate?",
            "How many days of annual leave per year?",
        ] {
            let a = plain.ask(q).unwrap();
            let b = res.ask(q).unwrap();
            assert!(b.is_verified());
            assert_eq!(a.is_served(), b.is_served(), "{q}");
            assert_eq!(
                b.telemetry().degradation,
                hallu_core::DegradationLevel::Full
            );
        }
    }

    /// The full `FailurePolicy` × outcome matrix when every backend is
    /// down: each policy maps the same abstention to exactly one
    /// [`ResilientAnswer`] shape, and no policy fabricates a verified
    /// verdict.
    #[test]
    fn failure_policy_matrix_under_total_outage() {
        use slm_runtime::FaultProfile;
        for (policy, expect_served) in [
            (FailurePolicy::FailOpen, true),
            (FailurePolicy::FailClosed, false),
            (FailurePolicy::Abstain, false),
        ] {
            let mut p = resilient_guarded([FaultProfile::down(1), FaultProfile::down(2)], policy);
            let outcome = p.ask("From what time does the store operate?").unwrap();
            assert_eq!(outcome.is_served(), expect_served, "{policy:?}");
            assert!(!outcome.is_verified(), "{policy:?} cannot verify an outage");
            match (policy, &outcome) {
                (FailurePolicy::FailOpen, ResilientAnswer::Unverified { served: true, .. })
                | (FailurePolicy::FailClosed, ResilientAnswer::Unverified { served: false, .. })
                | (FailurePolicy::Abstain, ResilientAnswer::Abstained { .. }) => {}
                (policy, other) => panic!("wrong disposition for {policy:?}: {other:?}"),
            }
            assert_eq!(
                outcome.telemetry().degradation,
                hallu_core::DegradationLevel::Abstained
            );
        }
    }

    /// The same matrix when the backends are healthy but the request's
    /// deadline budget is already exhausted: the abstention arrives via
    /// deadline skips instead of failures, and each policy routes it to the
    /// same shape as a total outage.
    #[test]
    fn failure_policy_matrix_under_exhausted_deadline() {
        use slm_runtime::FaultProfile;
        for (policy, expect_served) in [
            (FailurePolicy::FailOpen, true),
            (FailurePolicy::FailClosed, false),
            (FailurePolicy::Abstain, false),
        ] {
            let mut p = resilient_guarded([FaultProfile::none(1), FaultProfile::none(2)], policy);
            let answer = p
                .rag
                .answer(
                    "From what time does the store operate?",
                    GenerationMode::Correct,
                )
                .unwrap();
            let outcome = p.ask_within(answer, 0.0);
            assert_eq!(outcome.is_served(), expect_served, "{policy:?}");
            assert!(!outcome.is_verified(), "{policy:?}");
            match (policy, &outcome) {
                (FailurePolicy::FailOpen, ResilientAnswer::Unverified { served: true, .. })
                | (FailurePolicy::FailClosed, ResilientAnswer::Unverified { served: false, .. })
                | (FailurePolicy::Abstain, ResilientAnswer::Abstained { .. }) => {}
                (policy, other) => panic!("wrong disposition for {policy:?}: {other:?}"),
            }
            let telemetry = outcome.telemetry();
            assert!(telemetry.deadline_skips > 0, "{policy:?}: {telemetry:?}");
            assert_eq!(telemetry.attempts, 0, "no verifier was consulted");
        }
    }

    #[test]
    fn total_outage_fail_open_serves_unverified() {
        use slm_runtime::FaultProfile;
        let mut p = resilient_guarded(
            [FaultProfile::down(1), FaultProfile::down(2)],
            FailurePolicy::FailOpen,
        );
        let outcome = p.ask("From what time does the store operate?").unwrap();
        assert!(outcome.is_served());
        assert!(!outcome.is_verified());
        assert!(matches!(
            outcome,
            ResilientAnswer::Unverified { served: true, .. }
        ));
    }

    #[test]
    fn total_outage_fail_closed_blocks() {
        use slm_runtime::FaultProfile;
        let mut p = resilient_guarded(
            [FaultProfile::down(1), FaultProfile::down(2)],
            FailurePolicy::FailClosed,
        );
        let outcome = p.ask("From what time does the store operate?").unwrap();
        assert!(!outcome.is_served());
        assert!(matches!(
            outcome,
            ResilientAnswer::Unverified { served: false, .. }
        ));
    }

    #[test]
    fn total_outage_abstain_policy_surfaces_abstention() {
        use slm_runtime::FaultProfile;
        let mut p = resilient_guarded(
            [FaultProfile::down(1), FaultProfile::down(2)],
            FailurePolicy::Abstain,
        );
        let outcome = p.ask("From what time does the store operate?").unwrap();
        assert!(!outcome.is_served());
        match &outcome {
            ResilientAnswer::Abstained { telemetry, .. } => {
                assert_eq!(
                    telemetry.degradation,
                    hallu_core::DegradationLevel::Abstained
                );
                assert_eq!(telemetry.models_consulted, Vec::<String>::new());
            }
            other => panic!("expected Abstained, got {other:?}"),
        }
    }

    #[test]
    fn ask_batch_matches_sequential_asks_bitwise() {
        use slm_runtime::{CacheConfig, FaultProfile, VerificationCache};
        use std::sync::Arc;
        let questions = [
            "From what time does the store operate?",
            "How many days of annual leave per year?",
            "From what time does the store operate?", // duplicate: coalesced
            "How many shopkeepers run a shop?",
        ];
        let profiles = || [FaultProfile::uniform(21, 0.3), FaultProfile::none(22)];
        let mut sequential = resilient_guarded(profiles(), FailurePolicy::Abstain);
        let mut batched = resilient_guarded(profiles(), FailurePolicy::Abstain);
        let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
        batched.set_cache(Arc::clone(&cache));

        let want: Vec<ResilientAnswer> = questions
            .iter()
            .map(|q| sequential.ask(q).unwrap())
            .collect();
        let got = batched.ask_batch(&questions).unwrap();
        assert_eq!(want, got, "batched+cached answers must match bitwise");
        assert_eq!(
            sequential.detector().normalizer(),
            batched.detector().normalizer(),
            "live-calibration z-score state must match bitwise"
        );
        assert!(
            cache.stats().hits > 0,
            "duplicate question + calibrate/score overlap must hit the cache"
        );
    }

    #[test]
    fn one_model_down_still_verifies() {
        use slm_runtime::FaultProfile;
        let mut p = resilient_guarded(
            [FaultProfile::none(1), FaultProfile::down(2)],
            FailurePolicy::Abstain,
        );
        let outcome = p.ask("From what time does the store operate?").unwrap();
        assert!(outcome.is_verified(), "one live model must still verify");
        assert_eq!(outcome.telemetry().models_consulted, ["qwen2-1.5b-sim"]);
        let health = p.health();
        assert!(health[1].failures > 0);
    }
}
