//! The guarded QA pipeline: answer, verify, explain — one call.
//!
//! [`VerifiedRagPipeline`] is the downstream-user API the README's
//! `hr_assistant` example assembles by hand: RAG generation (Fig. 2a) with
//! the detection framework (Fig. 2b) bolted on, returning either a served
//! answer or a structured refusal with the suspected hallucination.

use hallu_core::{explain, Confidence, HallucinationDetector};
use vectordb::error::VectorDbError;
use vectordb::index::VectorIndex;

use crate::generate::GenerationMode;
use crate::pipeline::{RagAnswer, RagPipeline};

/// Outcome of a guarded question.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardedAnswer {
    /// The answer passed verification.
    Served {
        /// The generated answer and its provenance.
        answer: RagAnswer,
        /// The verification score `s_i`.
        score: f64,
        /// Verdict confidence.
        confidence: Confidence,
    },
    /// The answer was blocked.
    Blocked {
        /// The answer that was withheld (for logging/review).
        answer: RagAnswer,
        /// The verification score `s_i`.
        score: f64,
        /// The sentence most likely hallucinated.
        suspected_sentence: Option<String>,
    },
}

impl GuardedAnswer {
    /// Whether the answer was served.
    pub fn is_served(&self) -> bool {
        matches!(self, GuardedAnswer::Served { .. })
    }

    /// The verification score either way.
    pub fn score(&self) -> f64 {
        match self {
            GuardedAnswer::Served { score, .. } | GuardedAnswer::Blocked { score, .. } => *score,
        }
    }
}

/// RAG + verification under one roof.
pub struct VerifiedRagPipeline<I> {
    rag: RagPipeline<I>,
    detector: HallucinationDetector,
    /// Serve when `s_i >= threshold`.
    pub threshold: f64,
}

impl<I: VectorIndex> VerifiedRagPipeline<I> {
    /// Assemble from a RAG pipeline and a (possibly pre-calibrated) detector.
    pub fn new(rag: RagPipeline<I>, detector: HallucinationDetector, threshold: f64) -> Self {
        Self { rag, detector, threshold }
    }

    /// The wrapped RAG pipeline (ingestion etc.).
    pub fn rag(&self) -> &RagPipeline<I> {
        &self.rag
    }

    /// Warm the detector's Eq. 4 statistics by answering (and discarding)
    /// a list of representative questions.
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn warm_up(&mut self, questions: &[&str]) -> Result<(), VectorDbError> {
        for q in questions {
            let a = self.rag.answer(q, GenerationMode::Correct)?;
            self.detector.calibrate(&a.question, &a.context, &a.response);
        }
        Ok(())
    }

    /// Answer a question and verify the answer before serving it.
    ///
    /// The verification also feeds the running Eq. 4 statistics, so the
    /// detector keeps calibrating on live traffic.
    ///
    /// # Errors
    /// Propagates retrieval failures.
    pub fn ask(&mut self, question: &str) -> Result<GuardedAnswer, VectorDbError> {
        // Production mode generates faithfully; hallucinations come from the
        // generator's own failures (simulated upstream), not injected here.
        let answer = self.rag.answer(question, GenerationMode::Correct)?;
        self.ask_with(answer)
    }

    /// Verify an externally produced answer (e.g. from a different LLM).
    ///
    /// # Errors
    /// Never fails today; `Result` keeps the signature uniform with `ask`.
    pub fn ask_with(&mut self, answer: RagAnswer) -> Result<GuardedAnswer, VectorDbError> {
        self.detector.calibrate(&answer.question, &answer.context, &answer.response);
        let result = self.detector.score(&answer.question, &answer.context, &answer.response);
        let verdict = explain(&result, self.threshold);
        Ok(if verdict.accepted {
            GuardedAnswer::Served {
                answer,
                score: result.score,
                confidence: verdict.confidence,
            }
        } else {
            GuardedAnswer::Blocked {
                answer,
                score: result.score,
                suspected_sentence: verdict.weakest_sentence.map(|(s, _)| s),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hallu_core::DetectorConfig;
    use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
    use slm_runtime::verifier::YesNoVerifier;
    use vectordb::collection::Collection;
    use vectordb::embed::HashingEmbedder;
    use vectordb::flat::FlatIndex;
    use vectordb::metric::Metric;

    fn guarded() -> VerifiedRagPipeline<FlatIndex> {
        let collection = Collection::new(
            Box::new(HashingEmbedder::new(128, 3)),
            FlatIndex::new(128, Metric::Cosine),
        );
        let rag = RagPipeline::new(collection, 7).with_llm(crate::generate::SimulatedLlm::new(2));
        rag.ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
             at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();
        rag.ingest(
            "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
             for three months.",
            "leave",
        )
        .unwrap();
        let detector = HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
                Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
            ],
            DetectorConfig::default(),
        );
        let mut p = VerifiedRagPipeline::new(rag, detector, 0.45);
        p.warm_up(&[
            "From what time does the store operate?",
            "How many days of annual leave per year?",
            "How many shopkeepers run a shop?",
            "Can unused leave be carried over?",
        ])
        .unwrap();
        p
    }

    #[test]
    fn faithful_answers_are_served() {
        let mut p = guarded();
        let outcome = p.ask("From what time does the store operate?").unwrap();
        assert!(outcome.is_served(), "{outcome:?}");
        assert!(outcome.score() >= p.threshold);
    }

    #[test]
    fn injected_hallucinations_are_blocked_with_suspect() {
        let mut p = guarded();
        let bad = p
            .rag
            .answer("From what time does the store operate?", GenerationMode::Wrong)
            .unwrap();
        let outcome = p.ask_with(bad).unwrap();
        match outcome {
            GuardedAnswer::Blocked { suspected_sentence, score, .. } => {
                assert!(score < p.threshold);
                assert!(suspected_sentence.is_some());
            }
            other => panic!("expected Blocked, got {other:?}"),
        }
    }

    #[test]
    fn scores_accessible_either_way() {
        let mut p = guarded();
        let outcome = p.ask("How many days of annual leave per year?").unwrap();
        assert!((0.0..=1.0).contains(&outcome.score()));
    }
}
