//! Causal multi-head attention with grouped-query KV sharing.

use tensor::nn::softmax_inplace;
use tensor::ops::axpy;
use tensor::{Linear, Matrix};

use crate::config::ModelConfig;
use crate::kv::KvStore;
use crate::rope::RopeTable;
use crate::weights::LayerView;

/// Copy keys for positions `0..total` into a transposed layout: `total`
/// contiguous columns per key dimension (`kt[d * total + t]`). One pass over
/// the cache, shared by every head and query row afterwards.
fn transpose_keys<C: KvStore>(cache: &C, layer: usize, total: usize, kv_dim: usize) -> Vec<f32> {
    let mut kt = vec![0.0f32; kv_dim * total];
    for t in 0..total {
        let key = cache.key(layer, t);
        for (d, &kv) in key.iter().enumerate() {
            kt[d * total + t] = kv;
        }
    }
    kt
}

/// Scaled causal scores for one query head over positions `0..width`,
/// reading the transposed key buffer so the hot loops run contiguously over
/// positions instead of strided over head dimensions.
///
/// Per position this computes exactly the 4-lane reduction of
/// [`tensor::ops::dot`] — lane `l` accumulates dimensions `4c + l` in
/// ascending chunk order, the lanes combine as `((s0 + s1) + s2) + s3`, the
/// tail dimensions add sequentially, and the scale multiplies last — so
/// vectorizing across positions changes no output bit versus the per-position
/// `dot` walk it replaces.
#[allow(clippy::too_many_arguments)]
fn head_scores_transposed(
    head_dim: usize,
    q_head: &[f32],
    kt: &[f32],
    total: usize,
    kv_head: usize,
    scale: f32,
    acc: &mut [f32],
    out: &mut [f32],
) {
    let width = out.len();
    let chunks = head_dim / 4;
    let kv_off = kv_head * head_dim;
    let kt_row = |d: usize| &kt[(kv_off + d) * total..(kv_off + d) * total + width];
    let (a0, rest) = acc.split_at_mut(total);
    let (a1, rest) = rest.split_at_mut(total);
    let (a2, a3) = rest.split_at_mut(total);
    let (a0, a1, a2, a3) = (
        &mut a0[..width],
        &mut a1[..width],
        &mut a2[..width],
        &mut a3[..width],
    );
    a0.fill(0.0);
    a1.fill(0.0);
    a2.fill(0.0);
    a3.fill(0.0);
    for c in 0..chunks {
        let base = 4 * c;
        axpy(q_head[base], kt_row(base), a0);
        axpy(q_head[base + 1], kt_row(base + 1), a1);
        axpy(q_head[base + 2], kt_row(base + 2), a2);
        axpy(q_head[base + 3], kt_row(base + 3), a3);
    }
    for (((o, &s0), (&s1, &s2)), &s3) in out
        .iter_mut()
        .zip(a0.iter())
        .zip(a1.iter().zip(a2.iter()))
        .zip(a3.iter())
    {
        *o = ((s0 + s1) + s2) + s3;
    }
    for (d, &q) in q_head.iter().enumerate().take(head_dim).skip(chunks * 4) {
        axpy(q, kt_row(d), out);
    }
    for s in out.iter_mut() {
        *s *= scale;
    }
}

/// One attention step for a single token at position `pos` (== `cache.len()`).
///
/// `x` is the normalized hidden state of the current token. Keys/values for
/// the token are appended to `cache` (the caller advances the cache after all
/// layers ran). Returns the attention output after the `wo` projection.
///
/// Generic over [`KvStore`], so contiguous and paged caches run the exact
/// same arithmetic in the exact same order — the structural basis of the
/// paged-parity suite. Generic over [`LayerView`], so the f32 and int8
/// engines share this exact attention core: only the four projections go
/// through the precision-specific [`Linear`] kernels, while RoPE, the causal
/// score/softmax/weighted-sum loop, and the KV cache stay f32.
pub fn attention_step<C: KvStore, L: LayerView>(
    cfg: &ModelConfig,
    weights: &L,
    rope: &RopeTable,
    cache: &mut C,
    layer: usize,
    x: &[f32],
) -> Vec<f32> {
    let head_dim = cfg.head_dim();
    let pos = cache.len();

    // Project.
    let mut q = weights.wq().apply(x); // n_heads * head_dim
    let mut k = weights.wk().apply(x); // n_kv_heads * head_dim
    let v = weights.wv().apply(x);

    // Rotate queries and keys.
    rope.apply_all_heads(&mut q, pos);
    rope.apply_all_heads(&mut k, pos);

    // Store this position's K/V.
    cache.write(layer, &k, &v);

    // Attend: causal, so positions 0..=pos. Loops run position-outer so each
    // cached K/V row is fetched once and shared by every head — the per-head
    // dots, softmaxes, and ascending-position accumulations are independent
    // operations, so this ordering is bit-identical to a head-outer walk.
    let scale = 1.0 / (head_dim as f32).sqrt();
    let group = cfg.group_size();
    let total = pos + 1;
    let kt = transpose_keys(cache, layer, total, cfg.n_kv_heads * head_dim);
    let mut acc = vec![0.0f32; 4 * total];
    let mut out = vec![0.0f32; cfg.hidden];
    let mut scores = vec![0.0f32; cfg.n_heads * total];
    for (head, head_scores) in scores.chunks_mut(total).enumerate() {
        let q_head = &q[head * head_dim..(head + 1) * head_dim];
        head_scores_transposed(
            head_dim,
            q_head,
            &kt,
            total,
            head / group,
            scale,
            &mut acc,
            head_scores,
        );
        softmax_inplace(head_scores);
    }
    for t in 0..total {
        let value = cache.value(layer, t);
        for head in 0..cfg.n_heads {
            let kv_head = head / group;
            let v_t = &value[kv_head * head_dim..(kv_head + 1) * head_dim];
            let out_head = &mut out[head * head_dim..(head + 1) * head_dim];
            axpy(scores[head * total + t], v_t, out_head);
        }
    }

    weights.wo().apply(&out)
}

/// Multi-token attention over a block of `xs.rows()` normalized hidden states
/// occupying positions `cache.len()..cache.len() + xs.rows()`.
///
/// The Q/K/V and output projections run as blocked GEMMs over the whole block
/// ([`Linear::apply_block`] rows are bit-identical to [`Linear::apply`]); the causal
/// score/softmax/weighted-sum core runs per row in exactly the order
/// [`attention_step`] uses, so row `i` of the result carries the same bits the
/// sequential path would produce at position `cache.len() + i`.
///
/// K/V rows for the block are *staged* via [`KvStore::write_at`]; the caller
/// commits them with [`KvStore::advance_by`] once every layer has run.
pub fn attention_block<C: KvStore, L: LayerView>(
    cfg: &ModelConfig,
    weights: &L,
    rope: &RopeTable,
    cache: &mut C,
    layer: usize,
    xs: &Matrix,
) -> Matrix {
    let head_dim = cfg.head_dim();
    let block = xs.rows();
    let start = cache.len();

    // Project the whole block at once.
    let mut q = weights.wq().apply_block(xs);
    let mut k = weights.wk().apply_block(xs);
    let v = weights.wv().apply_block(xs);

    // Rotate and stage K/V for every position in the block.
    for i in 0..block {
        rope.apply_all_heads(q.row_mut(i), start + i);
        rope.apply_all_heads(k.row_mut(i), start + i);
        cache.write_at(layer, start + i, k.row(i), v.row(i));
    }

    // Causal attention per row: position start + i sees 0..=start + i, which
    // includes the staged rows of this block that precede it.
    // Same position-contiguous score core as [`attention_step`]: keys are
    // transposed once for the whole block, each head's causal score row is
    // computed with the bit-exact vectorized `dot` replacement, and the
    // weighted value sum walks positions in ascending order per head.
    let scale = 1.0 / (head_dim as f32).sqrt();
    let group = cfg.group_size();
    let total = start + block;
    let kt = transpose_keys(cache, layer, total, cfg.n_kv_heads * head_dim);
    let mut acc = vec![0.0f32; 4 * total];
    let mut out = Matrix::zeros(block, cfg.hidden);
    let mut scores = vec![0.0f32; cfg.n_heads * total];
    for i in 0..block {
        let pos = start + i;
        let width = pos + 1;
        let qrow = q.row(i);
        for (head, head_scores) in scores.chunks_mut(total).enumerate() {
            let q_head = &qrow[head * head_dim..(head + 1) * head_dim];
            head_scores_transposed(
                head_dim,
                q_head,
                &kt,
                total,
                head / group,
                scale,
                &mut acc,
                &mut head_scores[..width],
            );
            softmax_inplace(&mut head_scores[..width]);
        }
        let out_row = out.row_mut(i);
        for t in 0..width {
            let value = cache.value(layer, t);
            for head in 0..cfg.n_heads {
                let kv_head = head / group;
                let v_t = &value[kv_head * head_dim..(kv_head + 1) * head_dim];
                let out_head = &mut out_row[head * head_dim..(head + 1) * head_dim];
                axpy(scores[head * total + t], v_t, out_head);
            }
        }
    }

    weights.wo().apply_block(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvCache;
    use crate::weights::ModelWeights;
    use tensor::ops::vecmat;

    fn setup() -> (ModelConfig, ModelWeights, RopeTable) {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 7);
        let rope = RopeTable::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        (cfg, w, rope)
    }

    #[test]
    fn output_has_hidden_dim() {
        let (cfg, w, rope) = setup();
        let mut cache = KvCache::new(
            cfg.n_layers,
            cfg.max_seq_len,
            cfg.n_kv_heads * cfg.head_dim(),
        );
        let x = vec![0.1; cfg.hidden];
        let out = attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x);
        assert_eq!(out.len(), cfg.hidden);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        // With one position the attention weights are [1.0], so the output is
        // exactly wo·(v broadcast over heads).
        let (cfg, w, rope) = setup();
        let mut cache = KvCache::new(
            cfg.n_layers,
            cfg.max_seq_len,
            cfg.n_kv_heads * cfg.head_dim(),
        );
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 * 0.13).sin()).collect();
        let out = attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x);

        let v = vecmat(&x, &w.layers[0].wv);
        let head_dim = cfg.head_dim();
        let mut expected_pre = vec![0.0; cfg.hidden];
        for head in 0..cfg.n_heads {
            let kv_head = head / cfg.group_size();
            expected_pre[head * head_dim..(head + 1) * head_dim]
                .copy_from_slice(&v[kv_head * head_dim..(kv_head + 1) * head_dim]);
        }
        let expected = vecmat(&expected_pre, &w.layers[0].wo);
        for (g, e) in out.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-5, "{g} vs {e}");
        }
    }

    #[test]
    fn later_tokens_see_earlier_context() {
        let (cfg, w, rope) = setup();
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();

        // Same final token, different first tokens → different outputs.
        let run = |first: f32| {
            let mut cache = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
            let x1 = vec![first; cfg.hidden];
            attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x1);
            cache.advance();
            let x2 = vec![0.2; cfg.hidden];
            attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x2)
        };
        let a = run(0.5);
        let b = run(-0.5);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            diff > 1e-4,
            "second token's output must depend on the first token"
        );
    }

    #[test]
    fn block_is_bit_identical_to_sequential_steps() {
        // Parity core for the GEMM prefill: attention_block must reproduce
        // attention_step exactly, including when the block starts mid-sequence.
        let (cfg, w, rope) = setup();
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        let tokens: Vec<Vec<f32>> = (0..6)
            .map(|t| {
                (0..cfg.hidden)
                    .map(|i| ((t * 17 + i * 5) % 13) as f32 * 0.11 - 0.6)
                    .collect()
            })
            .collect();

        for split in [0usize, 1, 3] {
            let mut seq_cache = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
            let mut blk_cache = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);

            // Shared warm-up prefix processed token-at-a-time in both caches.
            for x in &tokens[..split] {
                let a = attention_step(&cfg, &w.layers[0], &rope, &mut seq_cache, 0, x);
                let b = attention_step(&cfg, &w.layers[0], &rope, &mut blk_cache, 0, x);
                assert_eq!(a, b);
                seq_cache.advance();
                blk_cache.advance();
            }

            let seq_outs: Vec<Vec<f32>> = tokens[split..]
                .iter()
                .map(|x| {
                    let o = attention_step(&cfg, &w.layers[0], &rope, &mut seq_cache, 0, x);
                    seq_cache.advance();
                    o
                })
                .collect();

            let block = tokens.len() - split;
            let xs = Matrix::from_fn(block, cfg.hidden, |r, c| tokens[split + r][c]);
            let blk_out = attention_block(&cfg, &w.layers[0], &rope, &mut blk_cache, 0, &xs);
            blk_cache.advance_by(block);

            for (i, seq) in seq_outs.iter().enumerate() {
                assert_eq!(blk_out.row(i), seq.as_slice(), "split {split} row {i}");
            }
            // Staged K/V must match what the sequential path committed.
            for t in 0..tokens.len() {
                assert_eq!(seq_cache.key(0, t), blk_cache.key(0, t), "key pos {t}");
                assert_eq!(
                    seq_cache.value(0, t),
                    blk_cache.value(0, t),
                    "value pos {t}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (cfg, w, rope) = setup();
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        let x = vec![0.3; cfg.hidden];
        let mut c1 = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
        let mut c2 = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
        let a = attention_step(&cfg, &w.layers[0], &rope, &mut c1, 0, &x);
        let b = attention_step(&cfg, &w.layers[0], &rope, &mut c2, 0, &x);
        assert_eq!(a, b);
    }
}
