//! Causal multi-head attention with grouped-query KV sharing.

use tensor::nn::softmax_inplace;
use tensor::ops::{axpy, dot, matmul, vecmat};
use tensor::Matrix;

use crate::config::ModelConfig;
use crate::kv::KvStore;
use crate::rope::RopeTable;
use crate::weights::LayerWeights;

/// One attention step for a single token at position `pos` (== `cache.len()`).
///
/// `x` is the normalized hidden state of the current token. Keys/values for
/// the token are appended to `cache` (the caller advances the cache after all
/// layers ran). Returns the attention output after the `wo` projection.
///
/// Generic over [`KvStore`], so contiguous and paged caches run the exact
/// same arithmetic in the exact same order — the structural basis of the
/// paged-parity suite.
pub fn attention_step<C: KvStore>(
    cfg: &ModelConfig,
    weights: &LayerWeights,
    rope: &RopeTable,
    cache: &mut C,
    layer: usize,
    x: &[f32],
) -> Vec<f32> {
    let head_dim = cfg.head_dim();
    let pos = cache.len();

    // Project.
    let mut q = vecmat(x, &weights.wq); // n_heads * head_dim
    let mut k = vecmat(x, &weights.wk); // n_kv_heads * head_dim
    let v = vecmat(x, &weights.wv);

    // Rotate queries and keys.
    rope.apply_all_heads(&mut q, pos);
    rope.apply_all_heads(&mut k, pos);

    // Store this position's K/V.
    cache.write(layer, &k, &v);

    // Attend: causal, so positions 0..=pos.
    let scale = 1.0 / (head_dim as f32).sqrt();
    let group = cfg.group_size();
    let mut out = vec![0.0f32; cfg.hidden];
    let mut scores = vec![0.0f32; pos + 1];
    for head in 0..cfg.n_heads {
        let kv_head = head / group;
        let q_head = &q[head * head_dim..(head + 1) * head_dim];
        for (t, score) in scores.iter_mut().enumerate() {
            let k_t = &cache.key(layer, t)[kv_head * head_dim..(kv_head + 1) * head_dim];
            *score = dot(q_head, k_t) * scale;
        }
        softmax_inplace(&mut scores);
        let out_head = &mut out[head * head_dim..(head + 1) * head_dim];
        for (t, &w) in scores.iter().enumerate() {
            let v_t = &cache.value(layer, t)[kv_head * head_dim..(kv_head + 1) * head_dim];
            axpy(w, v_t, out_head);
        }
    }

    vecmat(&out, &weights.wo)
}

/// Multi-token attention over a block of `xs.rows()` normalized hidden states
/// occupying positions `cache.len()..cache.len() + xs.rows()`.
///
/// The Q/K/V and output projections run as blocked GEMMs over the whole block
/// ([`matmul`] rows are bit-identical to [`vecmat`]); the causal
/// score/softmax/weighted-sum core runs per row in exactly the order
/// [`attention_step`] uses, so row `i` of the result carries the same bits the
/// sequential path would produce at position `cache.len() + i`.
///
/// K/V rows for the block are *staged* via [`KvStore::write_at`]; the caller
/// commits them with [`KvStore::advance_by`] once every layer has run.
pub fn attention_block<C: KvStore>(
    cfg: &ModelConfig,
    weights: &LayerWeights,
    rope: &RopeTable,
    cache: &mut C,
    layer: usize,
    xs: &Matrix,
) -> Matrix {
    let head_dim = cfg.head_dim();
    let block = xs.rows();
    let start = cache.len();

    // Project the whole block at once.
    let mut q = matmul(xs, &weights.wq);
    let mut k = matmul(xs, &weights.wk);
    let v = matmul(xs, &weights.wv);

    // Rotate and stage K/V for every position in the block.
    for i in 0..block {
        rope.apply_all_heads(q.row_mut(i), start + i);
        rope.apply_all_heads(k.row_mut(i), start + i);
        cache.write_at(layer, start + i, k.row(i), v.row(i));
    }

    // Causal attention per row: position start + i sees 0..=start + i, which
    // includes the staged rows of this block that precede it.
    let scale = 1.0 / (head_dim as f32).sqrt();
    let group = cfg.group_size();
    let mut out = Matrix::zeros(block, cfg.hidden);
    let mut scores = vec![0.0f32; start + block];
    for i in 0..block {
        let pos = start + i;
        let row_scores = &mut scores[..pos + 1];
        for head in 0..cfg.n_heads {
            let kv_head = head / group;
            let q_head = &q.row(i)[head * head_dim..(head + 1) * head_dim];
            for (t, score) in row_scores.iter_mut().enumerate() {
                let k_t = &cache.key(layer, t)[kv_head * head_dim..(kv_head + 1) * head_dim];
                *score = dot(q_head, k_t) * scale;
            }
            softmax_inplace(row_scores);
            let out_head = &mut out.row_mut(i)[head * head_dim..(head + 1) * head_dim];
            for (t, &w) in row_scores.iter().enumerate() {
                let v_t = &cache.value(layer, t)[kv_head * head_dim..(kv_head + 1) * head_dim];
                axpy(w, v_t, out_head);
            }
        }
    }

    matmul(&out, &weights.wo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvCache;
    use crate::weights::ModelWeights;

    fn setup() -> (ModelConfig, ModelWeights, RopeTable) {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 7);
        let rope = RopeTable::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        (cfg, w, rope)
    }

    #[test]
    fn output_has_hidden_dim() {
        let (cfg, w, rope) = setup();
        let mut cache = KvCache::new(
            cfg.n_layers,
            cfg.max_seq_len,
            cfg.n_kv_heads * cfg.head_dim(),
        );
        let x = vec![0.1; cfg.hidden];
        let out = attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x);
        assert_eq!(out.len(), cfg.hidden);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        // With one position the attention weights are [1.0], so the output is
        // exactly wo·(v broadcast over heads).
        let (cfg, w, rope) = setup();
        let mut cache = KvCache::new(
            cfg.n_layers,
            cfg.max_seq_len,
            cfg.n_kv_heads * cfg.head_dim(),
        );
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 * 0.13).sin()).collect();
        let out = attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x);

        let v = vecmat(&x, &w.layers[0].wv);
        let head_dim = cfg.head_dim();
        let mut expected_pre = vec![0.0; cfg.hidden];
        for head in 0..cfg.n_heads {
            let kv_head = head / cfg.group_size();
            expected_pre[head * head_dim..(head + 1) * head_dim]
                .copy_from_slice(&v[kv_head * head_dim..(kv_head + 1) * head_dim]);
        }
        let expected = vecmat(&expected_pre, &w.layers[0].wo);
        for (g, e) in out.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-5, "{g} vs {e}");
        }
    }

    #[test]
    fn later_tokens_see_earlier_context() {
        let (cfg, w, rope) = setup();
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();

        // Same final token, different first tokens → different outputs.
        let run = |first: f32| {
            let mut cache = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
            let x1 = vec![first; cfg.hidden];
            attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x1);
            cache.advance();
            let x2 = vec![0.2; cfg.hidden];
            attention_step(&cfg, &w.layers[0], &rope, &mut cache, 0, &x2)
        };
        let a = run(0.5);
        let b = run(-0.5);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            diff > 1e-4,
            "second token's output must depend on the first token"
        );
    }

    #[test]
    fn block_is_bit_identical_to_sequential_steps() {
        // Parity core for the GEMM prefill: attention_block must reproduce
        // attention_step exactly, including when the block starts mid-sequence.
        let (cfg, w, rope) = setup();
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        let tokens: Vec<Vec<f32>> = (0..6)
            .map(|t| {
                (0..cfg.hidden)
                    .map(|i| ((t * 17 + i * 5) % 13) as f32 * 0.11 - 0.6)
                    .collect()
            })
            .collect();

        for split in [0usize, 1, 3] {
            let mut seq_cache = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
            let mut blk_cache = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);

            // Shared warm-up prefix processed token-at-a-time in both caches.
            for x in &tokens[..split] {
                let a = attention_step(&cfg, &w.layers[0], &rope, &mut seq_cache, 0, x);
                let b = attention_step(&cfg, &w.layers[0], &rope, &mut blk_cache, 0, x);
                assert_eq!(a, b);
                seq_cache.advance();
                blk_cache.advance();
            }

            let seq_outs: Vec<Vec<f32>> = tokens[split..]
                .iter()
                .map(|x| {
                    let o = attention_step(&cfg, &w.layers[0], &rope, &mut seq_cache, 0, x);
                    seq_cache.advance();
                    o
                })
                .collect();

            let block = tokens.len() - split;
            let xs = Matrix::from_fn(block, cfg.hidden, |r, c| tokens[split + r][c]);
            let blk_out = attention_block(&cfg, &w.layers[0], &rope, &mut blk_cache, 0, &xs);
            blk_cache.advance_by(block);

            for (i, seq) in seq_outs.iter().enumerate() {
                assert_eq!(blk_out.row(i), seq.as_slice(), "split {split} row {i}");
            }
            // Staged K/V must match what the sequential path committed.
            for t in 0..tokens.len() {
                assert_eq!(seq_cache.key(0, t), blk_cache.key(0, t), "key pos {t}");
                assert_eq!(
                    seq_cache.value(0, t),
                    blk_cache.value(0, t),
                    "value pos {t}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (cfg, w, rope) = setup();
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        let x = vec![0.3; cfg.hidden];
        let mut c1 = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
        let mut c2 = KvCache::new(cfg.n_layers, cfg.max_seq_len, kv_dim);
        let a = attention_step(&cfg, &w.layers[0], &rope, &mut c1, 0, &x);
        let b = attention_step(&cfg, &w.layers[0], &rope, &mut c2, 0, &x);
        assert_eq!(a, b);
    }
}
