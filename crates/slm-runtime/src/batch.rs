//! Batched multi-model scoring: deterministic fan-out with an ordered merge.
//!
//! The paper's hot path (Eq. 2–6) scores every sentence of every response
//! with every SLM in the ensemble, so an N-response workload is a flat list
//! of (model, question, context, sentence) probe jobs — most of them
//! near-duplicates. [`BatchEngine`] turns that list into per-model batches
//! ([`BatchEngine::plan`]), coalesces exact-duplicate jobs so each unique
//! cell is evaluated once, and executes the unique jobs on a
//! work-partitioned pool of scoped threads.
//!
//! **Determinism contract.** The engine never changes *what* is computed,
//! only *where*: results are written into a slot array indexed by submission
//! position (the ordered merge), so the output vector is bitwise-identical to
//! evaluating jobs one by one in submission order — provided the evaluator
//! is a pure function of the job. That is exactly the contract
//! [`crate::fallible::FallibleVerifier::try_p_yes_attempt`] provides; probe
//! episodes built on it are safe to batch, reorder across workers, coalesce,
//! and memoize (see [`crate::cache`]) without the ensemble ever observing a
//! difference. Worker count affects wall-clock time only, never output bits.

use crate::verifier::VerificationRequest;

/// The result of one probe episode (a retry loop around a fallible verifier)
/// for a single (model, sentence) cell.
///
/// This is the unit the batch engine evaluates and the verification cache
/// memoizes. All fields are pure functions of the cell under the
/// episode-purity contract, including `simulated_ms` — replaying a cached
/// outcome reproduces the virtual-time cost of recomputing it, which keeps
/// deadline and shedding decisions downstream bitwise-identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeOutcome {
    /// The probability the episode settled on, if any attempt succeeded.
    /// May be garbage (non-finite, outside `[0, 1]`); the scoring layer
    /// quarantines such values, and the cache refuses to memoize them.
    pub score: Option<f64>,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u64,
    /// Retries after retryable errors.
    pub retries: u64,
    /// Attempts that exceeded the latency budget.
    pub timeouts: u64,
    /// Total simulated milliseconds consumed: latencies, timeout costs,
    /// backoff sleeps.
    pub simulated_ms: f64,
}

impl ProbeOutcome {
    /// Whether this outcome is a valid, memoizable verification score: an
    /// episode that settled on a finite probability in `[0, 1]`. Failed and
    /// garbage episodes are not cacheable — re-probing them is byte-identical
    /// anyway (episode purity), and refusing them keeps fault payloads from
    /// ever poisoning the cache.
    pub fn is_cacheable(&self) -> bool {
        matches!(self.score, Some(p) if p.is_finite() && (0.0..=1.0).contains(&p))
    }
}

/// One pending verification job: which model slot should score which
/// (question, context, sentence) cell.
#[derive(Debug, Clone)]
pub struct BatchJob<'a> {
    /// Index of the model in the caller's verifier ensemble.
    pub model: usize,
    /// The cell to score.
    pub request: VerificationRequest<'a>,
}

impl<'a> BatchJob<'a> {
    /// Build a job.
    pub fn new(model: usize, request: VerificationRequest<'a>) -> Self {
        Self { model, request }
    }

    /// The dedup identity of this job: two jobs with equal identity would
    /// produce bitwise-equal outcomes under a pure evaluator, so only the
    /// first needs to run.
    fn identity(&self) -> (usize, &'a str, &'a str, &'a str) {
        (
            self.model,
            self.request.question,
            self.request.context,
            self.request.response,
        )
    }
}

/// The jobs assigned to one model, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelBatch {
    /// Model slot this batch targets.
    pub model: usize,
    /// Indices into the submitted job list, ascending.
    pub jobs: Vec<usize>,
}

/// The jobs of one model sharing one `(question, context)` prefix, in
/// submission order. This is the granularity the shared-prefix KV cache
/// ([`crate::prefix::PrefixCache`]) exploits: every job in a group prefills
/// the same prompt prefix, so evaluating a group contiguously makes its first
/// job build the snapshot and the rest fork it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixGroup {
    /// Model slot all jobs in this group target.
    pub model: usize,
    /// Indices into the submitted job list, ascending.
    pub jobs: Vec<usize>,
}

/// What one [`BatchEngine::run`] call did, for telemetry and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that were actually evaluated after coalescing duplicates.
    pub unique_jobs: usize,
    /// Per-model batches formed.
    pub batches: usize,
    /// Jobs answered by copying another job's result (`jobs - unique_jobs`).
    pub coalesced: usize,
    /// Worker threads the unique jobs were partitioned across.
    pub workers: usize,
    /// Distinct (model, question, context) prefix groups in the plan.
    pub prefix_groups: usize,
}

/// Deterministic batched executor for verification jobs.
///
/// See the module docs for the determinism contract. The engine is
/// configuration-only (no queues, no state), so it is cheap to construct per
/// call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEngine {
    workers: usize,
    continuous: bool,
}

impl BatchEngine {
    /// An engine that evaluates everything inline on the caller's thread.
    pub fn sequential() -> Self {
        Self {
            workers: 1,
            continuous: false,
        }
    }

    /// An engine that partitions unique jobs across up to `workers` scoped
    /// threads (clamped to at least 1).
    pub fn parallel(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            continuous: false,
        }
    }

    /// An engine whose workers pull jobs from a shared queue instead of
    /// receiving a fixed contiguous partition: a worker that finishes a cheap
    /// job immediately joins the next pending one, the thread-level analogue
    /// of [`crate::paged::ContinuousBatcher`]'s join-at-block-boundary
    /// admission (no batch barrier between chunks). Results are still
    /// scattered into submission-order slots, so output bits are identical
    /// to [`BatchEngine::sequential`] — the queue changes wall-clock
    /// assignment only.
    pub fn continuous_batching(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            continuous: true,
        }
    }

    /// Configured worker cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether workers pull from a shared queue (continuous batching) rather
    /// than fixed partitions.
    pub fn is_continuous(&self) -> bool {
        self.continuous
    }

    /// Group jobs into per-model batches, preserving submission order within
    /// each batch. Batches are emitted in order of each model's first
    /// appearance, so planning is itself deterministic.
    pub fn plan(jobs: &[BatchJob<'_>]) -> Vec<ModelBatch> {
        let mut batches: Vec<ModelBatch> = Vec::new();
        for (idx, job) in jobs.iter().enumerate() {
            match batches.iter_mut().find(|b| b.model == job.model) {
                Some(batch) => batch.jobs.push(idx),
                None => batches.push(ModelBatch {
                    model: job.model,
                    jobs: vec![idx],
                }),
            }
        }
        batches
    }

    /// Refine [`BatchEngine::plan`] one level: within each model's batch,
    /// group jobs by `(question, context)` prefix in first-appearance order.
    /// The order is model-major and prefix-contiguous — flattening the groups
    /// gives the evaluation order [`BatchEngine::run`] uses, so same-prefix
    /// cells land adjacent (and therefore, chunk boundaries aside, on the
    /// same worker, where the first probe builds the prefix KV snapshot and
    /// the rest hit it).
    pub fn plan_prefix_groups(jobs: &[BatchJob<'_>]) -> Vec<PrefixGroup> {
        let mut out: Vec<PrefixGroup> = Vec::new();
        for batch in Self::plan(jobs) {
            let start = out.len();
            for &idx in &batch.jobs {
                let key = (jobs[idx].request.question, jobs[idx].request.context);
                let existing = out[start..].iter_mut().find(|g| {
                    let first = g.jobs[0];
                    (jobs[first].request.question, jobs[first].request.context) == key
                });
                match existing {
                    Some(group) => group.jobs.push(idx),
                    None => out.push(PrefixGroup {
                        model: batch.model,
                        jobs: vec![idx],
                    }),
                }
            }
        }
        out
    }

    /// Evaluate all jobs and return their results in submission order,
    /// coalescing exact-duplicate jobs (same model, question, context,
    /// sentence) so each unique cell is evaluated exactly once.
    ///
    /// `eval` must be pure per the module determinism contract; under that
    /// contract the returned vector is bitwise-identical to
    /// `jobs.iter().map(eval).collect()` regardless of worker count.
    pub fn run<R, F>(&self, jobs: &[BatchJob<'_>], eval: F) -> (Vec<R>, BatchReport)
    where
        R: Send + Clone,
        F: Fn(&BatchJob<'_>) -> R + Sync,
    {
        let batches = Self::plan(jobs);
        let groups = Self::plan_prefix_groups(jobs);

        // Coalesce duplicates: rep[i] is the position in `unique` of the
        // first submitted job with the same identity as job i. Evaluation
        // order walks the prefix-group plan (model-major,
        // prefix-contiguous), so each model's unique jobs stay contiguous
        // AND cells sharing a (question, context) prefix sit adjacent — the
        // order that lets a shared-prefix KV cache prefill each prefix
        // once. Reordering evaluation is output-invariant: the
        // representative fan-out below restores submission order.
        let mut rep: Vec<usize> = vec![0; jobs.len()];
        let mut covered = 0usize;
        let mut unique: Vec<usize> = Vec::with_capacity(jobs.len());
        for group in &groups {
            for &idx in &group.jobs {
                covered += 1;
                let identity = jobs[idx].identity();
                match unique.iter().position(|&u| jobs[u].identity() == identity) {
                    Some(pos) => rep[idx] = pos,
                    None => {
                        rep[idx] = unique.len();
                        unique.push(idx);
                    }
                }
            }
        }
        debug_assert_eq!(covered, jobs.len(), "prefix groups must cover every job");

        let workers = self.workers.min(unique.len()).max(1);
        let report = BatchReport {
            jobs: jobs.len(),
            unique_jobs: unique.len(),
            batches: batches.len(),
            coalesced: jobs.len() - unique.len(),
            workers,
            prefix_groups: groups.len(),
        };

        if jobs.is_empty() {
            return (Vec::new(), report);
        }

        // Evaluate unique jobs: inline when there is no parallelism to
        // exploit, otherwise contiguous index chunks on scoped threads. Each
        // chunk returns results in chunk order; concatenation restores the
        // unique-list order, and the slot scatter below restores submission
        // order — the ordered merge.
        let evaluated: Vec<R> = if workers <= 1 {
            unique.iter().map(|&idx| eval(&jobs[idx])).collect()
        } else if self.continuous {
            // Shared work queue: each worker atomically claims the next
            // unique-list position. Which worker evaluates which job is
            // racy, but each position is claimed exactly once and its result
            // lands in its own slot, so the merged vector is bitwise
            // independent of the race.
            use std::sync::atomic::{AtomicUsize, Ordering};
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<R>> = (0..unique.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let unique = &unique;
                        let jobs = &jobs;
                        let eval = &eval;
                        scope.spawn(move || {
                            let mut mine: Vec<(usize, R)> = Vec::new();
                            loop {
                                let pos = next.fetch_add(1, Ordering::Relaxed);
                                if pos >= unique.len() {
                                    break;
                                }
                                mine.push((pos, eval(&jobs[unique[pos]])));
                            }
                            mine
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join() {
                        Ok(part) => {
                            for (pos, r) in part {
                                debug_assert!(slots[pos].is_none(), "position claimed twice");
                                slots[pos] = Some(r);
                            }
                        }
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every queue position evaluated"))
                .collect()
        } else {
            let chunk_len = unique.len().div_ceil(workers);
            let chunks: Vec<&[usize]> = unique.chunks(chunk_len).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(|| {
                            chunk
                                .iter()
                                .map(|&idx| eval(&jobs[idx]))
                                .collect::<Vec<R>>()
                        })
                    })
                    .collect();
                let mut out = Vec::with_capacity(unique.len());
                for handle in handles {
                    match handle.join() {
                        Ok(part) => out.extend(part),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                out
            })
        };

        // Fan out to submission order: every job clones its
        // representative's result straight from the unique evaluation.
        let results: Vec<R> = rep.iter().map(|&pos| evaluated[pos].clone()).collect();
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_from<'a>(cells: &'a [(usize, &'a str)]) -> Vec<BatchJob<'a>> {
        cells
            .iter()
            .map(|&(m, r)| BatchJob::new(m, VerificationRequest::new("q", "c", r)))
            .collect()
    }

    /// A pure evaluator whose output encodes the job, so reordering or
    /// miscounting evaluations is visible in the result bits.
    fn tag(job: &BatchJob<'_>) -> String {
        format!("{}:{}", job.model, job.request.response)
    }

    #[test]
    fn plan_groups_by_model_preserving_order() {
        let jobs = jobs_from(&[(1, "a"), (0, "b"), (1, "c"), (2, "d"), (0, "e")]);
        let batches = BatchEngine::plan(&jobs);
        assert_eq!(
            batches,
            vec![
                ModelBatch {
                    model: 1,
                    jobs: vec![0, 2]
                },
                ModelBatch {
                    model: 0,
                    jobs: vec![1, 4]
                },
                ModelBatch {
                    model: 2,
                    jobs: vec![3]
                },
            ]
        );
    }

    #[test]
    fn prefix_groups_are_model_major_and_prefix_contiguous() {
        let mk = |m: usize, q: &'static str, r: &'static str| {
            BatchJob::new(m, VerificationRequest::new(q, "c", r))
        };
        let jobs = vec![
            mk(0, "q1", "a"),
            mk(1, "q1", "b"),
            mk(0, "q2", "c"),
            mk(0, "q1", "d"),
            mk(1, "q1", "e"),
        ];
        let groups = BatchEngine::plan_prefix_groups(&jobs);
        assert_eq!(
            groups,
            vec![
                PrefixGroup {
                    model: 0,
                    jobs: vec![0, 3]
                },
                PrefixGroup {
                    model: 0,
                    jobs: vec![2]
                },
                PrefixGroup {
                    model: 1,
                    jobs: vec![1, 4]
                },
            ]
        );
    }

    #[test]
    fn evaluation_order_keeps_same_prefix_cells_adjacent() {
        use std::sync::Mutex;
        let mk = |m: usize, q: &'static str, r: &'static str| {
            BatchJob::new(m, VerificationRequest::new(q, "c", r))
        };
        // Submission interleaves two prefixes of one model.
        let jobs = vec![
            mk(0, "q1", "a"),
            mk(0, "q2", "b"),
            mk(0, "q1", "c"),
            mk(0, "q2", "d"),
        ];
        let order: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let (results, report) = BatchEngine::sequential().run(&jobs, |job| {
            order
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(job.request.question.to_string());
            tag(job)
        });
        // Output stays in submission order ...
        assert_eq!(results, vec!["0:a", "0:b", "0:c", "0:d"]);
        // ... but evaluation visits each prefix's jobs back to back.
        assert_eq!(
            order.into_inner().unwrap_or_default(),
            vec!["q1", "q1", "q2", "q2"]
        );
        assert_eq!(report.prefix_groups, 2);
    }

    #[test]
    fn run_returns_results_in_submission_order() {
        let jobs = jobs_from(&[(1, "a"), (0, "b"), (1, "c"), (2, "d")]);
        let (results, report) = BatchEngine::sequential().run(&jobs, tag);
        assert_eq!(results, vec!["1:a", "0:b", "1:c", "2:d"]);
        assert_eq!(report.jobs, 4);
        assert_eq!(report.unique_jobs, 4);
        assert_eq!(report.batches, 3);
        assert_eq!(report.coalesced, 0);
    }

    #[test]
    fn duplicates_are_coalesced_to_one_evaluation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let jobs = jobs_from(&[(0, "a"), (0, "a"), (1, "a"), (0, "a"), (1, "b")]);
        let evals = AtomicUsize::new(0);
        let (results, report) = BatchEngine::sequential().run(&jobs, |job| {
            evals.fetch_add(1, Ordering::Relaxed);
            tag(job)
        });
        assert_eq!(results, vec!["0:a", "0:a", "1:a", "0:a", "1:b"]);
        assert_eq!(evals.load(Ordering::Relaxed), 3);
        assert_eq!(report.unique_jobs, 3);
        assert_eq!(report.coalesced, 2);
    }

    #[test]
    fn parallel_output_is_bitwise_identical_to_sequential() {
        let cells: Vec<(usize, String)> = (0..97)
            .map(|i| (i % 5, format!("sentence number {i}")))
            .collect();
        let borrowed: Vec<(usize, &str)> = cells.iter().map(|(m, r)| (*m, r.as_str())).collect();
        let jobs = jobs_from(&borrowed);
        // f64 output so "bitwise" means float bits, like real scores.
        let eval = |job: &BatchJob<'_>| {
            let mut acc = 0.017_f64;
            for (i, b) in job.request.response.bytes().enumerate() {
                acc = (acc + f64::from(b) * 1e-3).sin() + job.model as f64 * 1e-2 + i as f64 * 1e-6;
            }
            acc
        };
        let (seq, _) = BatchEngine::sequential().run(&jobs, eval);
        for workers in [2, 3, 8, 64] {
            let (par, report) = BatchEngine::parallel(workers).run(&jobs, eval);
            let seq_bits: Vec<u64> = seq.iter().map(|s| s.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|s| s.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "workers = {workers}");
            assert!(report.workers <= workers.max(1));
        }
    }

    #[test]
    fn continuous_output_is_bitwise_identical_at_every_worker_count() {
        let cells: Vec<(usize, String)> = (0..131)
            .map(|i| (i % 4, format!("cell {} dup {}", i % 23, i % 3)))
            .collect();
        let borrowed: Vec<(usize, &str)> = cells.iter().map(|(m, r)| (*m, r.as_str())).collect();
        let jobs = jobs_from(&borrowed);
        let eval = |job: &BatchJob<'_>| {
            let mut acc = 0.31_f64 + job.model as f64;
            for b in job.request.response.bytes() {
                acc = (acc * 1.0001 + f64::from(b) * 1e-3).sin();
            }
            acc
        };
        let (seq, _) = BatchEngine::sequential().run(&jobs, eval);
        let seq_bits: Vec<u64> = seq.iter().map(|s| s.to_bits()).collect();
        for workers in [1usize, 2, 3, 7, 32] {
            let engine = BatchEngine::continuous_batching(workers);
            assert!(engine.is_continuous());
            let (cont, report) = engine.run(&jobs, eval);
            let cont_bits: Vec<u64> = cont.iter().map(|s| s.to_bits()).collect();
            assert_eq!(seq_bits, cont_bits, "workers = {workers}");
            // Same dedup plan as the partitioned engine: the queue changes
            // assignment, never the set of evaluations.
            let (_, part_report) = BatchEngine::parallel(workers).run(&jobs, eval);
            assert_eq!(report, part_report);
        }
    }

    #[test]
    fn continuous_evaluates_each_unique_job_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let jobs = jobs_from(&[(0, "a"), (0, "a"), (1, "a"), (0, "b"), (1, "a"), (1, "b")]);
        let evals = AtomicUsize::new(0);
        let (results, report) = BatchEngine::continuous_batching(4).run(&jobs, |job| {
            evals.fetch_add(1, Ordering::Relaxed);
            tag(job)
        });
        assert_eq!(results, vec!["0:a", "0:a", "1:a", "0:b", "1:a", "1:b"]);
        assert_eq!(evals.load(Ordering::Relaxed), 4);
        assert_eq!(report.unique_jobs, 4);
        assert_eq!(report.coalesced, 2);
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        let (results, report) = BatchEngine::parallel(8).run(&[], tag);
        assert!(results.is_empty());
        assert_eq!(report.jobs, 0);
        assert_eq!(report.unique_jobs, 0);

        let jobs = jobs_from(&[(3, "only")]);
        let (results, report) = BatchEngine::parallel(8).run(&jobs, tag);
        assert_eq!(results, vec!["3:only"]);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn probe_outcome_cacheability() {
        let ok = ProbeOutcome {
            score: Some(0.5),
            attempts: 1,
            ..ProbeOutcome::default()
        };
        assert!(ok.is_cacheable());
        for bad in [f64::NAN, f64::INFINITY, -0.25, 1.5] {
            let out = ProbeOutcome {
                score: Some(bad),
                ..ok
            };
            assert!(!out.is_cacheable(), "{bad} must not be cacheable");
        }
        assert!(!ProbeOutcome::default().is_cacheable());
        // Boundary probabilities are valid scores.
        for p in [0.0, 1.0] {
            let out = ProbeOutcome {
                score: Some(p),
                ..ok
            };
            assert!(out.is_cacheable(), "{p} is a valid probability");
        }
    }
}
