//! Beam-search decoding.
//!
//! Greedy decoding commits to the locally best token; beam search keeps the
//! `beam_width` most probable partial sequences and returns the best
//! complete one under length-normalized log-probability. Each beam carries
//! its own KV cache (cloned on branch), which is the honest memory cost of
//! beam search on a KV-cached decoder.

use tensor::nn::log_softmax;

use crate::bpe::{TokenId, EOS};
use crate::kv::KvCache;
use crate::model::TransformerLM;

/// One decoded hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Generated tokens (without the prompt, without EOS).
    pub tokens: Vec<TokenId>,
    /// Sum of token log-probabilities.
    pub log_prob: f64,
    /// Whether the hypothesis ended with EOS.
    pub finished: bool,
}

impl Hypothesis {
    /// Length-normalized score used for ranking (`log_prob / len^alpha`).
    pub fn score(&self, length_penalty: f64) -> f64 {
        let len = self.tokens.len().max(1) as f64;
        self.log_prob / len.powf(length_penalty)
    }
}

struct Beam {
    cache: KvCache,
    hypothesis: Hypothesis,
    logits: Vec<f32>,
}

/// Beam-search decode after a prompt.
///
/// Returns up to `beam_width` hypotheses sorted best-first by normalized
/// score. `length_penalty` of 0 ranks by raw log-prob; 1.0 is full length
/// normalization (the usual default: 0.6–1.0).
///
/// # Panics
/// Panics on an empty prompt or `beam_width == 0`.
pub fn beam_search(
    model: &TransformerLM,
    prompt: &[TokenId],
    beam_width: usize,
    max_new: usize,
    length_penalty: f64,
) -> Vec<Hypothesis> {
    assert!(beam_width > 0, "beam width must be positive");
    assert!(!prompt.is_empty(), "prompt must not be empty");

    let mut cache = model.new_cache();
    let logits = model.prefill(prompt, &mut cache);
    let mut beams = vec![Beam {
        cache,
        hypothesis: Hypothesis {
            tokens: Vec::new(),
            log_prob: 0.0,
            finished: false,
        },
        logits,
    }];
    let mut finished: Vec<Hypothesis> = Vec::new();

    for _ in 0..max_new {
        let mut candidates: Vec<(usize, TokenId, f64)> = Vec::new(); // (beam idx, token, new log prob)
        for (b, beam) in beams.iter().enumerate() {
            if beam.hypothesis.finished {
                continue;
            }
            let logp = log_softmax(&beam.logits);
            // top beam_width continuations of this beam
            let mut order: Vec<usize> = (0..logp.len()).collect();
            order.sort_by(|&i, &j| {
                logp[j]
                    .partial_cmp(&logp[i])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &t in order.iter().take(beam_width) {
                candidates.push((
                    b,
                    t as TokenId,
                    beam.hypothesis.log_prob + f64::from(logp[t]),
                ));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(beam_width);

        let mut next_beams: Vec<Beam> = Vec::with_capacity(beam_width);
        for (b, token, log_prob) in candidates {
            let parent = &beams[b];
            let mut tokens = parent.hypothesis.tokens.clone();
            if token == EOS {
                finished.push(Hypothesis {
                    tokens,
                    log_prob,
                    finished: true,
                });
                continue;
            }
            tokens.push(token);
            if parent.cache.remaining() == 0 {
                finished.push(Hypothesis {
                    tokens,
                    log_prob,
                    finished: false,
                });
                continue;
            }
            let mut cache = parent.cache.clone();
            let logits = model.forward_token(token, &mut cache);
            next_beams.push(Beam {
                cache,
                hypothesis: Hypothesis {
                    tokens,
                    log_prob,
                    finished: false,
                },
                logits,
            });
        }
        if next_beams.is_empty() {
            break;
        }
        beams = next_beams;
    }

    finished.extend(beams.into_iter().map(|b| b.hypothesis));
    finished.sort_by(|a, b| {
        b.score(length_penalty)
            .partial_cmp(&a.score(length_penalty))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    finished.truncate(beam_width);
    finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn model() -> TransformerLM {
        TransformerLM::synthetic(ModelConfig::tiny(40), 17)
    }

    #[test]
    fn beam_one_matches_greedy() {
        let m = model();
        let prompt = [1u32, 2, 3];
        let greedy = m.generate_greedy(&prompt, 6, Some(EOS));
        let beams = beam_search(&m, &prompt, 1, 6, 0.0);
        assert_eq!(beams.len(), 1);
        assert_eq!(beams[0].tokens, greedy);
    }

    #[test]
    fn wider_beams_never_score_worse() {
        // beam-4's best raw log-prob must be >= beam-1's (it explores a
        // superset of prefixes at every step)
        let m = model();
        let prompt = [5u32, 7];
        let b1 = beam_search(&m, &prompt, 1, 6, 0.0);
        let b4 = beam_search(&m, &prompt, 4, 6, 0.0);
        assert!(b4[0].log_prob >= b1[0].log_prob - 1e-9);
        assert!(b4.len() <= 4);
    }

    #[test]
    fn results_sorted_best_first() {
        let m = model();
        let beams = beam_search(&m, &[2, 4], 4, 5, 0.6);
        for w in beams.windows(2) {
            assert!(w[0].score(0.6) >= w[1].score(0.6));
        }
    }

    #[test]
    fn log_probs_are_negative_and_accumulate() {
        let m = model();
        let beams = beam_search(&m, &[1, 2], 2, 4, 0.0);
        for h in &beams {
            assert!(h.log_prob < 0.0);
            assert!(!h.tokens.is_empty() || h.finished);
        }
    }

    #[test]
    fn deterministic() {
        let m = model();
        let a = beam_search(&m, &[3, 9], 3, 5, 0.7);
        let b = beam_search(&m, &[3, 9], 3, 5, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn length_penalty_changes_ranking_inputs() {
        let h_short = Hypothesis {
            tokens: vec![1],
            log_prob: -1.0,
            finished: true,
        };
        let h_long = Hypothesis {
            tokens: vec![1, 2, 3, 4],
            log_prob: -2.0,
            finished: true,
        };
        // raw: short wins; fully normalized: long wins
        assert!(h_short.score(0.0) > h_long.score(0.0));
        assert!(h_long.score(1.0) > h_short.score(1.0));
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_beam_width_panics() {
        beam_search(&model(), &[1], 0, 4, 0.0);
    }
}
