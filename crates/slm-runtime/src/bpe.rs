//! Byte-pair-encoding tokenizer with a from-scratch trainer.
//!
//! Real SLM checkpoints ship trained BPE vocabularies; offline we train our
//! own on the corpus at hand (the synthetic handbook). The implementation is
//! the classic Sennrich-style word-internal BPE: words end with a `</w>`
//! marker, merges are learned greedily by pair frequency, and encoding
//! replays merges in rank order.
//!
//! The vocabulary always reserves the special tokens the verification prompt
//! needs: `<pad>`, `<bos>`, `<eos>`, `<unk>`, and whole-word `yes</w>` /
//! `no</w>` pieces so that `P(token_1 = "yes")` is a single-token probability
//! (Eq. 2 of the paper).

use std::collections::HashMap;

use text_engine::normalize::normalize;

/// Word-end marker appended to every word before merging.
const WORD_END: &str = "</w>";

/// Token id type.
pub type TokenId = u32;

/// Special token ids (fixed positions at the front of the vocabulary).
pub const PAD: TokenId = 0;
/// Beginning-of-sequence.
pub const BOS: TokenId = 1;
/// End-of-sequence.
pub const EOS: TokenId = 2;
/// Unknown symbol.
pub const UNK: TokenId = 3;

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct Bpe {
    /// id → piece text.
    vocab: Vec<String>,
    /// piece text → id.
    ids: HashMap<String, TokenId>,
    /// merge (left, right) → rank (lower = earlier = higher priority).
    merge_ranks: HashMap<(String, String), usize>,
}

impl Bpe {
    /// Train a tokenizer on `corpus` with a target vocabulary size.
    ///
    /// `target_vocab` counts everything: special tokens, single characters
    /// and learned merges. Training stops early when no pair occurs twice.
    pub fn train<S: AsRef<str>>(corpus: &[S], target_vocab: usize) -> Self {
        // Word frequency table over normalized text.
        let mut word_freq: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            for word in normalize(doc.as_ref()).split_whitespace() {
                *word_freq.entry(word.to_string()).or_insert(0) += 1;
            }
        }

        // Working representation: each word as a symbol sequence.
        let mut words: Vec<(Vec<String>, usize)> = word_freq
            .iter()
            .map(|(w, &f)| {
                let mut syms: Vec<String> = w.chars().map(|c| c.to_string()).collect();
                syms.push(WORD_END.to_string());
                (syms, f)
            })
            .collect();
        // Deterministic ordering regardless of HashMap iteration.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        // Base vocabulary: specials + all single characters + word end.
        let mut vocab: Vec<String> = vec![
            "<pad>".into(),
            "<bos>".into(),
            "<eos>".into(),
            "<unk>".into(),
        ];
        let mut seen: HashMap<String, ()> = HashMap::new();
        let mut base_chars: Vec<String> = Vec::new();
        for (syms, _) in &words {
            for s in syms {
                if seen.insert(s.clone(), ()).is_none() {
                    base_chars.push(s.clone());
                }
            }
        }
        base_chars.sort();
        vocab.extend(base_chars);

        // Learn merges.
        let mut merges: Vec<(String, String)> = Vec::new();
        while vocab.len() + merges.len() < target_vocab {
            let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
            for (syms, f) in &words {
                for w in syms.windows(2) {
                    *pair_counts.entry((w[0].clone(), w[1].clone())).or_insert(0) += f;
                }
            }
            // Most frequent pair, ties broken lexicographically for determinism.
            let best = pair_counts
                .into_iter()
                .filter(|(_, c)| *c >= 2)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), _)) = best else {
                break;
            };
            for (syms, _) in words.iter_mut() {
                merge_pair(syms, &left, &right);
            }
            merges.push((left, right));
        }

        for (l, r) in &merges {
            vocab.push(format!("{l}{r}"));
        }

        let mut bpe = Self {
            ids: vocab
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i as TokenId))
                .collect(),
            merge_ranks: merges
                .into_iter()
                .enumerate()
                .map(|(rank, pair)| (pair, rank))
                .collect(),
            vocab,
        };
        // Guarantee single-token "yes"/"no" pieces for Eq. 2.
        bpe.ensure_word_token("yes");
        bpe.ensure_word_token("no");
        bpe
    }

    fn ensure_word_token(&mut self, word: &str) {
        let piece = format!("{word}{WORD_END}");
        if !self.ids.contains_key(&piece) {
            let id = self.vocab.len() as TokenId;
            self.vocab.push(piece.clone());
            self.ids.insert(piece, id);
        }
    }

    /// Vocabulary size, including specials.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Piece text for a token id.
    pub fn piece(&self, id: TokenId) -> Option<&str> {
        self.vocab.get(id as usize).map(String::as_str)
    }

    /// Token id for the whole word `word` if it exists as a single piece.
    pub fn word_token(&self, word: &str) -> Option<TokenId> {
        self.ids.get(&format!("{word}{WORD_END}")).copied()
    }

    /// The single-token id for "yes" (reserved as a whole-word piece at
    /// training time; falls back to token 0 if a hand-built vocabulary
    /// somehow omitted it).
    pub fn yes_token(&self) -> TokenId {
        match self.word_token("yes") {
            Some(id) => id,
            None => {
                debug_assert!(false, "yes token reserved at training time");
                0
            }
        }
    }

    /// The single-token id for "no" (reserved like [`Self::yes_token`]).
    pub fn no_token(&self) -> TokenId {
        match self.word_token("no") {
            Some(id) => id,
            None => {
                debug_assert!(false, "no token reserved at training time");
                0
            }
        }
    }

    /// Encode one word (no whitespace) into token ids.
    pub fn encode_word(&self, word: &str) -> Vec<TokenId> {
        // Whole word shortcut (covers reserved yes/no even when the corpus
        // never contained them).
        if let Some(id) = self.word_token(word) {
            return vec![id];
        }
        let mut syms: Vec<String> = word.chars().map(|c| c.to_string()).collect();
        syms.push(WORD_END.to_string());
        // Replay merges: repeatedly merge the lowest-rank adjacent pair.
        loop {
            let mut best: Option<(usize, usize)> = None; // (rank, position)
            for (i, w) in syms.windows(2).enumerate() {
                if let Some(&rank) = self.merge_ranks.get(&(w[0].clone(), w[1].clone())) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, pos)) = best else { break };
            let merged = format!("{}{}", syms[pos], syms[pos + 1]);
            syms.splice(pos..=pos + 1, [merged]);
        }
        syms.iter()
            .map(|s| self.ids.get(s).copied().unwrap_or(UNK))
            .collect()
    }

    /// Encode text: normalize, split on whitespace, encode each word.
    /// Prepends `<bos>` when `add_bos` is set.
    pub fn encode(&self, text: &str, add_bos: bool) -> Vec<TokenId> {
        let mut out = Vec::new();
        if add_bos {
            out.push(BOS);
        }
        for word in normalize(text).split_whitespace() {
            out.extend(self.encode_word(word));
        }
        out
    }

    /// Decode ids back to text. Unknown ids render as `<unk>`.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut s = String::new();
        for &id in ids {
            if matches!(id, PAD | BOS | EOS) {
                continue;
            }
            match self.piece(id) {
                Some(p) => s.push_str(p),
                None => s.push_str("<unk>"),
            }
        }
        s.replace(WORD_END, " ").trim_end().to_string()
    }
}

/// Merge every adjacent occurrence of (left, right) in `syms`.
fn merge_pair(syms: &mut Vec<String>, left: &str, right: &str) {
    let mut i = 0;
    while i + 1 < syms.len() {
        if syms[i] == left && syms[i + 1] == right {
            let merged = format!("{left}{right}");
            syms.splice(i..=i + 1, [merged]);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<&'static str> {
        vec![
            "the store operates from 9 am to 5 pm",
            "the store is open from sunday to saturday",
            "working hours are 9 am to 5 pm every day",
            "annual leave is 14 days per year for staff",
            "yes the answer is correct",
            "no the answer is wrong",
        ]
    }

    #[test]
    fn train_produces_bounded_vocab() {
        let bpe = Bpe::train(&sample_corpus(), 120);
        assert!(bpe.vocab_size() <= 122, "{}", bpe.vocab_size()); // +2 reserved yes/no
        assert!(bpe.vocab_size() > 30);
    }

    #[test]
    fn roundtrip_on_training_text() {
        let bpe = Bpe::train(&sample_corpus(), 200);
        let text = "the store operates from 9 am to 5 pm";
        let ids = bpe.encode(text, false);
        assert_eq!(bpe.decode(&ids), text);
    }

    #[test]
    fn roundtrip_on_unseen_words_with_known_chars() {
        let bpe = Bpe::train(&sample_corpus(), 120);
        let text = "sunday salary stores"; // unseen combinations, seen chars
        assert_eq!(bpe.decode(&bpe.encode(text, false)), text);
    }

    #[test]
    fn unknown_characters_become_unk() {
        let bpe = Bpe::train(&sample_corpus(), 120);
        let ids = bpe.encode_word("日本");
        assert!(ids.contains(&UNK));
    }

    #[test]
    fn yes_and_no_are_single_tokens() {
        let bpe = Bpe::train(&sample_corpus(), 80);
        assert_eq!(bpe.encode_word("yes").len(), 1);
        assert_eq!(bpe.encode_word("no").len(), 1);
        assert_ne!(bpe.yes_token(), bpe.no_token());
    }

    #[test]
    fn yes_no_reserved_even_without_corpus_occurrences() {
        let bpe = Bpe::train(&["alpha beta gamma"], 40);
        assert_eq!(bpe.encode_word("yes"), vec![bpe.yes_token()]);
        assert_eq!(bpe.encode_word("no"), vec![bpe.no_token()]);
    }

    #[test]
    fn bos_prepended_when_requested() {
        let bpe = Bpe::train(&sample_corpus(), 80);
        let ids = bpe.encode("the store", true);
        assert_eq!(ids[0], BOS);
        assert!(!bpe.encode("the store", false).contains(&BOS));
    }

    #[test]
    fn more_merges_shorten_encodings() {
        let small = Bpe::train(&sample_corpus(), 50);
        let large = Bpe::train(&sample_corpus(), 300);
        let text = "the store operates from 9 am";
        assert!(large.encode(text, false).len() <= small.encode(text, false).len());
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train(&sample_corpus(), 100);
        let b = Bpe::train(&sample_corpus(), 100);
        assert_eq!(a.vocab, b.vocab);
        assert_eq!(
            a.encode("working hours", false),
            b.encode("working hours", false)
        );
    }

    #[test]
    fn specials_have_fixed_ids() {
        let bpe = Bpe::train(&sample_corpus(), 80);
        assert_eq!(bpe.piece(PAD), Some("<pad>"));
        assert_eq!(bpe.piece(BOS), Some("<bos>"));
        assert_eq!(bpe.piece(EOS), Some("<eos>"));
        assert_eq!(bpe.piece(UNK), Some("<unk>"));
    }

    #[test]
    fn decode_skips_specials() {
        let bpe = Bpe::train(&sample_corpus(), 80);
        let mut ids = vec![BOS];
        ids.extend(bpe.encode("the store", false));
        ids.push(EOS);
        assert_eq!(bpe.decode(&ids), "the store");
    }

    proptest::proptest! {
        #[test]
        fn encode_decode_roundtrips_lowercase_ascii(text in "[a-z ]{0,40}") {
            let bpe = Bpe::train(&["abcdefghijklmnopqrstuvwxyz abc xyz the quick brown fox"], 60);
            let normalized = text_engine::normalize(&text);
            let got = bpe.decode(&bpe.encode(&text, false));
            proptest::prop_assert_eq!(got, normalized);
        }

        #[test]
        fn encoding_never_empty_for_nonempty_word(word in "[a-z]{1,10}") {
            let bpe = Bpe::train(&sample_corpus(), 100);
            proptest::prop_assert!(!bpe.encode_word(&word).is_empty());
        }
    }
}
