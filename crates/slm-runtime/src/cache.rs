//! Sharded memoizing verification cache.
//!
//! [`VerificationCache`] memoizes completed probe episodes — one
//! [`ProbeOutcome`] per (model, question, context, sentence) cell — behind a
//! fixed set of FNV-keyed shards, each guarded by its own mutex so the
//! parallel batch executor's workers rarely contend. Eviction is per-shard
//! LRU under two global bounds: an entry count and a byte budget (key text
//! plus a fixed per-entry overhead).
//!
//! **Why a hit cannot change behavior.** Under the episode-purity contract
//! ([`crate::fallible::FallibleVerifier::try_p_yes_attempt`]) a probe episode
//! is a pure function of its cell, so the cached outcome is bit-for-bit the
//! outcome a recomputation would produce — including `simulated_ms`, which
//! means virtual-clock dynamics (deadlines, shedding, telemetry) replay
//! identically. The cache therefore only ever saves wall-clock work; it is
//! semantically invisible, which is what the golden parity suite asserts.
//!
//! **Why a fault cannot poison it.** Only outcomes with a valid probability
//! ([`ProbeOutcome::is_cacheable`]) are admitted: failed episodes and
//! garbage scores are recomputed every time — harmless, because recomputing
//! them is also bit-identical.
//!
//! **Replication.** The cluster layer copies warm entries between peer
//! caches so a failover target serves hits it never computed. Two transport
//! primitives support it: a bounded *journal* of recently-inserted keys
//! ([`VerificationCache::recent_since`]) for the cheap steady-state path,
//! and a sorted page walk ([`VerificationCache::sync_page`]) as the
//! anti-entropy fallback once the journal has rotated past a peer's cursor.
//! Replicated entries land through [`VerificationCache::insert_replicated`],
//! which re-applies the `is_cacheable` gate — a peer can never launder a
//! poisoned outcome past the no-poisoning guarantee — and which skips keys
//! the local cache already holds, so replication never clobbers local work.
//! Because episodes are pure functions of their cell, a replicated value is
//! bit-identical to what local recomputation would produce; replication
//! changes *where* the work happened, never *what* the answer is.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hallu_obs::{Counter, Gauge, Obs};

use crate::batch::ProbeOutcome;
use crate::sim::{fnv1a, splitmix64};

/// Fixed accounting overhead per cached entry, covering the stored outcome,
/// recency tick, and map bookkeeping. The exact value only shapes eviction
/// pressure; it is part of the deterministic byte model, not a measurement.
pub const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Capacity and sharding knobs for [`VerificationCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Global bound on cached entries. Never exceeded.
    pub max_entries: usize,
    /// Global bound on accounted bytes (key text + [`ENTRY_OVERHEAD_BYTES`]
    /// per entry). Never exceeded.
    pub max_bytes: usize,
    /// Requested shard count; rounded down to a power of two and clamped so
    /// every shard can hold at least one entry.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 4096,
            max_bytes: 4 << 20,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// A small config convenient for tests: `max_entries` entries, a byte
    /// budget generous enough to be non-binding, default sharding.
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self {
            max_entries,
            ..Self::default()
        }
    }
}

/// Borrowed view of a cache key; avoids allocating on lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKeyRef<'a> {
    /// Verifier model name.
    pub model: &'a str,
    /// The question under verification.
    pub question: &'a str,
    /// Retrieved context.
    pub context: &'a str,
    /// The sentence (response fragment) being scored.
    pub response: &'a str,
}

impl<'a> CacheKeyRef<'a> {
    /// Build a key view.
    pub fn new(model: &'a str, question: &'a str, context: &'a str, response: &'a str) -> Self {
        Self {
            model,
            question,
            context,
            response,
        }
    }

    fn hash(&self) -> u64 {
        fnv1a(
            0x5ca1_ab1e,
            &[self.model, self.question, self.context, self.response],
        )
    }

    fn byte_cost(&self) -> usize {
        ENTRY_OVERHEAD_BYTES
            + self.model.len()
            + self.question.len()
            + self.context.len()
            + self.response.len()
    }
}

/// Owned cache key, as stored in shards and returned by snapshots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Verifier model name.
    pub model: String,
    /// The question under verification.
    pub question: String,
    /// Retrieved context.
    pub context: String,
    /// The sentence (response fragment) being scored.
    pub response: String,
}

impl CacheKey {
    fn from_ref(key: &CacheKeyRef<'_>) -> Self {
        Self {
            model: key.model.to_string(),
            question: key.question.to_string(),
            context: key.context.to_string(),
            response: key.response.to_string(),
        }
    }

    fn matches(&self, key: &CacheKeyRef<'_>) -> bool {
        self.model == key.model
            && self.question == key.question
            && self.context == key.context
            && self.response == key.response
    }

    /// Borrow this owned key as a [`CacheKeyRef`] view.
    pub fn as_key_ref(&self) -> CacheKeyRef<'_> {
        CacheKeyRef::new(&self.model, &self.question, &self.context, &self.response)
    }
}

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: ProbeOutcome,
    last_used: u64,
    bytes: usize,
    /// Whether the entry arrived via [`VerificationCache::insert_replicated`]
    /// rather than local computation; hits on such entries are the proof the
    /// heal sweep looks for ("hits it never computed").
    replicated: bool,
}

#[derive(Debug, Default)]
struct Shard {
    /// Entries bucketed by full key hash; the inner vec holds hash
    /// collisions (resolved by exact string compare).
    buckets: HashMap<u64, Vec<Entry>>,
    entries: usize,
    bytes: usize,
    /// Monotonic recency clock, bumped on every touch.
    tick: u64,
}

impl Shard {
    /// Remove the least-recently-used entry. Ties cannot occur (ticks are
    /// unique per shard).
    fn evict_lru(&mut self) -> Option<(CacheKey, ProbeOutcome)> {
        let (&hash, pos) = self
            .buckets
            .iter()
            .flat_map(|(hash, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(pos, entry)| ((hash, pos), entry.last_used))
            })
            .min_by_key(|&(_, last_used)| last_used)
            .map(|((hash, pos), _)| (hash, pos))?;
        let bucket = self.buckets.get_mut(&hash)?;
        let entry = bucket.remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        self.entries -= 1;
        self.bytes -= entry.bytes;
        Some((entry.key, entry.value))
    }
}

/// Point-in-time cache statistics. Counters are cumulative since
/// construction; `entries`/`bytes` are current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// New entries admitted.
    pub inserts: u64,
    /// Inserts that overwrote an existing key in place.
    pub updates: u64,
    /// Entries removed by LRU pressure.
    pub evictions: u64,
    /// Inserts refused because the outcome was not a valid probability.
    pub rejected: u64,
    /// Entries admitted from a replication peer rather than local work.
    pub replicated_inserts: u64,
    /// Hits served from entries this cache never computed itself.
    pub replicated_hits: u64,
    /// Current entry count.
    pub entries: u64,
    /// Current accounted bytes.
    pub bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry handles mirroring the cache counters; disconnected (free)
/// unless [`VerificationCache::with_obs`] is used.
#[derive(Debug, Clone, Default)]
struct CacheTelemetry {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    updates: Counter,
    evictions: Counter,
    rejected: Counter,
    replicated_inserts: Counter,
    replicated_hits: Counter,
    entries: Gauge,
    bytes: Gauge,
}

impl CacheTelemetry {
    fn register(obs: &Obs) -> Self {
        let event = |kind: &str, help: &str| {
            obs.counter("hallu_cache_events_total", help, &[("kind", kind)])
        };
        let help = "Verification cache events by kind";
        Self {
            hits: event("hit", help),
            misses: event("miss", help),
            inserts: event("insert", help),
            updates: event("update", help),
            evictions: event("eviction", help),
            rejected: event("rejected", help),
            replicated_inserts: event("replicated_insert", help),
            replicated_hits: event("replicated_hit", help),
            entries: obs.gauge(
                "hallu_cache_entries",
                "Current verification cache entry count",
                &[],
            ),
            bytes: obs.gauge(
                "hallu_cache_bytes",
                "Current verification cache accounted bytes",
                &[],
            ),
        }
    }
}

/// Sharded, bounded, LRU-evicting memo table for probe episodes.
///
/// Thread-safe; lookups and inserts lock only the owning shard. See the
/// module docs for the semantic-invisibility argument.
pub struct VerificationCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard bounds; the global bounds divided across shards, so the
    /// global bound holds by construction even when shards fill unevenly.
    shard_max_entries: usize,
    shard_max_bytes: usize,
    config: CacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    replicated_inserts: AtomicU64,
    replicated_hits: AtomicU64,
    /// Global insert sequence; the journal below records `(seq, key)` for
    /// the most recent admissions so peers can pull deltas by cursor.
    seq: AtomicU64,
    journal: Mutex<VecDeque<(u64, CacheKey)>>,
    journal_capacity: usize,
    obs: CacheTelemetry,
}

impl VerificationCache {
    /// Build a cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        let max_entries = config.max_entries.max(1);
        // Largest power of two that is both <= the requested shard count and
        // <= max_entries, so every shard can hold at least one entry and the
        // hash-to-shard map is a mask.
        let mut shards = 1usize;
        while shards * 2 <= config.shards.max(1) && shards * 2 <= max_entries {
            shards *= 2;
        }
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_max_entries: max_entries / shards,
            shard_max_bytes: (config.max_bytes / shards).max(1),
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            replicated_inserts: AtomicU64::new(0),
            replicated_hits: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            journal: Mutex::new(VecDeque::new()),
            journal_capacity: max_entries.clamp(64, 4096),
            obs: CacheTelemetry::default(),
        }
    }

    /// Mirror cache counters into `obs` as
    /// `hallu_cache_events_total{kind}` plus occupancy gauges. Counter
    /// increments commute and gauges only report occupancy, so telemetry
    /// stays bitwise-neutral to scoring.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = CacheTelemetry::register(obs);
        self
    }

    /// The configuration the cache was built with (as requested, before
    /// shard rounding).
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Actual shard count in use (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        // Rehash before masking: FNV's low bits are fine, but mixing costs
        // one multiply and keeps shard balance independent of key shape.
        let idx = (splitmix64(hash) as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    fn publish_occupancy(&self) {
        // Cheap no-ops when obs is disconnected; exact values matter only
        // for dashboards, so a racy read across shards is acceptable.
        self.obs.entries.set(self.len() as f64);
        self.obs.bytes.set(self.bytes() as f64);
    }

    /// Look up a cell. A hit refreshes the entry's recency.
    pub fn get(&self, key: &CacheKeyRef<'_>) -> Option<ProbeOutcome> {
        let hash = key.hash();
        let mut shard = self
            .shard_for(hash)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let found = shard
            .buckets
            .get_mut(&hash)
            .and_then(|bucket| bucket.iter_mut().find(|entry| entry.key.matches(key)))
            .map(|entry| {
                entry.last_used = tick;
                (entry.value, entry.replicated)
            });
        drop(shard);
        match found {
            Some((value, replicated)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.hits.inc();
                if replicated {
                    self.replicated_hits.fetch_add(1, Ordering::Relaxed);
                    self.obs.replicated_hits.inc();
                }
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs.misses.inc();
                None
            }
        }
    }

    /// Record an admission in the replication journal, rotating out the
    /// oldest entries past the capacity bound (peers whose cursor falls off
    /// the rotated prefix fall back to [`Self::sync_page`]).
    fn journal_admission(&self, key: &CacheKeyRef<'_>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.push_back((seq, CacheKey::from_ref(key)));
        while journal.len() > self.journal_capacity {
            journal.pop_front();
        }
    }

    /// Admit a completed probe episode. Returns `false` (and caches nothing)
    /// unless the outcome carries a valid probability — the no-poisoning
    /// guarantee. Existing keys are overwritten in place; new entries may
    /// evict least-recently-used ones to respect the bounds.
    pub fn insert(&self, key: &CacheKeyRef<'_>, value: ProbeOutcome) -> bool {
        if !value.is_cacheable() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.obs.rejected.inc();
            return false;
        }
        let hash = key.hash();
        let cost = key.byte_cost();
        let mut evicted = 0u64;
        let updated;
        {
            let mut shard = self
                .shard_for(hash)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            shard.tick += 1;
            let tick = shard.tick;
            let existing = shard
                .buckets
                .get_mut(&hash)
                .and_then(|bucket| bucket.iter_mut().find(|entry| entry.key.matches(key)));
            if let Some(entry) = existing {
                entry.value = value;
                entry.last_used = tick;
                // Locally recomputed: the entry no longer owes its
                // existence to a peer.
                entry.replicated = false;
                updated = true;
            } else {
                updated = false;
                let entry = Entry {
                    key: CacheKey::from_ref(key),
                    value,
                    last_used: tick,
                    bytes: cost,
                    replicated: false,
                };
                shard.bytes += cost;
                shard.entries += 1;
                shard.buckets.entry(hash).or_default().push(entry);
                while shard.entries > self.shard_max_entries || shard.bytes > self.shard_max_bytes {
                    if shard.evict_lru().is_none() {
                        break;
                    }
                    evicted += 1;
                }
            }
        }
        if updated {
            self.updates.fetch_add(1, Ordering::Relaxed);
            self.obs.updates.inc();
        } else {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.obs.inserts.inc();
            self.journal_admission(key);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs.evictions.add(evicted);
        }
        self.publish_occupancy();
        true
    }

    /// Admit an entry copied from a replication peer. Unlike [`Self::insert`]
    /// this never overwrites: if the key is already resident (computed
    /// locally or replicated earlier) the call is a no-op returning `false`.
    /// The `is_cacheable` gate is re-applied, so a peer cannot launder a
    /// poisoned outcome into this cache. Returns `true` when the entry was
    /// admitted.
    pub fn insert_replicated(&self, key: &CacheKeyRef<'_>, value: ProbeOutcome) -> bool {
        if !value.is_cacheable() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.obs.rejected.inc();
            return false;
        }
        let hash = key.hash();
        let cost = key.byte_cost();
        let mut evicted = 0u64;
        {
            let mut shard = self
                .shard_for(hash)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let exists = shard
                .buckets
                .get(&hash)
                .is_some_and(|bucket| bucket.iter().any(|entry| entry.key.matches(key)));
            if exists {
                return false;
            }
            shard.tick += 1;
            let tick = shard.tick;
            let entry = Entry {
                key: CacheKey::from_ref(key),
                value,
                last_used: tick,
                bytes: cost,
                replicated: true,
            };
            shard.bytes += cost;
            shard.entries += 1;
            shard.buckets.entry(hash).or_default().push(entry);
            while shard.entries > self.shard_max_entries || shard.bytes > self.shard_max_bytes {
                if shard.evict_lru().is_none() {
                    break;
                }
                evicted += 1;
            }
        }
        self.replicated_inserts.fetch_add(1, Ordering::Relaxed);
        self.obs.replicated_inserts.inc();
        // Journal replicated admissions too, so a peer-of-a-peer (e.g. the
        // ring successor chain) can pick them up; the skip-if-resident rule
        // above keeps the exchange from ping-ponging.
        self.journal_admission(key);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs.evictions.add(evicted);
        }
        self.publish_occupancy();
        true
    }

    /// Whether `key` is resident, without touching recency or hit/miss
    /// counters. Replication-plane lookup.
    pub fn contains(&self, key: &CacheKeyRef<'_>) -> bool {
        let hash = key.hash();
        let shard = self
            .shard_for(hash)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard
            .buckets
            .get(&hash)
            .is_some_and(|bucket| bucket.iter().any(|entry| entry.key.matches(key)))
    }

    /// Read a resident value without touching recency or hit/miss counters.
    /// Replication-plane lookup: shipping an entry to a peer must not
    /// distort the LRU order or the hit-rate telemetry.
    fn peek(&self, key: &CacheKeyRef<'_>) -> Option<ProbeOutcome> {
        let hash = key.hash();
        let shard = self
            .shard_for(hash)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard
            .buckets
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|entry| entry.key.matches(key)))
            .map(|entry| entry.value)
    }

    /// The most recently issued admission-journal sequence number (0 before
    /// any admission). A replication peer whose cursor rotated out of the
    /// journal rejoins it at this head after its anti-entropy walk.
    pub fn journal_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The steady-state replication pull: every admission after `cursor`
    /// still present in the journal, oldest first, bounded by `max_bytes` of
    /// accounted key cost (at least one entry ships even if oversized, so a
    /// small budget still makes progress). Returns the advanced cursor to
    /// pass next round. Returns `None` when the journal has rotated past
    /// `cursor` — admissions were lost and the caller must fall back to the
    /// [`Self::sync_page`] anti-entropy walk. Entries evicted since being
    /// journaled are skipped (the cursor still advances past them).
    pub fn recent_since(
        &self,
        cursor: u64,
        max_bytes: usize,
    ) -> Option<(u64, Vec<(CacheKey, ProbeOutcome)>)> {
        // Clone the journaled tail out under the lock, then peek values
        // lock-free of it (peek takes shard locks).
        let pending: Vec<(u64, CacheKey)> = {
            let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
            match journal.front() {
                Some(&(head_seq, _)) => {
                    if cursor + 1 < head_seq {
                        return None;
                    }
                }
                None => {
                    if self.seq.load(Ordering::Relaxed) > cursor {
                        return None;
                    }
                }
            }
            journal
                .iter()
                .filter(|(seq, _)| *seq > cursor)
                .cloned()
                .collect()
        };
        let mut out = Vec::new();
        let mut new_cursor = cursor;
        let mut spent = 0usize;
        for (seq, key) in pending {
            let key_ref = CacheKeyRef::new(&key.model, &key.question, &key.context, &key.response);
            let cost = key_ref.byte_cost();
            if !out.is_empty() && spent + cost > max_bytes {
                break;
            }
            if let Some(value) = self.peek(&key_ref) {
                spent += cost;
                out.push((key, value));
            }
            new_cursor = seq;
        }
        Some((new_cursor, out))
    }

    /// One page of the anti-entropy walk: resident entries in sorted key
    /// order starting at index `cursor`, bounded by `max_bytes` of accounted
    /// key cost (at least one entry ships). Returns the next cursor, which
    /// wraps to 0 when the walk completes a full pass. The fallback path for
    /// peers whose [`Self::recent_since`] cursor rotated out of the journal.
    pub fn sync_page(
        &self,
        cursor: usize,
        max_bytes: usize,
    ) -> (Vec<(CacheKey, ProbeOutcome)>, usize) {
        let snapshot = self.entries_snapshot();
        if snapshot.is_empty() {
            return (Vec::new(), 0);
        }
        let start = cursor.min(snapshot.len());
        let mut out = Vec::new();
        let mut spent = 0usize;
        let mut next = start;
        for (key, value) in snapshot.iter().skip(start) {
            let key_ref = CacheKeyRef::new(&key.model, &key.question, &key.context, &key.response);
            let cost = key_ref.byte_cost();
            if !out.is_empty() && spent + cost > max_bytes {
                break;
            }
            spent += cost;
            out.push((key.clone(), *value));
            next += 1;
        }
        if next >= snapshot.len() {
            next = 0;
        }
        (out, next)
    }

    /// Current entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries)
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current accounted bytes across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            replicated_inserts: self.replicated_inserts.load(Ordering::Relaxed),
            replicated_hits: self.replicated_hits.load(Ordering::Relaxed),
            entries: self.len() as u64,
            bytes: self.bytes() as u64,
        }
    }

    /// Every resident entry, sorted by key for deterministic iteration.
    /// Test and debugging aid — this walks all shards under their locks.
    pub fn entries_snapshot(&self) -> Vec<(CacheKey, ProbeOutcome)> {
        let mut out: Vec<(CacheKey, ProbeOutcome)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for bucket in shard.buckets.values() {
                for entry in bucket {
                    out.push((entry.key.clone(), entry.value));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(p: f64) -> ProbeOutcome {
        ProbeOutcome {
            score: Some(p),
            attempts: 1,
            retries: 0,
            timeouts: 0,
            simulated_ms: 10.0,
        }
    }

    fn key(s: &str) -> CacheKeyRef<'_> {
        CacheKeyRef::new("model", "question", "context", s)
    }

    #[test]
    fn get_miss_then_insert_then_hit_roundtrip() {
        let cache = VerificationCache::new(CacheConfig::default());
        let k = key("a sentence");
        assert_eq!(cache.get(&k), None);
        assert!(cache.insert(&k, outcome(0.7)));
        assert_eq!(cache.get(&k), Some(outcome(0.7)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes as usize >= ENTRY_OVERHEAD_BYTES);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = VerificationCache::new(CacheConfig::default());
        for (field, a, b) in [
            (
                "model",
                CacheKeyRef::new("m1", "q", "c", "r"),
                CacheKeyRef::new("m2", "q", "c", "r"),
            ),
            (
                "question",
                CacheKeyRef::new("m", "q1", "c", "r"),
                CacheKeyRef::new("m", "q2", "c", "r"),
            ),
            (
                "context",
                CacheKeyRef::new("m", "q", "c1", "r"),
                CacheKeyRef::new("m", "q", "c2", "r"),
            ),
            (
                "response",
                CacheKeyRef::new("m", "q", "c", "r1"),
                CacheKeyRef::new("m", "q", "c", "r2"),
            ),
        ] {
            assert!(cache.insert(&a, outcome(0.25)));
            assert_eq!(cache.get(&b), None, "{field} must separate keys");
            assert_eq!(cache.get(&a), Some(outcome(0.25)));
        }
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = VerificationCache::new(CacheConfig::default());
        let k = key("x");
        cache.insert(&k, outcome(0.2));
        cache.insert(&k, outcome(0.9));
        assert_eq!(cache.get(&k), Some(outcome(0.9)));
        let stats = cache.stats();
        assert_eq!((stats.inserts, stats.updates, stats.entries), (1, 1, 1));
    }

    #[test]
    fn invalid_outcomes_are_rejected() {
        let cache = VerificationCache::new(CacheConfig::default());
        for (label, value) in [
            ("error episode", ProbeOutcome::default()),
            ("nan", outcome(f64::NAN)),
            ("negative", outcome(-0.1)),
            ("above one", outcome(1.5)),
            ("infinite", outcome(f64::INFINITY)),
        ] {
            assert!(!cache.insert(&key(label), value), "{label}");
            assert_eq!(cache.get(&key(label)), None, "{label}");
        }
        let stats = cache.stats();
        assert_eq!(stats.rejected, 5);
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn entry_bound_is_never_exceeded_and_lru_is_evicted() {
        // Single shard so recency ordering is fully observable.
        let config = CacheConfig {
            max_entries: 4,
            max_bytes: usize::MAX,
            shards: 1,
        };
        let cache = VerificationCache::new(config);
        assert_eq!(cache.shard_count(), 1);
        for i in 0..4 {
            cache.insert(&key(&format!("k{i}")), outcome(0.5));
        }
        // Touch k0 so k1 becomes the LRU victim.
        assert!(cache.get(&key("k0")).is_some());
        cache.insert(&key("k4"), outcome(0.5));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(&key("k1")), None, "LRU entry evicted");
        for live in ["k0", "k2", "k3", "k4"] {
            assert!(cache.get(&key(live)).is_some(), "{live} survives");
        }
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_is_never_exceeded() {
        let config = CacheConfig {
            max_entries: usize::MAX >> 1,
            max_bytes: 4 * (ENTRY_OVERHEAD_BYTES + 64),
            shards: 1,
        };
        let cache = VerificationCache::new(config);
        for i in 0..64 {
            cache.insert(&key(&format!("padding-{i:04}")), outcome(0.5));
            assert!(
                cache.bytes() <= config.max_bytes,
                "byte bound violated at insert {i}: {} > {}",
                cache.bytes(),
                config.max_bytes
            );
        }
        assert!(cache.stats().evictions > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn shard_count_is_power_of_two_and_respects_capacity() {
        let cache = VerificationCache::new(CacheConfig {
            max_entries: 6,
            max_bytes: 1 << 20,
            shards: 16,
        });
        // 16 requested, but only 4 shards fit 6 entries at >=1 entry each.
        assert_eq!(cache.shard_count(), 4);
        let big = VerificationCache::new(CacheConfig::default());
        assert_eq!(big.shard_count(), 16);
        let one = VerificationCache::new(CacheConfig {
            max_entries: 1,
            max_bytes: 1 << 20,
            shards: 16,
        });
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn global_bound_holds_across_shards() {
        let config = CacheConfig {
            max_entries: 32,
            max_bytes: 1 << 20,
            shards: 8,
        };
        let cache = VerificationCache::new(config);
        for i in 0..500 {
            cache.insert(&key(&format!("entry number {i}")), outcome(0.5));
            assert!(cache.len() <= 32, "entry bound violated at {i}");
        }
        assert!(!cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.inserts - stats.evictions, stats.entries);
    }

    #[test]
    fn obs_counters_mirror_stats() {
        let obs = Obs::new();
        let cache = VerificationCache::new(CacheConfig::with_max_entries(8)).with_obs(&obs);
        for i in 0..20 {
            let k = format!("k{i}");
            cache.insert(&key(&k), outcome(0.5));
            let _ = cache.get(&key(&k));
            let _ = cache.get(&key("never inserted"));
        }
        cache.insert(&key("bad"), outcome(f64::NAN));
        let stats = cache.stats();
        let snap = obs.metrics_snapshot();
        for (kind, count) in [
            ("hit", stats.hits),
            ("miss", stats.misses),
            ("insert", stats.inserts),
            ("update", stats.updates),
            ("eviction", stats.evictions),
            ("rejected", stats.rejected),
        ] {
            assert_eq!(
                snap.value("hallu_cache_events_total", &[("kind", kind)]),
                Some(count as f64),
                "kind {kind}"
            );
        }
        assert_eq!(
            snap.value("hallu_cache_entries", &[]),
            Some(stats.entries as f64)
        );
        assert_eq!(
            snap.value("hallu_cache_bytes", &[]),
            Some(stats.bytes as f64)
        );
    }

    proptest::proptest! {
        /// Under ANY interleaving of lookups, valid inserts, and invalid
        /// inserts: capacity bounds hold after every op, a lookup never
        /// returns a value that was not the last one stored for that key,
        /// and the counters reconcile exactly with the op log.
        #[test]
        fn arbitrary_op_logs_preserve_bounds_values_and_counters(
            max_entries in 1usize..12,
            ops in proptest::collection::vec((0usize..24, 0u8..4), 1..200),
        ) {
            let config = CacheConfig {
                max_entries,
                max_bytes: 1 << 16,
                shards: 4,
            };
            let cache = VerificationCache::new(config);
            let mut model: HashMap<usize, ProbeOutcome> = HashMap::new();
            let (mut gets, mut valid_inserts, mut invalid_inserts) = (0u64, 0u64, 0u64);
            for (i, &(key_idx, op)) in ops.iter().enumerate() {
                let sentence = format!("sentence number {key_idx}");
                let k = CacheKeyRef::new("m", "q", "c", &sentence);
                match op {
                    0 => {
                        gets += 1;
                        if let Some(v) = cache.get(&k) {
                            proptest::prop_assert_eq!(
                                Some(v),
                                model.get(&key_idx).copied(),
                                "stale or aliased value for key {}",
                                key_idx
                            );
                        }
                    }
                    1 | 2 => {
                        let v = outcome(0.05 * (1 + i % 19) as f64);
                        proptest::prop_assert!(cache.insert(&k, v));
                        model.insert(key_idx, v);
                        valid_inserts += 1;
                    }
                    _ => {
                        proptest::prop_assert!(!cache.insert(&k, outcome(f64::NAN)));
                        invalid_inserts += 1;
                    }
                }
                proptest::prop_assert!(cache.len() <= max_entries);
                proptest::prop_assert!(cache.bytes() <= config.max_bytes);
            }
            let stats = cache.stats();
            proptest::prop_assert_eq!(stats.hits + stats.misses, gets);
            proptest::prop_assert_eq!(stats.inserts + stats.updates, valid_inserts);
            proptest::prop_assert_eq!(stats.rejected, invalid_inserts);
            proptest::prop_assert_eq!(stats.inserts - stats.evictions, stats.entries);
            proptest::prop_assert_eq!(stats.entries as usize, cache.len());
            proptest::prop_assert_eq!(stats.bytes as usize, cache.bytes());
        }
    }

    #[test]
    fn replication_journal_ships_deltas_and_detects_truncation() {
        let source = VerificationCache::new(CacheConfig::default());
        let target = VerificationCache::new(CacheConfig::default());
        for i in 0..5 {
            source.insert(&key(&format!("k{i}")), outcome(0.1 * (i + 1) as f64));
        }
        // Pull everything with a roomy budget.
        let (cursor, batch) = source.recent_since(0, 1 << 20).expect("journal intact");
        assert_eq!(batch.len(), 5);
        for (k, v) in &batch {
            let kr = CacheKeyRef::new(&k.model, &k.question, &k.context, &k.response);
            assert!(target.insert_replicated(&kr, *v));
        }
        // The warm target serves hits it never computed, and says so.
        assert_eq!(target.get(&key("k3")), Some(outcome(0.4)));
        let stats = target.stats();
        assert_eq!(stats.replicated_inserts, 5);
        assert_eq!(stats.replicated_hits, 1);
        assert_eq!(stats.inserts, 0, "replication is not a local insert");
        // Caught-up cursor yields an empty delta, not a restart.
        let (cursor2, rest) = source.recent_since(cursor, 1 << 20).expect("intact");
        assert_eq!(cursor2, cursor);
        assert!(rest.is_empty());
        // Shipping must not distort the source's hit/miss telemetry.
        assert_eq!(source.stats().hits + source.stats().misses, 0);
        // A cursor older than the rotated journal reports truncation.
        assert_eq!(
            source.recent_since(0, 1 << 20).map(|(c, _)| c),
            Some(cursor)
        );
        let small = VerificationCache::new(CacheConfig {
            max_entries: 64,
            max_bytes: 1 << 20,
            shards: 1,
        });
        for i in 0..200 {
            small.insert(&key(&format!("rotate-{i}")), outcome(0.5));
        }
        assert_eq!(
            small.recent_since(0, 1 << 20),
            None,
            "rotated past cursor 0"
        );
    }

    #[test]
    fn replication_budget_bounds_each_round_but_makes_progress() {
        let source = VerificationCache::new(CacheConfig::default());
        for i in 0..10 {
            source.insert(&key(&format!("budget-{i}")), outcome(0.5));
        }
        let mut cursor = 0u64;
        let mut rounds = 0;
        let mut shipped = 0;
        // A budget of ~2 entries per round must drain in ~5 rounds, one
        // entry minimum even if the budget is tiny.
        let per_round = 2 * (ENTRY_OVERHEAD_BYTES + 64);
        loop {
            let (next, batch) = source.recent_since(cursor, per_round).expect("intact");
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 2, "budget bounds the round");
            shipped += batch.len();
            cursor = next;
            rounds += 1;
            assert!(rounds <= 10, "must terminate");
        }
        assert_eq!(shipped, 10);
        let (_, one) = source.recent_since(0, 1).expect("intact journal");
        assert_eq!(one.len(), 1, "tiny budget still ships one entry");
    }

    #[test]
    fn replicated_insert_never_clobbers_and_never_launders_poison() {
        let cache = VerificationCache::new(CacheConfig::default());
        let k = key("precious");
        assert!(cache.insert(&k, outcome(0.9)));
        // A peer's copy of the same key is a no-op, not an overwrite.
        assert!(!cache.insert_replicated(&k, outcome(0.1)));
        assert_eq!(cache.get(&k), Some(outcome(0.9)));
        // The no-poisoning gate applies to the replication plane too.
        assert!(!cache.insert_replicated(&key("poison"), outcome(f64::NAN)));
        assert_eq!(cache.get(&key("poison")), None);
        assert_eq!(cache.stats().replicated_inserts, 0);
        // A locally recomputed entry stops counting as replicated.
        assert!(cache.insert_replicated(&key("borrowed"), outcome(0.3)));
        assert!(cache.insert(&key("borrowed"), outcome(0.3)));
        let before = cache.stats().replicated_hits;
        let _ = cache.get(&key("borrowed"));
        assert_eq!(cache.stats().replicated_hits, before);
    }

    #[test]
    fn anti_entropy_page_walk_covers_everything_and_wraps() {
        let source = VerificationCache::new(CacheConfig::default());
        let target = VerificationCache::new(CacheConfig::default());
        for i in 0..7 {
            source.insert(&key(&format!("page-{i}")), outcome(0.5));
        }
        let mut cursor = 0usize;
        let mut seen = 0;
        loop {
            let (page, next) = source.sync_page(cursor, 3 * (ENTRY_OVERHEAD_BYTES + 64));
            for (k, v) in &page {
                let kr = CacheKeyRef::new(&k.model, &k.question, &k.context, &k.response);
                target.insert_replicated(&kr, *v);
            }
            seen += page.len();
            cursor = next;
            if cursor == 0 {
                break;
            }
        }
        assert_eq!(seen, 7, "one full pass covers every entry");
        assert_eq!(target.len(), 7);
        assert_eq!(
            target.entries_snapshot(),
            source.entries_snapshot(),
            "anti-entropy converges the replica to the source"
        );
        let empty = VerificationCache::new(CacheConfig::default());
        assert_eq!(empty.sync_page(0, 1 << 20), (Vec::new(), 0));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let cache = VerificationCache::new(CacheConfig::default());
        for s in ["zeta", "alpha", "mid"] {
            cache.insert(&key(s), outcome(0.5));
        }
        let snap = cache.entries_snapshot();
        assert_eq!(snap.len(), 3);
        let responses: Vec<&str> = snap.iter().map(|(k, _)| k.response.as_str()).collect();
        assert_eq!(responses, vec!["alpha", "mid", "zeta"]);
    }
}
