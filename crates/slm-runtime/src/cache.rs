//! Sharded memoizing verification cache.
//!
//! [`VerificationCache`] memoizes completed probe episodes — one
//! [`ProbeOutcome`] per (model, question, context, sentence) cell — behind a
//! fixed set of FNV-keyed shards, each guarded by its own mutex so the
//! parallel batch executor's workers rarely contend. Eviction is per-shard
//! LRU under two global bounds: an entry count and a byte budget (key text
//! plus a fixed per-entry overhead).
//!
//! **Why a hit cannot change behavior.** Under the episode-purity contract
//! ([`crate::fallible::FallibleVerifier::try_p_yes_attempt`]) a probe episode
//! is a pure function of its cell, so the cached outcome is bit-for-bit the
//! outcome a recomputation would produce — including `simulated_ms`, which
//! means virtual-clock dynamics (deadlines, shedding, telemetry) replay
//! identically. The cache therefore only ever saves wall-clock work; it is
//! semantically invisible, which is what the golden parity suite asserts.
//!
//! **Why a fault cannot poison it.** Only outcomes with a valid probability
//! ([`ProbeOutcome::is_cacheable`]) are admitted: failed episodes and
//! garbage scores are recomputed every time — harmless, because recomputing
//! them is also bit-identical.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hallu_obs::{Counter, Gauge, Obs};

use crate::batch::ProbeOutcome;
use crate::sim::{fnv1a, splitmix64};

/// Fixed accounting overhead per cached entry, covering the stored outcome,
/// recency tick, and map bookkeeping. The exact value only shapes eviction
/// pressure; it is part of the deterministic byte model, not a measurement.
pub const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Capacity and sharding knobs for [`VerificationCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Global bound on cached entries. Never exceeded.
    pub max_entries: usize,
    /// Global bound on accounted bytes (key text + [`ENTRY_OVERHEAD_BYTES`]
    /// per entry). Never exceeded.
    pub max_bytes: usize,
    /// Requested shard count; rounded down to a power of two and clamped so
    /// every shard can hold at least one entry.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 4096,
            max_bytes: 4 << 20,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// A small config convenient for tests: `max_entries` entries, a byte
    /// budget generous enough to be non-binding, default sharding.
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self {
            max_entries,
            ..Self::default()
        }
    }
}

/// Borrowed view of a cache key; avoids allocating on lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKeyRef<'a> {
    /// Verifier model name.
    pub model: &'a str,
    /// The question under verification.
    pub question: &'a str,
    /// Retrieved context.
    pub context: &'a str,
    /// The sentence (response fragment) being scored.
    pub response: &'a str,
}

impl<'a> CacheKeyRef<'a> {
    /// Build a key view.
    pub fn new(model: &'a str, question: &'a str, context: &'a str, response: &'a str) -> Self {
        Self {
            model,
            question,
            context,
            response,
        }
    }

    fn hash(&self) -> u64 {
        fnv1a(
            0x5ca1_ab1e,
            &[self.model, self.question, self.context, self.response],
        )
    }

    fn byte_cost(&self) -> usize {
        ENTRY_OVERHEAD_BYTES
            + self.model.len()
            + self.question.len()
            + self.context.len()
            + self.response.len()
    }
}

/// Owned cache key, as stored in shards and returned by snapshots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Verifier model name.
    pub model: String,
    /// The question under verification.
    pub question: String,
    /// Retrieved context.
    pub context: String,
    /// The sentence (response fragment) being scored.
    pub response: String,
}

impl CacheKey {
    fn from_ref(key: &CacheKeyRef<'_>) -> Self {
        Self {
            model: key.model.to_string(),
            question: key.question.to_string(),
            context: key.context.to_string(),
            response: key.response.to_string(),
        }
    }

    fn matches(&self, key: &CacheKeyRef<'_>) -> bool {
        self.model == key.model
            && self.question == key.question
            && self.context == key.context
            && self.response == key.response
    }
}

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: ProbeOutcome,
    last_used: u64,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Shard {
    /// Entries bucketed by full key hash; the inner vec holds hash
    /// collisions (resolved by exact string compare).
    buckets: HashMap<u64, Vec<Entry>>,
    entries: usize,
    bytes: usize,
    /// Monotonic recency clock, bumped on every touch.
    tick: u64,
}

impl Shard {
    /// Remove the least-recently-used entry. Ties cannot occur (ticks are
    /// unique per shard).
    fn evict_lru(&mut self) -> Option<(CacheKey, ProbeOutcome)> {
        let (&hash, pos) = self
            .buckets
            .iter()
            .flat_map(|(hash, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(pos, entry)| ((hash, pos), entry.last_used))
            })
            .min_by_key(|&(_, last_used)| last_used)
            .map(|((hash, pos), _)| (hash, pos))?;
        let bucket = self.buckets.get_mut(&hash)?;
        let entry = bucket.remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        self.entries -= 1;
        self.bytes -= entry.bytes;
        Some((entry.key, entry.value))
    }
}

/// Point-in-time cache statistics. Counters are cumulative since
/// construction; `entries`/`bytes` are current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// New entries admitted.
    pub inserts: u64,
    /// Inserts that overwrote an existing key in place.
    pub updates: u64,
    /// Entries removed by LRU pressure.
    pub evictions: u64,
    /// Inserts refused because the outcome was not a valid probability.
    pub rejected: u64,
    /// Current entry count.
    pub entries: u64,
    /// Current accounted bytes.
    pub bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry handles mirroring the cache counters; disconnected (free)
/// unless [`VerificationCache::with_obs`] is used.
#[derive(Debug, Clone, Default)]
struct CacheTelemetry {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    updates: Counter,
    evictions: Counter,
    rejected: Counter,
    entries: Gauge,
    bytes: Gauge,
}

impl CacheTelemetry {
    fn register(obs: &Obs) -> Self {
        let event = |kind: &str, help: &str| {
            obs.counter("hallu_cache_events_total", help, &[("kind", kind)])
        };
        let help = "Verification cache events by kind";
        Self {
            hits: event("hit", help),
            misses: event("miss", help),
            inserts: event("insert", help),
            updates: event("update", help),
            evictions: event("eviction", help),
            rejected: event("rejected", help),
            entries: obs.gauge(
                "hallu_cache_entries",
                "Current verification cache entry count",
                &[],
            ),
            bytes: obs.gauge(
                "hallu_cache_bytes",
                "Current verification cache accounted bytes",
                &[],
            ),
        }
    }
}

/// Sharded, bounded, LRU-evicting memo table for probe episodes.
///
/// Thread-safe; lookups and inserts lock only the owning shard. See the
/// module docs for the semantic-invisibility argument.
pub struct VerificationCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard bounds; the global bounds divided across shards, so the
    /// global bound holds by construction even when shards fill unevenly.
    shard_max_entries: usize,
    shard_max_bytes: usize,
    config: CacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    obs: CacheTelemetry,
}

impl VerificationCache {
    /// Build a cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        let max_entries = config.max_entries.max(1);
        // Largest power of two that is both <= the requested shard count and
        // <= max_entries, so every shard can hold at least one entry and the
        // hash-to-shard map is a mask.
        let mut shards = 1usize;
        while shards * 2 <= config.shards.max(1) && shards * 2 <= max_entries {
            shards *= 2;
        }
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_max_entries: max_entries / shards,
            shard_max_bytes: (config.max_bytes / shards).max(1),
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            obs: CacheTelemetry::default(),
        }
    }

    /// Mirror cache counters into `obs` as
    /// `hallu_cache_events_total{kind}` plus occupancy gauges. Counter
    /// increments commute and gauges only report occupancy, so telemetry
    /// stays bitwise-neutral to scoring.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = CacheTelemetry::register(obs);
        self
    }

    /// The configuration the cache was built with (as requested, before
    /// shard rounding).
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Actual shard count in use (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        // Rehash before masking: FNV's low bits are fine, but mixing costs
        // one multiply and keeps shard balance independent of key shape.
        let idx = (splitmix64(hash) as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    fn publish_occupancy(&self) {
        // Cheap no-ops when obs is disconnected; exact values matter only
        // for dashboards, so a racy read across shards is acceptable.
        self.obs.entries.set(self.len() as f64);
        self.obs.bytes.set(self.bytes() as f64);
    }

    /// Look up a cell. A hit refreshes the entry's recency.
    pub fn get(&self, key: &CacheKeyRef<'_>) -> Option<ProbeOutcome> {
        let hash = key.hash();
        let mut shard = self
            .shard_for(hash)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let found = shard
            .buckets
            .get_mut(&hash)
            .and_then(|bucket| bucket.iter_mut().find(|entry| entry.key.matches(key)))
            .map(|entry| {
                entry.last_used = tick;
                entry.value
            });
        drop(shard);
        match found {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.hits.inc();
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs.misses.inc();
                None
            }
        }
    }

    /// Admit a completed probe episode. Returns `false` (and caches nothing)
    /// unless the outcome carries a valid probability — the no-poisoning
    /// guarantee. Existing keys are overwritten in place; new entries may
    /// evict least-recently-used ones to respect the bounds.
    pub fn insert(&self, key: &CacheKeyRef<'_>, value: ProbeOutcome) -> bool {
        if !value.is_cacheable() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.obs.rejected.inc();
            return false;
        }
        let hash = key.hash();
        let cost = key.byte_cost();
        let mut evicted = 0u64;
        let updated;
        {
            let mut shard = self
                .shard_for(hash)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            shard.tick += 1;
            let tick = shard.tick;
            let existing = shard
                .buckets
                .get_mut(&hash)
                .and_then(|bucket| bucket.iter_mut().find(|entry| entry.key.matches(key)));
            if let Some(entry) = existing {
                entry.value = value;
                entry.last_used = tick;
                updated = true;
            } else {
                updated = false;
                let entry = Entry {
                    key: CacheKey::from_ref(key),
                    value,
                    last_used: tick,
                    bytes: cost,
                };
                shard.bytes += cost;
                shard.entries += 1;
                shard.buckets.entry(hash).or_default().push(entry);
                while shard.entries > self.shard_max_entries || shard.bytes > self.shard_max_bytes {
                    if shard.evict_lru().is_none() {
                        break;
                    }
                    evicted += 1;
                }
            }
        }
        if updated {
            self.updates.fetch_add(1, Ordering::Relaxed);
            self.obs.updates.inc();
        } else {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.obs.inserts.inc();
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs.evictions.add(evicted);
        }
        self.publish_occupancy();
        true
    }

    /// Current entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries)
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current accounted bytes across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries: self.len() as u64,
            bytes: self.bytes() as u64,
        }
    }

    /// Every resident entry, sorted by key for deterministic iteration.
    /// Test and debugging aid — this walks all shards under their locks.
    pub fn entries_snapshot(&self) -> Vec<(CacheKey, ProbeOutcome)> {
        let mut out: Vec<(CacheKey, ProbeOutcome)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for bucket in shard.buckets.values() {
                for entry in bucket {
                    out.push((entry.key.clone(), entry.value));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(p: f64) -> ProbeOutcome {
        ProbeOutcome {
            score: Some(p),
            attempts: 1,
            retries: 0,
            timeouts: 0,
            simulated_ms: 10.0,
        }
    }

    fn key(s: &str) -> CacheKeyRef<'_> {
        CacheKeyRef::new("model", "question", "context", s)
    }

    #[test]
    fn get_miss_then_insert_then_hit_roundtrip() {
        let cache = VerificationCache::new(CacheConfig::default());
        let k = key("a sentence");
        assert_eq!(cache.get(&k), None);
        assert!(cache.insert(&k, outcome(0.7)));
        assert_eq!(cache.get(&k), Some(outcome(0.7)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes as usize >= ENTRY_OVERHEAD_BYTES);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = VerificationCache::new(CacheConfig::default());
        for (field, a, b) in [
            (
                "model",
                CacheKeyRef::new("m1", "q", "c", "r"),
                CacheKeyRef::new("m2", "q", "c", "r"),
            ),
            (
                "question",
                CacheKeyRef::new("m", "q1", "c", "r"),
                CacheKeyRef::new("m", "q2", "c", "r"),
            ),
            (
                "context",
                CacheKeyRef::new("m", "q", "c1", "r"),
                CacheKeyRef::new("m", "q", "c2", "r"),
            ),
            (
                "response",
                CacheKeyRef::new("m", "q", "c", "r1"),
                CacheKeyRef::new("m", "q", "c", "r2"),
            ),
        ] {
            assert!(cache.insert(&a, outcome(0.25)));
            assert_eq!(cache.get(&b), None, "{field} must separate keys");
            assert_eq!(cache.get(&a), Some(outcome(0.25)));
        }
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = VerificationCache::new(CacheConfig::default());
        let k = key("x");
        cache.insert(&k, outcome(0.2));
        cache.insert(&k, outcome(0.9));
        assert_eq!(cache.get(&k), Some(outcome(0.9)));
        let stats = cache.stats();
        assert_eq!((stats.inserts, stats.updates, stats.entries), (1, 1, 1));
    }

    #[test]
    fn invalid_outcomes_are_rejected() {
        let cache = VerificationCache::new(CacheConfig::default());
        for (label, value) in [
            ("error episode", ProbeOutcome::default()),
            ("nan", outcome(f64::NAN)),
            ("negative", outcome(-0.1)),
            ("above one", outcome(1.5)),
            ("infinite", outcome(f64::INFINITY)),
        ] {
            assert!(!cache.insert(&key(label), value), "{label}");
            assert_eq!(cache.get(&key(label)), None, "{label}");
        }
        let stats = cache.stats();
        assert_eq!(stats.rejected, 5);
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn entry_bound_is_never_exceeded_and_lru_is_evicted() {
        // Single shard so recency ordering is fully observable.
        let config = CacheConfig {
            max_entries: 4,
            max_bytes: usize::MAX,
            shards: 1,
        };
        let cache = VerificationCache::new(config);
        assert_eq!(cache.shard_count(), 1);
        for i in 0..4 {
            cache.insert(&key(&format!("k{i}")), outcome(0.5));
        }
        // Touch k0 so k1 becomes the LRU victim.
        assert!(cache.get(&key("k0")).is_some());
        cache.insert(&key("k4"), outcome(0.5));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(&key("k1")), None, "LRU entry evicted");
        for live in ["k0", "k2", "k3", "k4"] {
            assert!(cache.get(&key(live)).is_some(), "{live} survives");
        }
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_is_never_exceeded() {
        let config = CacheConfig {
            max_entries: usize::MAX >> 1,
            max_bytes: 4 * (ENTRY_OVERHEAD_BYTES + 64),
            shards: 1,
        };
        let cache = VerificationCache::new(config);
        for i in 0..64 {
            cache.insert(&key(&format!("padding-{i:04}")), outcome(0.5));
            assert!(
                cache.bytes() <= config.max_bytes,
                "byte bound violated at insert {i}: {} > {}",
                cache.bytes(),
                config.max_bytes
            );
        }
        assert!(cache.stats().evictions > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn shard_count_is_power_of_two_and_respects_capacity() {
        let cache = VerificationCache::new(CacheConfig {
            max_entries: 6,
            max_bytes: 1 << 20,
            shards: 16,
        });
        // 16 requested, but only 4 shards fit 6 entries at >=1 entry each.
        assert_eq!(cache.shard_count(), 4);
        let big = VerificationCache::new(CacheConfig::default());
        assert_eq!(big.shard_count(), 16);
        let one = VerificationCache::new(CacheConfig {
            max_entries: 1,
            max_bytes: 1 << 20,
            shards: 16,
        });
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn global_bound_holds_across_shards() {
        let config = CacheConfig {
            max_entries: 32,
            max_bytes: 1 << 20,
            shards: 8,
        };
        let cache = VerificationCache::new(config);
        for i in 0..500 {
            cache.insert(&key(&format!("entry number {i}")), outcome(0.5));
            assert!(cache.len() <= 32, "entry bound violated at {i}");
        }
        assert!(!cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.inserts - stats.evictions, stats.entries);
    }

    #[test]
    fn obs_counters_mirror_stats() {
        let obs = Obs::new();
        let cache = VerificationCache::new(CacheConfig::with_max_entries(8)).with_obs(&obs);
        for i in 0..20 {
            let k = format!("k{i}");
            cache.insert(&key(&k), outcome(0.5));
            let _ = cache.get(&key(&k));
            let _ = cache.get(&key("never inserted"));
        }
        cache.insert(&key("bad"), outcome(f64::NAN));
        let stats = cache.stats();
        let snap = obs.metrics_snapshot();
        for (kind, count) in [
            ("hit", stats.hits),
            ("miss", stats.misses),
            ("insert", stats.inserts),
            ("update", stats.updates),
            ("eviction", stats.evictions),
            ("rejected", stats.rejected),
        ] {
            assert_eq!(
                snap.value("hallu_cache_events_total", &[("kind", kind)]),
                Some(count as f64),
                "kind {kind}"
            );
        }
        assert_eq!(
            snap.value("hallu_cache_entries", &[]),
            Some(stats.entries as f64)
        );
        assert_eq!(
            snap.value("hallu_cache_bytes", &[]),
            Some(stats.bytes as f64)
        );
    }

    proptest::proptest! {
        /// Under ANY interleaving of lookups, valid inserts, and invalid
        /// inserts: capacity bounds hold after every op, a lookup never
        /// returns a value that was not the last one stored for that key,
        /// and the counters reconcile exactly with the op log.
        #[test]
        fn arbitrary_op_logs_preserve_bounds_values_and_counters(
            max_entries in 1usize..12,
            ops in proptest::collection::vec((0usize..24, 0u8..4), 1..200),
        ) {
            let config = CacheConfig {
                max_entries,
                max_bytes: 1 << 16,
                shards: 4,
            };
            let cache = VerificationCache::new(config);
            let mut model: HashMap<usize, ProbeOutcome> = HashMap::new();
            let (mut gets, mut valid_inserts, mut invalid_inserts) = (0u64, 0u64, 0u64);
            for (i, &(key_idx, op)) in ops.iter().enumerate() {
                let sentence = format!("sentence number {key_idx}");
                let k = CacheKeyRef::new("m", "q", "c", &sentence);
                match op {
                    0 => {
                        gets += 1;
                        if let Some(v) = cache.get(&k) {
                            proptest::prop_assert_eq!(
                                Some(v),
                                model.get(&key_idx).copied(),
                                "stale or aliased value for key {}",
                                key_idx
                            );
                        }
                    }
                    1 | 2 => {
                        let v = outcome(0.05 * (1 + i % 19) as f64);
                        proptest::prop_assert!(cache.insert(&k, v));
                        model.insert(key_idx, v);
                        valid_inserts += 1;
                    }
                    _ => {
                        proptest::prop_assert!(!cache.insert(&k, outcome(f64::NAN)));
                        invalid_inserts += 1;
                    }
                }
                proptest::prop_assert!(cache.len() <= max_entries);
                proptest::prop_assert!(cache.bytes() <= config.max_bytes);
            }
            let stats = cache.stats();
            proptest::prop_assert_eq!(stats.hits + stats.misses, gets);
            proptest::prop_assert_eq!(stats.inserts + stats.updates, valid_inserts);
            proptest::prop_assert_eq!(stats.rejected, invalid_inserts);
            proptest::prop_assert_eq!(stats.inserts - stats.evictions, stats.entries);
            proptest::prop_assert_eq!(stats.entries as usize, cache.len());
            proptest::prop_assert_eq!(stats.bytes as usize, cache.bytes());
        }
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let cache = VerificationCache::new(CacheConfig::default());
        for s in ["zeta", "alpha", "mid"] {
            cache.insert(&key(s), outcome(0.5));
        }
        let snap = cache.entries_snapshot();
        assert_eq!(snap.len(), 3);
        let responses: Vec<&str> = snap.iter().map(|(k, _)| k.response.as_str()).collect();
        assert_eq!(responses, vec!["alpha", "mid", "zeta"]);
    }
}
