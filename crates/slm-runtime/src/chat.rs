//! Interactive generation sessions.
//!
//! The verification path only needs one forward pass, but a locally deployed
//! SLM is also the *generator* in fully on-device RAG setups. This module
//! wraps the engine in a stateful session: incremental decoding over a
//! persistent KV cache, configurable sampling, stop tokens and length caps.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bpe::{Bpe, TokenId, EOS};
use crate::model::TransformerLM;
use crate::sample::{sample, SamplerConfig};

/// Why a generation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The model emitted the end-of-sequence token.
    EndOfSequence,
    /// The per-call token cap was reached.
    MaxTokens,
    /// The KV cache is full (context window exhausted).
    ContextFull,
}

/// A completed generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Decoded text of the newly generated tokens.
    pub text: String,
    /// The generated token ids.
    pub tokens: Vec<TokenId>,
    /// Why generation stopped.
    pub stop_reason: StopReason,
}

/// A stateful chat/generation session over one model + tokenizer.
pub struct ChatSession<'a> {
    model: &'a TransformerLM,
    tokenizer: &'a Bpe,
    cache: crate::kv::KvCache,
    sampler: SamplerConfig,
    rng: StdRng,
    last_logits: Option<Vec<f32>>,
}

impl<'a> ChatSession<'a> {
    /// Start a session with a sampling configuration and RNG seed.
    pub fn new(
        model: &'a TransformerLM,
        tokenizer: &'a Bpe,
        sampler: SamplerConfig,
        seed: u64,
    ) -> Self {
        Self {
            model,
            tokenizer,
            cache: model.new_cache(),
            sampler,
            rng: StdRng::seed_from_u64(seed),
            last_logits: None,
        }
    }

    /// Tokens currently held in the context window.
    pub fn context_len(&self) -> usize {
        self.cache.len()
    }

    /// Remaining context capacity in tokens.
    pub fn remaining_context(&self) -> usize {
        self.cache.remaining()
    }

    /// Feed user/prompt text into the context without generating.
    ///
    /// Text beyond the remaining context capacity is truncated from the
    /// front of the *new* tokens (the existing conversation is preserved).
    pub fn feed(&mut self, text: &str) {
        let ids = self.tokenizer.encode(text, self.cache.is_empty());
        let room = self.cache.remaining();
        let ids = if ids.len() > room {
            &ids[ids.len() - room..]
        } else {
            &ids[..]
        };
        if ids.is_empty() {
            return;
        }
        self.last_logits = Some(self.model.prefill(ids, &mut self.cache));
    }

    /// Generate up to `max_tokens` tokens, stopping at EOS.
    ///
    /// Returns an empty generation with [`StopReason::ContextFull`] when
    /// nothing has been fed yet or the window is exhausted.
    pub fn generate(&mut self, max_tokens: usize) -> Generation {
        let Some(mut logits) = self.last_logits.clone() else {
            return Generation {
                text: String::new(),
                tokens: Vec::new(),
                stop_reason: StopReason::ContextFull,
            };
        };
        let mut tokens = Vec::new();
        let mut stop_reason = StopReason::MaxTokens;
        for _ in 0..max_tokens {
            let next = sample(&logits, &self.sampler, &mut self.rng) as TokenId;
            if next == EOS {
                stop_reason = StopReason::EndOfSequence;
                break;
            }
            tokens.push(next);
            if self.cache.remaining() == 0 {
                stop_reason = StopReason::ContextFull;
                break;
            }
            logits = self.model.forward_token(next, &mut self.cache);
        }
        self.last_logits = Some(logits);
        Generation {
            text: self.tokenizer.decode(&tokens),
            tokens,
            stop_reason,
        }
    }

    /// Reset the conversation (keeps model, tokenizer and sampler).
    pub fn reset(&mut self) {
        self.cache.clear();
        self.last_logits = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn setup() -> (TransformerLM, Bpe) {
        let bpe = Bpe::train(
            &["the store opens at nine and closes at five every day of the week"],
            150,
        );
        let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), 13);
        (model, bpe)
    }

    #[test]
    fn feed_then_generate_produces_tokens() {
        let (model, bpe) = setup();
        let mut session = ChatSession::new(&model, &bpe, SamplerConfig::default(), 1);
        session.feed("the store opens at");
        let generation = session.generate(8);
        assert!(
            !generation.tokens.is_empty() || generation.stop_reason == StopReason::EndOfSequence
        );
        assert!(generation.tokens.len() <= 8);
    }

    #[test]
    fn generate_without_feed_is_context_full() {
        let (model, bpe) = setup();
        let mut session = ChatSession::new(&model, &bpe, SamplerConfig::default(), 1);
        let generation = session.generate(4);
        assert_eq!(generation.stop_reason, StopReason::ContextFull);
        assert!(generation.tokens.is_empty());
    }

    #[test]
    fn greedy_sessions_are_reproducible() {
        let (model, bpe) = setup();
        let greedy = SamplerConfig {
            temperature: 0.0,
            ..Default::default()
        };
        let run = || {
            let mut s = ChatSession::new(&model, &bpe, greedy, 7);
            s.feed("the store opens");
            s.generate(6).tokens
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn context_accumulates_across_turns() {
        let (model, bpe) = setup();
        let mut session = ChatSession::new(&model, &bpe, SamplerConfig::default(), 2);
        session.feed("the store");
        let after_first = session.context_len();
        session.generate(3);
        session.feed("opens at nine");
        assert!(session.context_len() > after_first);
    }

    #[test]
    fn reset_clears_context() {
        let (model, bpe) = setup();
        let mut session = ChatSession::new(&model, &bpe, SamplerConfig::default(), 3);
        session.feed("the store opens");
        session.generate(2);
        session.reset();
        assert_eq!(session.context_len(), 0);
        assert_eq!(session.generate(2).stop_reason, StopReason::ContextFull);
    }

    #[test]
    fn long_feeds_are_truncated_not_fatal() {
        let (model, bpe) = setup();
        let mut session = ChatSession::new(&model, &bpe, SamplerConfig::default(), 4);
        let long = "the store opens at nine ".repeat(100);
        session.feed(&long);
        assert!(session.context_len() <= model.config().max_seq_len);
        let g = session.generate(2);
        assert!(g.tokens.len() <= 2);
    }
}
